#!/usr/bin/env python
"""Render the paper's figures as ASCII charts from recorded results.

Reads the JSON records the benchmark suite writes under ``results/``
(run ``pytest benchmarks/ --benchmark-only`` first) and renders Fig. 6
(component breakdown), Fig. 7 (scalability), and Fig. 8 (PLoD access)
as stacked text bars — and, with ``--svg DIR``, as standalone SVG
files (no matplotlib needed).

Run:  python examples/render_figures.py [results_dir] [--svg out_dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.harness.asciiplot import stacked_bars
from repro.harness.svgplot import save_figure_svg

COMPONENTS = ["io", "decompression", "reconstruction"]

FIGURES = {
    "fig6_components.json": "Fig 6 - components, 0.1% value queries, 512 GB-class S3D",
    "fig7_scalability_gts.json": "Fig 7 - scalability, 10% value queries, 512 GB-class GTS",
    "fig8_plod_access.json": "Fig 8 - PLoD levels, 1% value queries, 512 GB-class GTS",
}


def main() -> None:
    args = [a for a in sys.argv[1:]]
    svg_dir = None
    if "--svg" in args:
        i = args.index("--svg")
        svg_dir = Path(args[i + 1])
        svg_dir.mkdir(parents=True, exist_ok=True)
        del args[i : i + 2]
    results_dir = Path(args[0]) if args else Path("results")
    if not results_dir.is_dir():
        raise SystemExit(
            f"no results directory at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    rendered = 0
    for filename, title in FIGURES.items():
        path = results_dir / filename
        if not path.exists():
            print(f"[skip] {filename} not recorded yet")
            continue
        payload = json.loads(path.read_text())["payload"]["rows"]
        # Row values are [io, decomp, reconstruct, total]; drop total.
        rows = {label: values[:3] for label, values in payload.items()}
        print()
        print(stacked_bars(title, rows, COMPONENTS))
        if svg_dir is not None:
            out = save_figure_svg(
                svg_dir / filename.replace(".json", ".svg"), title, rows, COMPONENTS
            )
            print(f"[svg] {out}")
        rendered += 1
    if rendered == 0:
        raise SystemExit("nothing to render")


if __name__ == "__main__":
    main()
