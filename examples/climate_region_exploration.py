#!/usr/bin/env python
"""Climate-style workload: spatial exploration with multi-variable joins.

The paper's climate scenario (Sections II and III-A2): "what are the
humidity values within New York at some time, where the temperature is
above 90%?" — spatially-anchored exploration over multiple variables.
This example:

1. stores two co-gridded variables (temperature, humidity);
2. runs plain spatial (value) queries over named regions;
3. runs a multi-variable query — temperature selects, humidity is
   fetched at the qualifying positions via a WAH bitmap exchange
   (Section III-D4).

Because the workload is dominated by spatially-constrained access,
the stores use the V-S-M order: spatial locality gets priority over
byte-group contiguity (Section III-A2's flexible level placement).

Run:  python examples/climate_region_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MLOCStore,
    MLOCWriter,
    Query,
    SimulatedPFS,
    mloc_col,
    multi_variable_query,
)
from repro.datasets import gts_like


REGIONS = {
    "coastal strip": ((0, 128), (0, 512)),
    "interior box": ((192, 320), (192, 320)),
    "southern band": ((384, 512), (64, 448)),
}


def main() -> None:
    fs = SimulatedPFS()
    # Two correlated 2-D fields standing in for temperature / humidity.
    temperature = gts_like((512, 512), seed=3)
    humidity = 0.5 * gts_like((512, 512), seed=4) + 0.1 * temperature

    config = mloc_col(chunk_shape=(32, 32), n_bins=32, level_order="VSM")
    writer = MLOCWriter(fs, "/climate", config)
    writer.write(temperature, variable="temperature")
    writer.write(humidity, variable="humidity")
    t_store = MLOCStore.open(fs, "/climate", "temperature", n_ranks=8)
    h_store = MLOCStore.open(fs, "/climate", "humidity", n_ranks=8)

    # ------------------------------------------------------------------
    # Spatial exploration: summarize humidity per named region.
    # ------------------------------------------------------------------
    print(f"{'region':>15} {'points':>8} {'mean-hum':>9} {'resp (s)':>9}")
    for name, region in REGIONS.items():
        fs.clear_cache()
        result = h_store.query(Query(region=region, output="values"))
        print(
            f"{name:>15} {result.n_results:>8} {result.values.mean():>9.4f} "
            f"{result.times.total:>9.4f}"
        )

    # ------------------------------------------------------------------
    # Multi-variable: humidity where temperature is in its top decile,
    # inside the interior box.
    # ------------------------------------------------------------------
    flat_t = temperature.reshape(-1)
    lo = float(np.quantile(flat_t, 0.90))
    hi = float(flat_t.max())
    region = REGIONS["interior box"]
    fs.clear_cache()
    joined = multi_variable_query(
        t_store, [h_store], value_range=(lo, hi), region=region
    )
    print(
        f"\nhot cells in interior box: {joined.positions.size}; "
        f"their humidity: mean={joined.values['humidity'].mean():.4f}, "
        f"max={joined.values['humidity'].max():.4f}"
    )
    print(
        f"end-to-end response {joined.times.total:.4f} s "
        f"(communication {joined.times.communication * 1000:.2f} ms for the "
        f"bitmap exchange)"
    )

    # Cross-check against NumPy.
    mask = np.zeros(temperature.shape, dtype=bool)
    mask[region[0][0] : region[0][1], region[1][0] : region[1][1]] = True
    expected = np.flatnonzero(mask.reshape(-1) & (flat_t >= lo))
    assert np.array_equal(joined.positions, expected)
    assert np.allclose(joined.values["humidity"], humidity.reshape(-1)[expected])
    print("climate exploration OK")


if __name__ == "__main__":
    main()
