#!/usr/bin/env python
"""In-situ pipeline: query the campaign *while* it is being produced.

Models the integration the paper targets (intro contribution 4 and the
conclusion's future work): a running simulation hands each timestep to
staging nodes, which run MLOC's layout optimization + compression *in
situ* and seal it with an atomic manifest bump
(:meth:`~repro.core.dataset.MLOCDataset.append`).  An analyst pins a
:class:`~repro.core.dataset.DatasetSnapshot` mid-run and explores the
sealed prefix of the campaign — appends landing behind their back
never change an answer — then ``refresh()`` surfaces new timesteps.

The closing check is the refactor's core guarantee: every mid-run
answer is bit-identical to the same query against a post-hoc open of
the fully sealed campaign, pinned at the generation the analyst saw.

Run:  python examples/insitu_simulation_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import InSituStager, MLOCDataset, Query, SimulatedPFS, mloc_col
from repro.datasets import gts_like


def simulate_timestep(t: int) -> np.ndarray:
    """A toy 'simulation': a drifting, slowly heating potential field."""
    base = gts_like((256, 256), seed=100 + t)
    heating = 1.0 + 0.05 * t
    return base * heating


THRESHOLD = 5.2
HOT_QUERY = Query(value_range=(THRESHOLD, np.inf), output="positions")


def main() -> None:
    fs = SimulatedPFS()
    config = mloc_col(chunk_shape=(32, 32), n_bins=32)
    dataset = MLOCDataset(fs, "/campaign", config, n_ranks=8)
    stager = InSituStager(dataset, buffer_bytes=8 << 20, use_manifest=True)

    # ------------------------------------------------------------------
    # Simulation loop: produce 6 timesteps; the analyst queries mid-run
    # against whatever generation their snapshot pins.
    # ------------------------------------------------------------------
    n_steps = 6
    midrun_answers = []  # (generation, timestep, positions) seen live
    snapshot = dataset.snapshot()  # generation 0: nothing sealed yet
    assert snapshot.timesteps("potential") == []

    for t in range(n_steps):
        stager.process("potential", t, simulate_timestep(t))
        if t % 2 == 1:  # the analyst polls every other timestep
            snapshot = snapshot.refresh()
            latest = snapshot.timesteps("potential")[-1]
            result = snapshot.store("potential", latest).query(HOT_QUERY)
            midrun_answers.append(
                (snapshot.generation, latest, result.positions.copy())
            )
            print(
                f"  mid-run @ generation {snapshot.generation}: "
                f"t={latest} has {result.n_results} hot points "
                f"({len(snapshot.members())} sealed timesteps visible)"
            )

    report = stager.report
    print(
        f"staged {report.snapshots} snapshots in "
        f"{report.generations_committed} manifest generations: raw "
        f"{report.raw_bytes / 1e6:.1f} MB -> stored "
        f"{report.stored_bytes / 1e6:.1f} MB ({report.compression_ratio:.0%})"
    )

    # ------------------------------------------------------------------
    # Post-hoc exploration over the fully sealed time series.
    # ------------------------------------------------------------------
    final = dataset.snapshot()
    print(f"\ntime series scan: first timestep with any value > {THRESHOLD}")
    first_hit = None
    series = final.query_series("potential", HOT_QUERY)
    for t, result in sorted(series.items()):
        print(f"  t={t}: {result.n_results:6d} hot points")
        if result.n_results and first_hit is None:
            first_hit = t
    print(f"threshold first exceeded at t={first_hit}")

    # Sanity check against brute force on the raw fields.
    expected_first = next(
        (t for t in range(n_steps) if (simulate_timestep(t) > THRESHOLD).any()),
        None,
    )
    assert first_hit == expected_first, (first_hit, expected_first)

    # ------------------------------------------------------------------
    # The snapshot-isolation guarantee: every answer the analyst saw
    # mid-run is bit-identical to a fresh post-hoc open of the sealed
    # campaign pinned at the same generation.
    # ------------------------------------------------------------------
    posthoc = MLOCDataset(fs, "/campaign", config, n_ranks=8)
    for generation, t, live_positions in midrun_answers:
        sealed_rerun = (
            posthoc.snapshot(generation=generation)
            .store("potential", t)
            .query(HOT_QUERY)
        )
        assert np.array_equal(live_positions, sealed_rerun.positions), (
            f"mid-run answer at generation {generation} diverged"
        )
    print(
        f"{len(midrun_answers)} mid-run answers match the post-hoc sealed "
        "rerun bit-for-bit — in-situ pipeline OK"
    )


if __name__ == "__main__":
    main()
