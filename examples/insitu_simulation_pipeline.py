#!/usr/bin/env python
"""In-situ pipeline: encode simulation output as it is produced.

Models the integration the paper targets (intro contribution 4 and the
conclusion's future work): a running simulation hands each timestep to
staging nodes, which run MLOC's layout optimization + compression *in
situ* before the data reaches the parallel file system.  Afterwards the
analyst explores the whole time series — including a cross-timestep
query ("when did the hot region first exceed the threshold?") that
never reads more than the bins it needs from each snapshot.

Run:  python examples/insitu_simulation_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import InSituStager, MLOCDataset, Query, SimulatedPFS, mloc_col
from repro.datasets import gts_like


def simulate_timestep(t: int) -> np.ndarray:
    """A toy 'simulation': a drifting, slowly heating potential field."""
    base = gts_like((256, 256), seed=100 + t)
    heating = 1.0 + 0.05 * t
    return base * heating


def main() -> None:
    fs = SimulatedPFS()
    config = mloc_col(chunk_shape=(32, 32), n_bins=32)
    dataset = MLOCDataset(fs, "/campaign", config, n_ranks=8)
    stager = InSituStager(dataset, buffer_bytes=8 << 20)

    # ------------------------------------------------------------------
    # Simulation loop: produce 6 timesteps, staging each in situ.
    # ------------------------------------------------------------------
    n_steps = 6
    for t in range(n_steps):
        field = simulate_timestep(t)
        stager.process("potential", t, field)
    report = stager.report
    print(
        f"staged {report.snapshots} snapshots: raw {report.raw_bytes / 1e6:.1f} MB "
        f"-> stored {report.stored_bytes / 1e6:.1f} MB "
        f"({report.compression_ratio:.0%}), encode throughput "
        f"{report.encode_throughput / 1e6:.1f} MB/s"
    )
    print(
        f"raw drain (do-nothing alternative) would take "
        f"{report.raw_drain_seconds:.2f} simulated seconds of PFS bandwidth"
    )

    # ------------------------------------------------------------------
    # Post-hoc exploration over the time series.
    # ------------------------------------------------------------------
    threshold = 5.2
    print(f"\ntime series scan: first timestep with any value > {threshold}")
    first_hit = None
    for t in dataset.timesteps("potential"):
        store = dataset.store("potential", t)
        fs.clear_cache()
        result = store.query(
            Query(value_range=(threshold, np.inf), output="positions")
        )
        frac = result.stats["bytes_read"] / dataset.total_bytes()
        print(
            f"  t={t}: {result.n_results:6d} hot points "
            f"({result.stats['bins_accessed']} bins visited, "
            f"{frac:.1%} of campaign bytes read)"
        )
        if result.n_results and first_hit is None:
            first_hit = t
    print(f"threshold first exceeded at t={first_hit}")

    # Sanity check against brute force on the raw fields.
    expected_first = next(
        (t for t in range(n_steps) if (simulate_timestep(t) > threshold).any()),
        None,
    )
    assert first_hit == expected_first, (first_hit, expected_first)
    print("in-situ pipeline OK")


if __name__ == "__main__":
    main()
