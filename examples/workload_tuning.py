#!/usr/bin/env python
"""Workload-driven layout tuning: traces + the level-order advisor.

Section III-A2's user story, end to end:

1. an analyst explores a dataset; their session is recorded as a query
   trace (``TracingStore``);
2. the trace is replayed against candidate level orders to see what
   the session *would have cost* under each layout;
3. the advisor distills the same decision from a declarative workload
   profile — useful before any data exists.

Run:  python examples/workload_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    MLOCStore,
    MLOCWriter,
    Query,
    QueryClass,
    WorkloadProfile,
    mloc_col,
    recommend_level_order,
)
from repro.datasets import s3d_like
from repro.harness.trace import QueryTrace, TracingStore, replay_trace
from repro.pfs import PFSCostModel, SimulatedPFS


def main() -> None:
    flame = s3d_like((96, 96, 96), seed=23)
    byte_scale = (8 << 30) / flame.nbytes  # 8 GB-class accounting
    fs = SimulatedPFS(PFSCostModel(byte_scale=byte_scale))
    config = mloc_col(chunk_shape=(16, 16, 16), n_bins=16, target_block_bytes=4096)

    # Build both candidate layouts over the same data.
    stores: dict[str, MLOCStore] = {}
    for order in ("VMS", "VSM"):
        cfg = mloc_col(
            chunk_shape=(16, 16, 16),
            n_bins=16,
            level_order=order,
            target_block_bytes=4096,
        )
        MLOCWriter(fs, f"/tune/{order}", cfg).write(flame, variable="T")
        stores[order] = MLOCStore.open(fs, f"/tune/{order}", "T", n_ranks=8)

    # ------------------------------------------------------------------
    # 1. Record an analyst session (PLoD-heavy statistics pass).
    # ------------------------------------------------------------------
    traced = TracingStore(stores["VMS"])
    rng = np.random.default_rng(3)
    for _ in range(6):
        origin = rng.integers(0, 48, size=3)
        region = tuple((int(o), int(o) + 48) for o in origin)
        traced.query(Query(region=region, output="values", plod_level=2))
    lo = float(np.quantile(flame, 0.97))
    traced.query(Query(value_range=(lo, float(flame.max())), output="positions"))
    print(f"recorded session: {len(traced.trace)} queries")

    # ------------------------------------------------------------------
    # 2. Replay the trace under each candidate order.
    # ------------------------------------------------------------------
    print(f"\n{'order':>6} {'session total (s)':>18} {'mean/query (s)':>15}")
    for order, store in stores.items():
        report = replay_trace(store, traced.trace)
        print(f"{order:>6} {report.total.total:>18.2f} {report.mean_seconds:>15.2f}")

    # ------------------------------------------------------------------
    # 3. Ask the advisor the same question declaratively.
    # ------------------------------------------------------------------
    profile = WorkloadProfile(
        (
            (QueryClass("value", selectivity=0.10, plod_level=2), 6.0),
            (QueryClass("region", selectivity=0.03), 1.0),
        )
    )
    advice = recommend_level_order(
        flame[:48, :48, :48],  # a representative sample
        profile,
        config,
        cost_model=fs.cost_model,
        n_queries=4,
    )
    print(f"\nadvisor scores: " + ", ".join(
        f"{order}={score:.2f}s" for order, score in sorted(advice.scores.items())
    ))
    print(f"advisor recommends: {advice.recommended}")
    assert advice.recommended == "VMS"  # PLoD-heavy -> byte-group major
    print("workload tuning OK")


if __name__ == "__main__":
    main()
