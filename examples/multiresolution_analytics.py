#!/usr/bin/env python
"""Multiresolution analytics on a combustion field: PLoD and subsets.

The paper's Section III-B3 offers two multiresolution mechanisms and
this example exercises both on an S3D-like flame:

* **Precision-based (PLoD)**: every point is present but only the
  first k+1 bytes are fetched.  We compute mean/histogram statistics
  at PLoD levels 1..7 and show how the error collapses while I/O
  shrinks by up to 75% — the paper's "level 2 is enough for many
  statistics" claim.
* **Subset-based (hierarchical Hilbert)**: whole chunks are fetched at
  a coarse spatial lattice — the visualization-preview mode.

Run:  python examples/multiresolution_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import MLOCStore, MLOCWriter, Query, SimulatedPFS, mloc_col
from repro.analysis import histogram_migration_error
from repro.datasets import s3d_like


def main() -> None:
    fs = SimulatedPFS()
    flame = s3d_like((128, 128, 128), seed=17)
    flat = flame.reshape(-1)

    # ------------------------------------------------------------------
    # Precision-based multiresolution: PLoD store (V-M-S order).
    # ------------------------------------------------------------------
    config = mloc_col(chunk_shape=(16, 16, 16), n_bins=24)
    MLOCWriter(fs, "/s3d", config).write(flame, variable="temperature")
    store = MLOCStore.open(fs, "/s3d", "temperature", n_ranks=8)

    region = ((16, 112), (16, 112), (16, 112))
    mask = np.zeros(flame.shape, dtype=bool)
    mask[16:112, 16:112, 16:112] = True
    truth = flat[mask.reshape(-1)]

    print(f"{'PLoD':>5} {'bytes/pt':>9} {'I/O bytes':>10} {'mean err':>10} "
          f"{'hist err %':>10}")
    for level in (1, 2, 3, 7):
        fs.clear_cache()
        result = store.query(Query(region=region, output="values", plod_level=level))
        mean_err = abs(result.values.mean() - truth.mean()) / abs(truth.mean())
        hist_err = histogram_migration_error(truth, result.values, 100) * 100
        print(
            f"{level:>5} {level + 1:>9} {result.stats['bytes_read']:>10} "
            f"{mean_err:>10.2e} {hist_err:>10.4f}"
        )

    # The paper's headline: 3 bytes (level 2) already suffice for mean
    # statistics to a few 1e-5 relative.
    fs.clear_cache()
    lvl2 = store.query(Query(region=region, output="values", plod_level=2))
    rel = abs(lvl2.values.mean() - truth.mean()) / abs(truth.mean())
    assert rel < 1e-4, rel

    # ------------------------------------------------------------------
    # Subset-based multiresolution: hierarchical-curve store.
    # ------------------------------------------------------------------
    hier_cfg = mloc_col(chunk_shape=(16, 16, 16), n_bins=24, curve="hierarchical")
    MLOCWriter(fs, "/s3d-hier", hier_cfg).write(flame, variable="temperature")
    hier = MLOCStore.open(fs, "/s3d-hier", "temperature", n_ranks=8)

    print(f"\n{'res level':>9} {'points':>9} {'I/O bytes':>10} {'mean':>9}")
    for level in (0, 1, 2, None):
        fs.clear_cache()
        result = hier.query(Query(resolution_level=level, output="values"))
        label = "full" if level is None else str(level)
        print(
            f"{label:>9} {result.n_results:>9} {result.stats['bytes_read']:>10} "
            f"{result.values.mean():>9.2f}"
        )

    print("\nmultiresolution analytics OK")


if __name__ == "__main__":
    main()
