#!/usr/bin/env python
"""Summarize recorded experiment results as Markdown tables.

Reads ``results/*.json`` (written by the benchmark suite or
``python -m repro.bench``) and prints GitHub-flavored Markdown tables —
the helper used to assemble EXPERIMENTS.md after a run.

Run:  python examples/summarize_results.py [results_dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HEADERS = {
    "table1_storage": ["system", "data", "index", "total", "paper total"],
    "table2_region_8g_gts": ["system", "1%", "10%", "paper 1%", "paper 10%"],
    "table2_region_8g_s3d": ["system", "1%", "10%", "paper 1%", "paper 10%"],
    "table3_value_8g_gts": ["system", "0.1%", "1%", "paper 0.1%", "paper 1%"],
    "table3_value_8g_s3d": ["system", "0.1%", "1%", "paper 0.1%", "paper 1%"],
    "table4_region_512g_gts": ["system", "1%", "10%", "paper 1%", "paper 10%"],
    "table4_region_512g_s3d": ["system", "1%", "10%", "paper 1%", "paper 10%"],
    "table5_value_512g_gts": ["system", "0.1%", "1%", "paper 0.1%", "paper 1%"],
    "table5_value_512g_s3d": ["system", "0.1%", "1%", "paper 0.1%", "paper 1%"],
    "table6_plod_accuracy": [
        "bytes", "hist vu", "hist vv", "hist vw", "K-means", "paper hist vu", "paper K-means",
    ],
    "table7_level_orders": ["order", "3-byte", "full", "paper 3-byte", "paper full"],
    "fig6_components": ["system", "io", "decompression", "reconstruction", "total"],
    "fig7_scalability_gts": ["ranks", "io", "decompression", "reconstruction", "total"],
    "fig7_scalability_s3d": ["ranks", "io", "decompression", "reconstruction", "total"],
    "fig8_plod_access": ["level", "io", "decompression", "reconstruction", "total"],
    "ablation_sfc": ["curve", "sim total", "seeks", "bytes"],
    "ablation_binning": ["binning", "mean s", "worst s", "imbalance"],
    "ablation_scheduler": ["scheduler", "sim total", "files opened", "seeks"],
    "ablation_aligned": ["selectivity", "index-only s", "with-data s", "byte ratio", "aligned"],
    "ext_codec_tradeoff": ["codec", "ratio", "enc MB/s", "dec MB/s", "kind"],
    "ext_multivar": ["selectivity", "bitmap fetch s", "full fetch s", "speedup", "points"],
    "ext_multires": ["mode", "bytes read", "mean rel err", "hist err %"],
}


def render(name: str, rows: dict) -> str:
    header = HEADERS.get(name)
    if header is None:
        width = max(len(v) for v in rows.values()) + 1
        header = ["row"] + [f"c{i}" for i in range(width - 1)]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for label, cells in rows.items():
        rendered = [str(label)] + [
            f"{c:.4g}" if isinstance(c, float) else str(c) for c in cells
        ]
        lines.append("| " + " | ".join(rendered) + " |")
    return "\n".join(lines)


def main() -> None:
    results_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    if not results_dir.is_dir():
        raise SystemExit(f"no results directory at {results_dir}")
    for path in sorted(results_dir.glob("*.json")):
        payload = json.loads(path.read_text())
        print(f"\n### {path.stem}\n")
        print(render(path.stem, payload["payload"]["rows"]))


if __name__ == "__main__":
    main()
