#!/usr/bin/env python
"""Fusion workload: threshold hunting over a GTS-like potential field.

The paper's motivating fusion scenario (Section III-A2): "for fusion
simulation datasets scientists may mainly be interested in queries of
regions with [values] higher than some threshold" — i.e. the workload
is dominated by value-constrained region queries, so value binning
gets top priority (the default V-M-S order), and the aligned-bin
index-only fast path does most of the work.

This example sweeps a sequence of progressively higher thresholds (as
an analyst homing in on a burst would), compares MLOC against a
sequential scan of the raw file, and prints the per-query fast-path
statistics.

Run:  python examples/fusion_threshold_hunt.py
"""

from __future__ import annotations

import numpy as np

from repro import MLOCStore, MLOCWriter, Query, SimulatedPFS, mloc_col
from repro.baselines import SeqScanStore
from repro.datasets import gts_like


def main() -> None:
    fs = SimulatedPFS()
    field = gts_like((1024, 1024), seed=13)
    flat = field.reshape(-1)

    config = mloc_col(chunk_shape=(64, 64), n_bins=64)
    MLOCWriter(fs, "/fusion", config).write(field, variable="potential")
    store = MLOCStore.open(fs, "/fusion", "potential", n_ranks=8)
    scan = SeqScanStore.build(fs, "/fusion-raw", field, n_ranks=8)

    print(f"{'threshold':>10} {'points':>9} {'aligned':>9} "
          f"{'mloc (s)':>9} {'scan (s)':>9} {'speedup':>8}")
    hi = float(flat.max())
    for quantile in (0.90, 0.95, 0.99, 0.999):
        lo = float(np.quantile(flat, quantile))

        fs.clear_cache()
        mloc_result = store.query(Query(value_range=(lo, hi), output="positions"))

        fs.clear_cache()
        scan_result = scan.region_query((lo, hi))

        assert np.array_equal(mloc_result.positions, scan_result.positions)
        speedup = scan_result.times.total / max(mloc_result.times.total, 1e-9)
        print(
            f"{lo:>10.3f} {mloc_result.n_results:>9} "
            f"{mloc_result.stats['aligned_bins']:>4}/{mloc_result.stats['bins_accessed']:<4} "
            f"{mloc_result.times.total:>9.4f} {scan_result.times.total:>9.4f} "
            f"{speedup:>7.1f}x"
        )

    # Once a burst is located, pull the actual values around the peak.
    peak = int(np.argmax(flat))
    py, px = np.unravel_index(peak, field.shape)
    y0, x0 = max(py - 32, 0), max(px - 32, 0)
    window = ((y0, min(y0 + 64, 1024)), (x0, min(x0 + 64, 1024)))
    fs.clear_cache()
    burst = store.query(Query(region=window, output="values"))
    print(
        f"\nburst window {window}: {burst.n_results} values, "
        f"max={burst.values.max():.3f} (field max {flat.max():.3f})"
    )
    assert np.isclose(burst.values.max(), flat.max())
    print("fusion threshold hunt OK")


if __name__ == "__main__":
    main()
