#!/usr/bin/env python
"""Quickstart: write a field through the MLOC pipeline and query it.

Covers the three access patterns of the paper's Section II on a small
GTS-like fusion field:

1. a value-constrained *region query* ("where is the potential
   anomalously high?") answered via value bins and position indices;
2. a spatially-constrained *value query* ("what are the values inside
   this box?") answered via Hilbert-ordered chunks;
3. a combined constraint.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MLOCStore, MLOCWriter, Query, SimulatedPFS, mloc_col
from repro.datasets import gts_like


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A simulated parallel file system and a synthetic science field.
    # ------------------------------------------------------------------
    fs = SimulatedPFS()
    field = gts_like((512, 512), seed=7)
    print(f"field: {field.shape}, {field.nbytes / 1e6:.1f} MB, "
          f"values in [{field.min():.2f}, {field.max():.2f}]")

    # ------------------------------------------------------------------
    # 2. Write it through the MLOC multi-level pipeline (MLOC-COL:
    #    V-M-S order, Zlib-compressed PLoD byte columns, 32 bins).
    # ------------------------------------------------------------------
    config = mloc_col(chunk_shape=(32, 32), n_bins=32)
    report = MLOCWriter(fs, "/mloc/gts", config).write(field, variable="potential")
    print(
        f"stored: data {report.data_ratio:.0%} of raw, "
        f"index {report.index_bytes / report.raw_bytes:.1%}, "
        f"total {report.total_ratio:.0%}"
    )

    store = MLOCStore.open(fs, "/mloc/gts", "potential", n_ranks=8)

    # ------------------------------------------------------------------
    # 3. Region query: positions whose value is in the top 5%.
    # ------------------------------------------------------------------
    lo = float(np.quantile(field, 0.95))
    hi = float(field.max())
    fs.clear_cache()  # cold cache, as in the paper's methodology
    hot = store.query(Query(value_range=(lo, hi), output="positions"))
    print(
        f"\nregion query [top 5%]: {hot.n_results} points, "
        f"{hot.stats['aligned_bins']}/{hot.stats['bins_accessed']} bins aligned "
        f"(index-only), response {hot.times.total * 1000:.1f} ms "
        f"(io {hot.times.io * 1000:.1f} ms)"
    )

    # Verify against brute force.
    expected = np.flatnonzero((field.reshape(-1) >= lo) & (field.reshape(-1) <= hi))
    assert np.array_equal(hot.positions, expected)

    # ------------------------------------------------------------------
    # 4. Value query: all values inside a spatial box.
    # ------------------------------------------------------------------
    region = ((128, 256), (64, 320))
    fs.clear_cache()
    box = store.query(Query(region=region, output="values"))
    print(
        f"value query {region}: {box.n_results} points, "
        f"mean={box.values.mean():.3f}, response {box.times.total * 1000:.1f} ms"
    )
    assert box.n_results == 128 * 256

    # ------------------------------------------------------------------
    # 5. Combined: hot spots inside the box.
    # ------------------------------------------------------------------
    fs.clear_cache()
    both = store.query(Query(value_range=(lo, hi), region=region, output="values"))
    coords = both.coords(field.shape)
    print(
        f"combined query: {both.n_results} hot points inside the box; "
        f"first few coords: {coords[:3].tolist()}"
    )
    assert np.all((both.values >= lo) & (both.values <= hi))

    print("\nquickstart OK")


if __name__ == "__main__":
    main()
