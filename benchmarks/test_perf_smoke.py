"""Micro-benchmark regression smoke: hot primitives + batch pipeline.

Times the real wall-clock of the hot code paths — varint codec,
Hilbert mapping, index-block decode, cold vs warm ``query_many``, the
serial/threads/processes decode and write backends, and the sharded
scatter/gather scaling sweep — and records everything to
``results/BENCH_perf_smoke.json`` so the performance trajectory is
tracked across PRs.  Wall-clock numbers are recorded, not asserted
(they depend on the machine); the *deterministic* savings of batching
and caching are asserted.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import N_QUERIES, attach_batch_info
from repro.core import MLOCStore, Query, mloc_col
from repro.datasets import gts_like
from repro.harness import format_rows, record_result
from repro.harness.experiments import (
    batch_pipeline_rows,
    coalescing_rows,
    planning_rows,
    progressive_rows,
    sharded_scaling_rows,
    writer_backend_rows,
)
from repro.index.binindex import decode_position_block_flat, encode_position_block
from repro.sfc.hilbert import hilbert_decode, hilbert_encode
from repro.util.varint import varint_decode_array, varint_encode_array

RESULTS: dict[str, object] = {}


def _best_of(fn, rounds: int = 5) -> float:
    """Best-of-N wall seconds (min is the standard noise-robust stat)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_varint_roundtrip_speed():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1 << 28, size=200_000, dtype=np.uint64)
    encoded = varint_encode_array(values)
    enc_s = _best_of(lambda: varint_encode_array(values))
    dec_s = _best_of(lambda: varint_decode_array(encoded, values.size))
    decoded = varint_decode_array(encoded, values.size)
    assert np.array_equal(decoded, values)
    RESULTS["varint"] = {
        "n_values": values.size,
        "encode_s": round(enc_s, 6),
        "decode_s": round(dec_s, 6),
        "encode_mvals_per_s": round(values.size / enc_s / 1e6, 2),
        "decode_mvals_per_s": round(values.size / dec_s / 1e6, 2),
    }


def test_hilbert_mapping_speed():
    rng = np.random.default_rng(1)
    nbits = 8
    coords = rng.integers(0, 1 << nbits, size=(100_000, 3), dtype=np.int64)
    keys = hilbert_encode(coords, nbits=nbits)
    enc_s = _best_of(lambda: hilbert_encode(coords, nbits=nbits))
    dec_s = _best_of(lambda: hilbert_decode(keys, ndims=3, nbits=nbits))
    assert np.array_equal(hilbert_decode(keys, ndims=3, nbits=nbits), coords)
    RESULTS["hilbert"] = {
        "n_points": coords.shape[0],
        "encode_s": round(enc_s, 6),
        "decode_s": round(dec_s, 6),
        "encode_mpts_per_s": round(coords.shape[0] / enc_s / 1e6, 2),
        "decode_mpts_per_s": round(coords.shape[0] / dec_s / 1e6, 2),
    }


def test_index_block_decode_speed():
    rng = np.random.default_rng(2)
    counts = np.full(64, 2_000, dtype=np.int64)
    chunks = [
        np.sort(rng.choice(100_000, size=int(c), replace=False)) for c in counts
    ]
    payload = encode_position_block(chunks)
    dec_s = _best_of(lambda: decode_position_block_flat(payload, counts))
    flat = decode_position_block_flat(payload, counts)
    assert np.array_equal(flat, np.concatenate(chunks))
    RESULTS["index_block_decode"] = {
        "n_positions": int(counts.sum()),
        "decode_s": round(dec_s, 6),
        "decode_mpos_per_s": round(int(counts.sum()) / dec_s / 1e6, 2),
    }


def test_batch_cold_vs_warm(benchmark, suite_gts_8g, capsys):
    """Overlapping exploration batch: query_many vs cold one-by-one.

    The deterministic acceptance assertions live here: the batch shows
    cache hits and strictly lower aggregate modeled io + decompression
    than running the same queries cold one at a time.
    """
    suite = suite_gts_8g
    rows, batch = benchmark.pedantic(
        batch_pipeline_rows,
        args=(suite, max(N_QUERIES, 4)),
        rounds=1,
        iterations=1,
    )
    attach_batch_info(benchmark, batch)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Batched query_many vs cold one-by-one (sim seconds + real "
                "wall, overlapping 1% value queries)",
                ["mode", "io", "decomp", "io+decomp", "wall_s"],
                rows,
            )
        )
    assert batch.stats["cache_hits"] > 0
    assert batch.times.io < rows["cold one-by-one"][0]
    assert (
        batch.times.io + batch.times.decompression
        < rows["cold one-by-one"][2]
    )
    # Real wall-clock improves too: the batch reads and decodes each
    # shared block once instead of once per query.
    cold_wall, batch_wall = rows["cold one-by-one"][3], rows["batched query_many"][3]
    assert batch_wall < cold_wall
    RESULTS["batch_pipeline"] = {
        "rows": rows,
        "n_queries": batch.stats["n_queries"],
        "cache_hits": batch.stats["cache_hits"],
        "cache_misses": batch.stats["cache_misses"],
        "blocks_decoded": batch.stats["blocks_decoded"],
        "wall_speedup": round(cold_wall / max(batch_wall, 1e-9), 3),
    }


def test_backend_wall_clock(suite_gts_8g):
    """Serial vs threaded vs process decode backend on one batch:
    identical simulated seconds and answers asserted, real wall-clock
    recorded alongside the core count.  The GIL-free process pool is
    the only backend that can beat serial on CPU-bound decode, so its
    speedup is asserted — but only on multi-core machines (on one core
    any pool is pure overhead)."""
    suite = suite_gts_8g
    base = suite.store("mloc-col")
    regions = suite.workload.overlapping_region_constraints(0.01, max(N_QUERIES, 4))
    queries = [Query(region=r, output="values") for r in regions]
    walls = {}
    batches = {}
    for backend in ("serial", "threads", "processes"):
        store = MLOCStore(
            suite.fs,
            base.root,
            base.meta,
            n_ranks=suite.n_ranks,
            backend=backend,
            workers=2 if backend == "processes" else None,
        )
        suite.fs.clear_cache()
        store.query_many(queries)  # warm the page cache / worker pool
        suite.fs.clear_cache()
        t0 = time.perf_counter()
        batches[backend] = store.query_many(queries)
        walls[backend] = time.perf_counter() - t0
    a = batches["serial"]
    for backend in ("threads", "processes"):
        b = batches[backend]
        assert a.times.io == b.times.io
        assert a.times.decompression == b.times.decompression
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.positions, rb.positions)
    assert batches["processes"].stats["decode_pool_failures"] == 0
    RESULTS["backend_wall_clock"] = {
        "n_queries": len(queries),
        "cpu_count": os.cpu_count(),
        "serial_s": round(walls["serial"], 4),
        "threads_s": round(walls["threads"], 4),
        "processes_s": round(walls["processes"], 4),
        "threads_speedup": round(walls["serial"] / max(walls["threads"], 1e-9), 3),
        "processes_speedup": round(
            walls["serial"] / max(walls["processes"], 1e-9), 3
        ),
    }


def test_writer_backend_wall_clock(capsys):
    """Serial vs threaded vs process write pipeline on the standard
    synthetic variable: identical output bytes asserted, wall-clock
    recorded.

    The multi-chunk workload (a 512x512 GTS-like field in 64x64
    chunks) is compression-dominated, which is exactly where the
    writers' compression offload pays; on a single-core machine any
    pool is overhead, so the speedup bars (threads faster than serial,
    processes > 1.3x over serial) are asserted only when more than one
    core is available."""
    data = gts_like((512, 512), seed=3)
    config = mloc_col((64, 64), n_bins=16, target_block_bytes=1 << 15)
    workers = min(os.cpu_count() or 1, 4) if (os.cpu_count() or 1) > 1 else 2
    rows, identical = writer_backend_rows(data, config, workers=workers, rounds=3)
    assert identical, "writer backends diverged: output must be bit-identical"
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Write pipeline: serial vs threads vs processes "
                "(identical bytes, real wall)",
                ["mode", "wall_s"],
                rows,
            )
        )
    serial_s = rows["serial writer"][0]
    threads_s = rows["threads writer"][0]
    processes_s = rows["processes writer"][0]
    if (os.cpu_count() or 1) > 1:
        assert threads_s < serial_s
        assert serial_s > 1.3 * processes_s, (
            f"process writer should beat serial by >1.3x on "
            f"{os.cpu_count()} cores, got {serial_s / processes_s:.2f}x"
        )
    RESULTS["writer_backend_wall_clock"] = {
        "n_elements": data.size,
        "n_chunks": 64,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "identical_bytes": identical,
        "serial_s": serial_s,
        "threads_s": threads_s,
        "processes_s": processes_s,
        "threads_speedup": round(serial_s / max(threads_s, 1e-9), 3),
        "processes_speedup": round(serial_s / max(processes_s, 1e-9), 3),
    }


def test_planning_speed(suite_gts_8g, capsys):
    """Vectorized plan scheduling vs the seed object path, plus the
    plan-cache hit cost on a real store.

    Asserts the ISSUE's acceptance bars: identical per-rank
    assignments, >= 5x plan-phase speedup on a 100-bin x 1k-chunk
    work-list, and a cache-hit re-plan that costs a small fraction of
    planning from scratch."""
    rows, info = planning_rows(n_bins=100, n_chunks=1000, n_ranks=8)
    assert info["identical"], "array path diverged from the seed assignments"
    assert info["speedup"] >= 5.0, f"plan speedup {info['speedup']:.1f}x < 5x"
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Plan scheduling: object path vs columnar path "
                f"({info['n_blocks']} blocks, {info['n_ranks']} ranks)",
                ["path", "plan_s", "blocks_per_s"],
                rows,
            )
        )
    # Plan-cache hit cost on a real store: a repeat of the same query
    # shape must skip planning almost entirely.
    suite = suite_gts_8g
    base = suite.store("mloc-col")
    store = MLOCStore(
        suite.fs, base.root, base.meta, n_ranks=suite.n_ranks, plan_cache=16
    )
    region = suite.workload.overlapping_region_constraints(0.01, 1)[0]
    q = Query(region=region, output="values")
    ctx = store.context
    fresh_s = _best_of(lambda: ctx.plan_uncached(q))
    ctx.plan(q)  # warm the LRU
    hit_s = _best_of(lambda: ctx.plan(q))
    assert hit_s < fresh_s / 5, (
        f"cache hit ({hit_s:.6f}s) should be far cheaper than planning "
        f"({fresh_s:.6f}s)"
    )
    r1 = store.query(q)
    r2 = store.query(q)
    assert r2.stats["plan_cache_hits"] == 1
    assert np.array_equal(r1.positions, r2.positions)
    RESULTS["planning"] = {
        "rows": rows,
        "identical": info["identical"],
        "speedup": round(info["speedup"], 2),
        "n_blocks": info["n_blocks"],
        "plan_fresh_s": round(fresh_s, 6),
        "plan_cache_hit_s": round(hit_s, 6),
        "cache_hit_speedup": round(fresh_s / max(hit_s, 1e-9), 1),
    }


def test_coalescing_seek_savings(suite_gts_8g, capsys):
    """Coalesced vectored I/O vs one read per block on SC queries.

    The deterministic acceptance assertions: identical results, vectored
    reads actually happen, and the coalesced run issues strictly fewer
    seeks than the uncoalesced one (the ISSUE's seek-count comparison)."""
    suite = suite_gts_8g
    rows, info = coalescing_rows(suite, max(N_QUERIES, 3))
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Read coalescing: one read per block vs vectored runs "
                "(1% SC value queries at PLoD 3)",
                ["mode", "seeks", "bytes", "io+dec s"],
                rows,
            )
        )
    assert info["identical"], "coalescing changed query results"
    assert info["coalesced_reads"] > 0
    assert info["seeks_coalesced"] < info["seeks_uncoalesced"]
    RESULTS["coalescing"] = {"rows": rows, **info}


def test_progressive_refinement_bytes(suite_gts_8g, capsys):
    """Refinement session vs independent per-level queries.

    The deterministic acceptance assertions: every session step is
    bit-identical to a fresh query at its level, the session reuses
    bytes (> 0), reads strictly less in total than the independent
    per-level queries, and refining to full precision costs at least
    2x fewer bytes than re-querying at full from scratch."""
    suite = suite_gts_8g
    rows, info = progressive_rows(suite)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Progressive PLoD refinement: session vs fresh per-level "
                f"queries (levels {info['levels']})",
                ["step", "session bytes", "fresh bytes", "cum reused"],
                rows,
            )
        )
    assert info["identical"], "session steps diverged from single-shot queries"
    assert info["bytes_reused"] > 0
    assert info["session_bytes"] < info["independent_bytes"]
    assert info["full_step_ratio"] >= 2.0, (
        f"refine-to-full should cost >= 2x fewer bytes, "
        f"got {info['full_step_ratio']:.2f}x"
    )
    RESULTS["progressive"] = {"rows": rows, **info}


def test_sharded_scaling(suite_gts_8g, capsys):
    """ShardedMLOCStore per-shard scaling sweep (1/2/4/8 shards).

    The deterministic acceptance assertions: merged answers identical
    at every shard count, and simulated io+decompression falls
    monotonically with shard count, reaching >= 3x at 8 shards.  The
    per-doubling factor is below 2x by design: the bin partition
    balances the *whole variable's* stored bytes, while any one query
    touches a selectivity-dependent subset of bins that lands unevenly
    across shards (the slowest shard gates the merged time)."""
    suite = suite_gts_8g
    rows, info = sharded_scaling_rows(suite, "mloc-col")
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Sharded scatter/gather: simulated seconds vs shard count "
                f"(bin-spanning value queries, bounds {info['shard_bounds']})",
                ["shards", "io", "decomp", "io+decomp", "speedup"],
                rows,
            )
        )
    assert info["identical"], "sharded answers diverged from 1-shard baseline"
    speedups = [rows[f"{n} shards"][3] for n in (1, 2, 4, 8)]
    assert speedups == sorted(speedups), rows
    assert rows["2 shards"][3] >= 1.25, rows
    assert rows["4 shards"][3] >= 1.75, rows
    assert rows["8 shards"][3] >= 3.0, rows
    RESULTS["sharded_scaling"] = {"rows": rows, **info}


def test_record_perf_smoke():
    # Runs last within this file (pytest preserves definition order).
    assert RESULTS, "micro-benchmarks did not run"
    path = record_result("BENCH_perf_smoke", RESULTS)
    assert path.exists()
