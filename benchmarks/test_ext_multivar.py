"""Extension benchmark: multi-variable access (Section III-D4).

The paper describes the mechanism (region-only select -> WAH bitmap
exchange -> value retrieval on other variables) without a numbered
table.  This benchmark quantifies it: a two-variable join against the
naive alternative of retrieving *all* of variable B inside the region
and filtering client-side.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_sim_info
from repro.core import (
    MLOCDataset,
    Query,
    mloc_col,
    multi_variable_query,
)
from repro.datasets import gts_like
from repro.harness import format_rows, get_spec, record_result
from repro.pfs import PFSCostModel, SimulatedPFS


@pytest.fixture(scope="module")
def joined_vars():
    spec = get_spec("8g", "gts")
    fs = SimulatedPFS(PFSCostModel(byte_scale=spec.byte_scale))
    block = max(4096, int(round(fs.cost_model.stripe_size / spec.byte_scale)))
    cfg = mloc_col(
        chunk_shape=spec.chunk_shape, n_bins=spec.n_bins, target_block_bytes=block
    )
    shape = spec.shape
    temp = gts_like(shape, seed=61)
    # Superpose a localized hot spot so the selecting constraint has
    # spatial structure (a burst region), as in the paper's motivating
    # "abnormally high temperature" scenario — a selector whose hits
    # are scattered over every chunk would make *any* masked fetch
    # degenerate to a full read.
    import numpy as _np

    yy, xx = _np.meshgrid(
        _np.linspace(-1, 1, shape[0]), _np.linspace(-1, 1, shape[1]), indexing="ij"
    )
    temp = temp + 3.0 * _np.exp(-(((yy - 0.3) ** 2 + (xx + 0.2) ** 2) / 0.02))
    hum = gts_like(shape, seed=62)
    dataset = MLOCDataset(fs, "/join", cfg, n_ranks=8)
    dataset.write(temp, "temp")
    dataset.write(hum, "humidity")
    return fs, temp, hum, dataset


@pytest.mark.parametrize("selectivity", [0.01, 0.10])
def test_multivar_join(benchmark, joined_vars, selectivity):
    fs, temp, hum, dataset = joined_vars
    flat = temp.reshape(-1)
    lo = float(np.quantile(flat, 1.0 - selectivity))

    def run():
        fs.clear_cache()
        return dataset.multi_variable_query(
            "temp", ["humidity"], (lo, float(flat.max()))
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(benchmark, result.times, n_results=result.positions.size)


def test_ext_multivar_report(benchmark, joined_vars, capsys):
    fs, temp, hum, dataset = joined_vars
    flat = temp.reshape(-1)

    def compute():
        from repro.index.bitmap import Bitmap

        h_store = dataset.store("humidity")
        t_store = dataset.store("temp")
        rows = {}
        for selectivity in (0.01, 0.05, 0.20):
            lo = float(np.quantile(flat, 1.0 - selectivity))
            hi = float(flat.max())
            # Shared selection step (identical in both strategies).
            fs.clear_cache()
            selected = t_store.query(
                Query(value_range=(lo, hi), output="positions")
            )
            bitmap = Bitmap.from_positions(selected.positions, t_store.n_elements)

            # MLOC's mechanism: bitmap-masked fetch of humidity.
            fs.clear_cache()
            fetched = h_store.fetch_positions(bitmap)

            # Naive alternative: retrieve ALL humidity values and mask
            # client-side.
            fs.clear_cache()
            h_all = h_store.query(Query(output="values"))

            # Speedup on the deterministic io+decompression component:
            # measured-reconstruction jitter (x byte_scale) would
            # otherwise dominate the ratio at the tiny CI tier.
            fetch_det = fetched.times.io + fetched.times.decompression
            full_det = h_all.times.io + h_all.times.decompression
            rows[f"sel {selectivity:.0%}"] = [
                round(fetched.times.total, 2),
                round(h_all.times.total, 2),
                round(full_det / fetch_det, 1),
                int(selected.positions.size),
            ]
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Extension - bitmap-masked fetch vs full second-variable "
                "retrieval, 8 GB-class GTS",
                ["selectivity", "bitmap-fetch-s", "full-fetch-s", "speedup", "points"],
                rows,
            )
        )
    record_result("ext_multivar", {"rows": rows})

    # The bitmap-masked fetch must beat retrieving the whole second
    # variable, and its advantage must not grow with selectivity (the
    # masked fetch degenerates to a full read as hits spread).
    assert rows["sel 1%"][2] > 1.2
    assert rows["sel 1%"][2] >= rows["sel 20%"][2] * 0.8
