"""Ablation: Hilbert vs Z-order vs row-major chunk ordering.

Justifies Section III-B2's choice of the Hilbert curve: for random
sub-volume value queries, curve ordering with stronger geometric
locality turns a query's chunk set into fewer, longer contiguous runs
on disk — fewer seeks and fewer compression-block over-reads.
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import MLOCStore, MLOCWriter, Query, mloc_iso
from repro.harness import WorkloadGenerator, format_rows, get_spec, record_result
from repro.pfs import PFSCostModel, SimulatedPFS

CURVES = ("hilbert", "zorder", "rowmajor")


@pytest.fixture(scope="module")
def curve_stores():
    # The curve-locality effect needs a reasonably fine chunk grid to
    # show (the paper's grids have thousands of chunks), so this
    # ablation pins its own geometry instead of the tier's: a 128^3
    # field over 8^3 chunks = a 16^3 chunk grid.
    from repro.datasets import s3d_like

    spec = get_spec("8g", "s3d")
    fs = SimulatedPFS(PFSCostModel(byte_scale=spec.byte_scale))
    data = s3d_like((128, 128, 128), seed=31)
    block = max(4096, int(round(fs.cost_model.stripe_size / spec.byte_scale)))
    stores = {}
    for curve in CURVES:
        cfg = mloc_iso(
            chunk_shape=(8, 8, 8),
            n_bins=16,
            curve=curve,
            target_block_bytes=block,
        )
        MLOCWriter(fs, f"/sfc/{curve}", cfg).write(data, variable="f")
        stores[curve] = MLOCStore.open(fs, f"/sfc/{curve}", "f", n_ranks=8)
    workload = WorkloadGenerator.for_data(data, seed=spec.seed + 17)
    return fs, workload, stores


@pytest.mark.parametrize("curve", CURVES)
def test_curve_value_query(benchmark, curve_stores, curve):
    fs, workload, stores = curve_stores
    region = workload.region_constraints(0.005, 1)[0]

    def run():
        fs.clear_cache()
        return stores[curve].query(Query(region=region, output="values"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(benchmark, result.times, seeks=result.stats["seeks"])


def test_ablation_sfc_report(benchmark, curve_stores, capsys):
    fs, workload, stores = curve_stores
    regions = workload.region_constraints(0.005, N_QUERIES)

    def compute():
        rows = {}
        for curve in CURVES:
            total = seeks = bytes_read = 0.0
            for region in regions:
                fs.clear_cache()
                r = stores[curve].query(Query(region=region, output="values"))
                total += r.times.total
                seeks += r.stats["seeks"]
                bytes_read += r.stats["bytes_read"]
            k = len(regions)
            rows[curve] = [
                round(total / k, 3),
                round(seeks / k, 1),
                int(bytes_read / k),
            ]
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Ablation - chunk ordering, 0.5% value queries, 8 GB-class S3D",
                ["curve", "sim-total", "seeks", "bytes"],
                rows,
            )
        )
    record_result("ablation_sfc", {"rows": rows})

    # Hilbert must not lose to row-major on locality metrics; SFC orders
    # cluster sub-volumes into fewer block over-reads.
    assert rows["hilbert"][2] <= rows["rowmajor"][2] * 1.05
    assert rows["hilbert"][0] <= rows["rowmajor"][0] * 1.10
