"""Ablation: column-order vs round-robin block assignment
(Section III-D's scheduling claim).

Column order assigns each rank a contiguous bin-major span of blocks,
so each rank opens the fewest bin files and ranks rarely contend on
the same file; round-robin spreads every bin across every rank.
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import MLOCStore, Query
from repro.harness import format_rows, record_result

SCHEDULERS = ("column", "round-robin")


@pytest.fixture(scope="module")
def scheduled_stores(suite_gts_8g):
    suite = suite_gts_8g
    base = suite.store("mloc-iso")
    stores = {
        name: MLOCStore(
            suite.fs, base.root, base.meta, n_ranks=8, scheduler=name
        )
        for name in SCHEDULERS
    }
    return suite, stores


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_scheduler_value_query(benchmark, scheduled_stores, scheduler):
    suite, stores = scheduled_stores
    region = suite.workload.region_constraints(0.01, 1)[0]

    def run():
        suite.fs.clear_cache()
        return stores[scheduler].query(Query(region=region, output="values"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(
        benchmark,
        result.times,
        files_opened=result.stats["files_opened"],
    )


def test_ablation_scheduler_report(benchmark, scheduled_stores, capsys):
    suite, stores = scheduled_stores
    regions = suite.workload.region_constraints(0.01, N_QUERIES)

    def compute():
        rows = {}
        for name in SCHEDULERS:
            total = opens = seeks = 0.0
            for region in regions:
                suite.fs.clear_cache()
                r = stores[name].query(Query(region=region, output="values"))
                total += r.times.total
                opens += r.stats["files_opened"]
                seeks += r.stats["seeks"]
            k = len(regions)
            rows[name] = [
                round(total / k, 3),
                round(opens / k, 1),
                round(seeks / k, 1),
            ]
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Ablation - block scheduler, 1% value queries, 8 GB-class GTS",
                ["scheduler", "sim-total", "files-opened", "seeks"],
                rows,
            )
        )
    record_result("ablation_scheduler", {"rows": rows})

    # The paper's mechanism: column order opens far fewer files...
    assert rows["column"][1] < rows["round-robin"][1]
    # ...and does not lose on response time.
    assert rows["column"][0] <= rows["round-robin"][0] * 1.05
