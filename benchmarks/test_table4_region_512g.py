"""Table IV: region-query response time on the 512 GB-class datasets.

The paper compares only MLOC and sequential scan at this scale (the
other systems were already uncompetitive at 8 GB).  Row shape: MLOC
answers 1%/10% region queries in tens of seconds; the scan must stream
the entire 512 GB (~1500-2300 s).
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.harness import PAPER, format_rows, record_result

SYSTEMS = ("mloc-col", "mloc-iso", "mloc-isa", "seqscan")


@pytest.mark.parametrize("system", SYSTEMS)
def test_region_query_1pct_gts_512g(benchmark, suite_gts_512g, system):
    suite = suite_gts_512g
    suite.store(system)
    constraint = suite.workload.value_constraints(0.01, 1)[0]
    result = benchmark.pedantic(
        suite.region_query, args=(system, constraint), rounds=3, iterations=1
    )
    attach_sim_info(
        benchmark,
        result.times,
        paper_value=PAPER["table4_region_512g"][system][0],
        n_results=result.n_results,
    )


@pytest.mark.parametrize("dataset", ["gts", "s3d"])
def test_table4_report(benchmark, dataset, suite_gts_512g, suite_s3d_512g, capsys):
    suite = suite_gts_512g if dataset == "gts" else suite_s3d_512g

    from repro.harness.experiments import table4_rows

    rows = benchmark.pedantic(
        table4_rows, args=(suite, dataset, N_QUERIES), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_rows(
                f"Table IV - region query seconds, 512 GB-class {dataset.upper()} "
                "(sim) vs paper",
                ["system", "1%", "10%", "paper-1%", "paper-10%"],
                rows,
            )
        )
    record_result(f"table4_region_512g_{dataset}", {"rows": rows})

    # The headline claim: MLOC is much faster than a full scan at
    # 512 GB scale.  (The factor depends on the tier's bin count — at
    # the tiny CI tier a bin is 5% of the data, at small it is 1% as in
    # the paper — so assert a conservative multiple.)
    for s in ("mloc-col", "mloc-iso", "mloc-isa"):
        assert rows[s][0] * 3 < rows["seqscan"][0]
        assert rows[s][1] * 2 < rows["seqscan"][1]
