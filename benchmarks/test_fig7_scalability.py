"""Fig. 7: parallel scalability of value queries (10% selectivity,
512 GB-class) from 8 to 128 simulated MPI ranks.

Paper shape: decompression and reconstruction shrink as ranks are
added (they parallelize); I/O improves only while extra node links
help and stops at the shared-OST bandwidth floor ("I/O does not scale
well since more processes bring more I/O contention ... still achieves
high throughput of 2 GB/s with 128 processes"), so total time
saturates.
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.harness import format_rows, record_result

RANKS = (8, 16, 32, 64, 128)


@pytest.mark.parametrize("n_ranks", [8, 128])
def test_scalability_bench(benchmark, suite_gts_512g, n_ranks):
    suite = suite_gts_512g
    store = suite.store("mloc-iso").with_ranks(n_ranks)
    region = suite.workload.region_constraints(0.10, 1)[0]
    from repro.core import Query

    def run():
        suite.fs.clear_cache()
        return store.query(Query(region=region, output="values"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(benchmark, result.times, n_ranks=n_ranks)


@pytest.mark.parametrize("dataset", ["gts", "s3d"])
def test_fig7_report(benchmark, dataset, suite_gts_512g, suite_s3d_512g, capsys):
    from repro.core import Query

    suite = suite_gts_512g if dataset == "gts" else suite_s3d_512g
    base = suite.store("mloc-iso")
    regions = suite.workload.region_constraints(0.10, max(2, N_QUERIES // 2))

    from repro.harness.experiments import fig7_rows

    rows = benchmark.pedantic(
        fig7_rows, args=(suite, N_QUERIES, RANKS), rounds=1, iterations=1
    )
    series = {n: rows[f"{n} ranks"][3] for n in RANKS}
    with capsys.disabled():
        print()
        print(
            format_rows(
                f"Fig 7 - scalability (sim seconds), 10% value queries, "
                f"512 GB-class {dataset.upper()}",
                ["ranks", "io", "decomp", "reconstruct", "total"],
                rows,
            )
        )
    record_result(f"fig7_scalability_{dataset}", {"rows": rows})

    # CPU-bound components parallelize strongly: 128 ranks cut the
    # 8-rank decompression by at least ~4x.
    assert rows["128 ranks"][1] < rows["8 ranks"][1] / 4
    # Total improves with ranks but sub-linearly: the I/O floor remains.
    assert series[128] < series[8]
    assert series[128] > series[8] / 16  # nowhere near perfect 16x scaling
    # I/O "does not scale well": a 16x rank increase buys at most ~4x
    # I/O improvement before the shared OST bandwidth floor binds.
    assert rows["128 ranks"][0] > rows["8 ranks"][0] / 4
