"""Error-bounded retrieval: bytes read at tol vs fixed-level baselines.

The acceptance experiment of ``query(tol=...)``: a full-domain values
query at tol in {1e-2, 1e-4, 1e-6} against two baselines on the same
bytes —

* **full precision** (tol-less, level 7): the upper bound every tol
  query must beat;
* **hand-picked uniform level**: the shallowest single ``plod_level``
  whose recorded bounds meet tol on *every* accessed chunk — the best
  a user could do without per-chunk bounds.  Mixed-level plans win
  exactly when chunks are heterogeneous: smooth chunks read fewer
  byte groups than the worst chunk forces globally.

Asserted, not just recorded:

* every tol run's observed max relative error against ground truth is
  within tol (the accuracy contract, end to end);
* every tol run reads strictly fewer bytes than full precision;
* the mixed-level plan never reads more than the uniform-level one.

Each measurement uses a fresh PFS + store: the simulated extent cache
would otherwise report 0 bytes for repeated reads.  Byte gaps per tol
land in ``results/BENCH_tol_progressive.json``.
"""

from __future__ import annotations

import numpy as np

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import gts_like
from repro.harness import record_result
from repro.pfs import SimulatedPFS
from repro.plod.accuracy import relative_errors

TOLS = (1e-2, 1e-4, 1e-6)
SHAPE = (256, 256)


def _heterogeneous_field() -> np.ndarray:
    """A GTS-like field with quadrants at very different magnitudes,
    so per-chunk minimal levels genuinely differ."""
    field = gts_like(SHAPE, seed=7).astype(np.float64)
    h, w = SHAPE[0] // 2, SHAPE[1] // 2
    field[:h, :w] *= 1e6
    field[h:, w:] *= 1e-3
    field[:h, w:] += 1e4
    return field


def _fresh_store():
    fs = SimulatedPFS()
    # Small blocks so plans resolve to near-cell granularity: reads
    # are block-granular, and the mixed-level advantage over a uniform
    # level only materializes when the skipped byte-group cells are
    # not welded into blocks the deeper chunks need anyway.
    config = mloc_col(chunk_shape=(32, 32), n_bins=16, target_block_bytes=1024)
    MLOCWriter(fs, "/tol", config).write(_heterogeneous_field(), variable="field")
    return fs, MLOCStore.open(fs, "/tol", "field", n_ranks=4)


def test_tol_reads_fewer_bytes_within_bound(capsys):
    truth = _heterogeneous_field().reshape(-1)
    query_kw = dict(region=((0, 256), (0, 256)), output="values")

    fs, store = _fresh_store()
    full = store.query(Query(**query_kw))
    full_bytes = full.stats["bytes_read"]
    assert np.array_equal(full.values, truth[full.positions])

    rows = {}
    for tol in TOLS:
        tol_query = Query(**query_kw, tol=tol)

        fs, store = _fresh_store()
        mixed = store.query(tol_query)
        observed = relative_errors(truth[mixed.positions], mixed.values)
        worst = float(observed.max()) if observed.size else 0.0
        assert worst <= tol, (tol, worst)
        assert mixed.stats["tol_met"] is True
        assert mixed.stats["bytes_read"] < full_bytes

        # Hand-picked baseline: the deepest per-chunk target level,
        # applied uniformly — what a user without per-chunk bounds
        # would have to request to be safe everywhere.
        uniform_level = int(store.resolve_levels(tol_query).max())
        fs, store = _fresh_store()
        uniform = store.query(Query(**query_kw, plod_level=uniform_level))
        assert mixed.stats["bytes_read"] <= uniform.stats["bytes_read"]

        rows[f"tol={tol:g}"] = {
            "tol": tol,
            "observed_max_rel_error": worst,
            "achieved_bound": mixed.stats["achieved_bound"],
            "levels_histogram": mixed.stats["levels_histogram"],
            "bytes_read": mixed.stats["bytes_read"],
            "bytes_read_full": full_bytes,
            "bytes_read_uniform_level": uniform.stats["bytes_read"],
            "uniform_level": uniform_level,
            "saved_vs_full": full_bytes - mixed.stats["bytes_read"],
            "saved_vs_uniform": (
                uniform.stats["bytes_read"] - mixed.stats["bytes_read"]
            ),
            "tol_bytes_saved_stat": mixed.stats["tol_bytes_saved"],
        }

    # Progressive consumption: the whole ladder re-reads nothing the
    # session already holds, so its cumulative bytes stay at the
    # one-shot full-precision level even after refining to exact.
    fs, store = _fresh_store()
    with store.open_session(
        Query(**query_kw, tol=1e-4)
    ) as session:
        steps = list(session.progressive_results())
        ladder_bytes = sum(s.stats["bytes_read"] for s in steps)
        rows["progressive tol=1e-04"] = {
            "steps": len(steps),
            "bytes_per_step": [s.stats["bytes_read"] for s in steps],
            "cumulative_bytes": ladder_bytes,
            "bytes_reused_raw": session.bytes_reused,
            "final_tol_met": steps[-1].stats["tol_met"],
        }
        assert steps[-1].stats["tol_met"] is True
        assert ladder_bytes <= full_bytes * 1.05  # refinement, not re-fetch

    record_result("BENCH_tol_progressive", {"rows": rows})
    with capsys.disabled():
        print()
        for label, row in rows.items():
            print(f"{label}: {row}")
