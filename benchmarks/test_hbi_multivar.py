"""Hierarchical-index pushdown on the compound multivariate workload.

The ext_multivar scenario ("temperature values where the humidity is
high and the pressure low", with a spatially localized temperature
burst) evaluated two ways over identical bytes on disk:

* **flat** — every constrained variable's region-only step scans every
  chunk its bins touch;
* **hierarchical** — the most selective variable runs first, and each
  later variable's plan is narrowed to the chunks where the running
  intersection still has set bits, then pruned against the index's
  interior-node cardinalities.

Asserted, not just recorded:

* the two evaluations are bit-identical (positions and every fetched
  value byte);
* the hierarchical run's simulated I/O bytes are at least **2x** below
  the flat run's on the same cold-cache workload.

Byte totals, pruning counters, exchange-payload sizes, and the index
footprint against the FastBit whole-domain baseline land in
``results/BENCH_hbi_multivar.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fastbit import FastBitStore
from repro.core import (
    MLOCStore,
    MLOCWriter,
    mloc_col,
    multi_variable_query,
)
from repro.core.compound import VariableConstraint, compound_query
from repro.datasets import gts_like
from repro.harness import record_result
from repro.index.hbi import hbi_path
from repro.pfs import SimulatedPFS

SHAPE = (512, 512)
CHUNK = (32, 32)
N_BINS = 32
#: Small blocks so plans resolve near chunk granularity — pruning is
#: chunk-level, reads are block-level.
BLOCK_BYTES = 512
BURST_SELECTIVITY = 0.02

RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module")
def tri_var_burst():
    fs = SimulatedPFS()
    yy, xx = np.meshgrid(
        np.linspace(-1, 1, SHAPE[0]), np.linspace(-1, 1, SHAPE[1]), indexing="ij"
    )
    fields = {
        # Localized hot spot: the paper's "abnormally high temperature"
        # selector, spatially confined so the conjunction's footprint
        # is a few chunks of the domain.
        "temp": gts_like(SHAPE, seed=61)
        + 3.0 * np.exp(-(((yy - 0.3) ** 2 + (xx + 0.2) ** 2) / 0.02)),
        "humidity": gts_like(SHAPE, seed=62),
        "pressure": gts_like(SHAPE, seed=63),
    }
    cfg = mloc_col(chunk_shape=CHUNK, n_bins=N_BINS, target_block_bytes=BLOCK_BYTES)
    writer = MLOCWriter(fs, "/hbi", cfg)
    for name, data in fields.items():
        writer.write(data, variable=name)
    return fs, fields


def _open_all(fs, names, use_hbi):
    return {
        name: MLOCStore.open(fs, "/hbi", name, n_ranks=8, use_hbi=use_hbi)
        for name in names
    }


def _constraints(fields) -> list[VariableConstraint]:
    t = fields["temp"].reshape(-1)
    h = fields["humidity"].reshape(-1)
    p = fields["pressure"].reshape(-1)
    return [
        VariableConstraint.above(
            "temp", float(np.quantile(t, 1.0 - BURST_SELECTIVITY))
        ),
        VariableConstraint.above("humidity", float(np.quantile(h, 0.5))),
        VariableConstraint.below("pressure", float(np.quantile(p, 0.6))),
    ]


def test_hbi_halves_compound_io_and_keeps_results_identical(tri_var_burst):
    fs, fields = tri_var_burst
    constraints = _constraints(fields)

    fs.clear_cache()
    flat = compound_query(
        _open_all(fs, fields, False), constraints, fetch=["temp"]
    )
    fs.clear_cache()
    hier = compound_query(
        _open_all(fs, fields, True), constraints, fetch=["temp"]
    )

    assert np.array_equal(flat.positions, hier.positions)
    assert np.array_equal(flat.values["temp"], hier.values["temp"])
    assert flat.stats["chunks_pruned"] == 0
    assert hier.stats["chunks_pruned"] > 0

    flat_bytes = flat.stats["bytes_read"]
    hier_bytes = hier.stats["bytes_read"]
    RESULTS["compound"] = {
        "n_results": flat.n_results,
        "flat_bytes_read": flat_bytes,
        "hbi_bytes_read": hier_bytes,
        "io_reduction": round(flat_bytes / hier_bytes, 2),
        "chunks_pruned": hier.stats["chunks_pruned"],
        "flat_sim_seconds": round(flat.times.total, 4),
        "hbi_sim_seconds": round(hier.times.total, 4),
    }
    assert flat_bytes >= 2 * hier_bytes, RESULTS["compound"]


def test_hierarchical_exchange_payload(tri_var_burst):
    fs, fields = tri_var_burst
    t = fields["temp"].reshape(-1)
    lo = float(np.quantile(t, 1.0 - BURST_SELECTIVITY))
    hi = float(t.max())
    flat_stores = _open_all(fs, ["temp", "humidity"], False)
    hier_stores = _open_all(fs, ["temp", "humidity"], True)

    fs.clear_cache()
    flat = multi_variable_query(
        flat_stores["temp"], [flat_stores["humidity"]], value_range=(lo, hi)
    )
    fs.clear_cache()
    hier = multi_variable_query(
        hier_stores["temp"], [hier_stores["humidity"]], value_range=(lo, hi)
    )

    assert np.array_equal(flat.positions, hier.positions)
    assert np.array_equal(flat.values["humidity"], hier.values["humidity"])
    RESULTS["exchange"] = {
        "n_positions": int(flat.positions.size),
        "flat_payload_bytes": flat.exchange_bytes,
        "hbi_payload_bytes": hier.exchange_bytes,
    }


def test_index_footprint_vs_fastbit(tri_var_burst):
    fs, fields = tri_var_burst
    store = MLOCStore.open(fs, "/hbi", "temp", use_hbi=True)
    hbi_bytes = fs.size(hbi_path(store.root))
    flat_index_bytes = sum(
        fs.size(store.files.index_path(b)) for b in range(N_BINS)
    )

    # FastBit baseline at the same bin resolution: one whole-domain WAH
    # bitmap per bin over row-major raw data (its precision-binned
    # default of 1024 bins would only be larger).
    fb_fs = SimulatedPFS()
    fastbit = FastBitStore.build(
        fb_fs, "/fb", fields["temp"], n_bins=N_BINS, n_ranks=8
    )
    fastbit_bytes = fastbit.storage_bytes()["index"]

    RESULTS["footprint"] = {
        "hbi_file_bytes": hbi_bytes,
        "mloc_flat_index_bytes": flat_index_bytes,
        "fastbit_index_bytes": fastbit_bytes,
        "hbi_vs_fastbit": round(hbi_bytes / fastbit_bytes, 3),
    }
    # The hierarchical summary (tree + run-local leaves) must not cost
    # more than the FastBit baseline's whole-domain bitmaps.
    assert hbi_bytes <= fastbit_bytes


def test_record_hbi_multivar(tri_var_burst):
    assert {"compound", "exchange", "footprint"} <= set(RESULTS)
    path = record_result("BENCH_hbi_multivar", RESULTS)
    assert path.exists()
