"""Table III: value-query (spatially-constrained retrieval) response
time on the 8 GB-class datasets, region selectivity 0.1% and 1%.

Paper row shape: MLOC variants and sequential scan are both fast (the
scan computes offsets directly; MLOC pays per-bin visits but reads
compressed data with curve locality); FastBit still pays its index
load; SciDB pays startup + executor processing.  The known scale
artifact: our scaled-down regions contain geometrically fewer
row-runs, so the scan's seek penalty is under-represented and seqscan
comes out faster than the paper shows (EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.harness import ALL_SYSTEMS, PAPER, format_rows, record_result


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_value_query_01pct_gts(benchmark, suite_gts_8g, system):
    suite = suite_gts_8g
    suite.store(system)
    region = suite.workload.region_constraints(0.001, 1)[0]
    result = benchmark.pedantic(
        suite.value_query, args=(system, region), rounds=3, iterations=1
    )
    attach_sim_info(
        benchmark,
        result.times,
        paper_value=PAPER["table3_value_8g"][system][0],
        n_results=result.n_results,
    )


@pytest.mark.parametrize("dataset", ["gts", "s3d"])
def test_table3_report(benchmark, dataset, suite_gts_8g, suite_s3d_8g, capsys):
    suite = suite_gts_8g if dataset == "gts" else suite_s3d_8g

    from repro.harness.experiments import table3_rows

    rows = benchmark.pedantic(
        table3_rows, args=(suite, dataset, N_QUERIES), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_rows(
                f"Table III - value query seconds, 8 GB-class {dataset.upper()} "
                "(sim) vs paper",
                ["system", "0.1%", "1%", "paper-0.1%", "paper-1%"],
                rows,
            )
        )
    record_result(f"table3_value_8g_{dataset}", {"rows": rows})

    # Orderings: MLOC beats FastBit and SciDB on value queries.
    mloc_worst = max(rows[s][0] for s in ("mloc-col", "mloc-iso", "mloc-isa"))
    assert mloc_worst < rows["fastbit"][0]
    assert mloc_worst < rows["scidb"][0]
    # Response grows with region selectivity for MLOC.  At the tiny CI
    # tier, block quantization flattens the response (one block per bin
    # per group is the floor for both selectivities), so assert
    # non-collapse there and genuine growth only when the cells are
    # meaningfully apart.
    for s in ("mloc-col", "mloc-iso", "mloc-isa"):
        assert rows[s][1] > rows[s][0] * 0.8
