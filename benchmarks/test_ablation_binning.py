"""Ablation: equal-frequency vs equal-width binning (Section III-B1).

MLOC uses equal-frequency binning "to prevent load imbalance": with
equal-width bins over a non-uniform value distribution, a fixed-
selectivity constraint can land on one enormous bin (slow, unbalanced
access) or many nearly-empty ones.  This ablation measures per-query
response variance and the balance of bin sizes.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import MLOCStore, MLOCWriter, mloc_iso
from repro.harness import WorkloadGenerator, format_rows, get_spec, record_result
from repro.pfs import PFSCostModel, SimulatedPFS

MODES = ("equal-frequency", "equal-width")


@pytest.fixture(scope="module")
def binning_stores():
    spec = get_spec("8g", "s3d")  # flame field: strongly bimodal values
    fs = SimulatedPFS(PFSCostModel(byte_scale=spec.byte_scale))
    data = spec.generate()
    block = max(4096, int(round(fs.cost_model.stripe_size / spec.byte_scale)))
    stores = {}
    for mode in MODES:
        cfg = mloc_iso(
            chunk_shape=spec.chunk_shape,
            n_bins=spec.n_bins,
            binning=mode,
            target_block_bytes=block,
        )
        MLOCWriter(fs, f"/binning/{mode}", cfg).write(data, variable="f")
        stores[mode] = MLOCStore.open(fs, f"/binning/{mode}", "f", n_ranks=8)
    workload = WorkloadGenerator.for_data(data, seed=spec.seed + 23)
    return fs, workload, stores


@pytest.mark.parametrize("mode", MODES)
def test_binning_region_query(benchmark, binning_stores, mode):
    fs, workload, stores = binning_stores
    constraint = workload.value_constraints(0.02, 1)[0]
    from repro.core import Query

    def run():
        fs.clear_cache()
        return stores[mode].query(
            Query(value_range=constraint, output="positions")
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(benchmark, result.times)


def test_ablation_binning_report(benchmark, binning_stores, capsys):
    from repro.core import Query

    fs, workload, stores = binning_stores
    constraints = workload.value_constraints(0.02, max(N_QUERIES, 8))

    def compute():
        rows = {}
        stats = {}
        for mode in MODES:
            counts = stores[mode].meta.counts.sum(axis=1).astype(np.float64)
            imbalance = float(counts.max() / max(counts.mean(), 1.0))
            times = []
            for constraint in constraints:
                fs.clear_cache()
                r = stores[mode].query(
                    Query(value_range=constraint, output="positions")
                )
                times.append(r.times.total)
            arr = np.array(times)
            rows[mode] = [
                round(float(arr.mean()), 3),
                round(float(arr.max()), 3),
                round(imbalance, 2),
            ]
            stats[mode] = {"imbalance": imbalance, "worst": float(arr.max())}
        return rows, stats

    rows, stats = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Ablation - binning mode, 2% region queries, 8 GB-class S3D",
                ["binning", "mean-s", "worst-s", "bin-imbalance"],
                rows,
            )
        )
    record_result("ablation_binning", {"rows": rows})

    # Equal-frequency bins are balanced by construction; equal-width
    # bins on the bimodal flame field are badly skewed.
    assert stats["equal-frequency"]["imbalance"] < 1.5
    assert stats["equal-width"]["imbalance"] > 3.0
    # Balanced bins bound the worst-case query.
    assert (
        stats["equal-frequency"]["worst"] <= stats["equal-width"]["worst"] * 1.25
    )
