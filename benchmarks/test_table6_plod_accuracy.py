"""Table VI: analysis accuracy on PLoD-degraded data.

Histogram-migration error for the S3D velocity components (vu, vv, vw)
and K-means misclassification on (vv, vw), at 2/3/4 bytes per point.
Paper values (percent):

    bytes  hist vu   hist vv   hist vw   kmeans
      2     8.241     1.83      1.834     4.290
      3     0.029     6.5e-3    8.3e-3    0.017
      4     1.6e-4    4.5e-5    3.5e-5    6.6e-5

The reproduction asserts the two-orders-of-magnitude drop per extra
byte rather than the absolute percentages (which depend on the exact
velocity distribution of the original S3D run).
"""

import numpy as np
import pytest

from repro.analysis import histogram_migration_error, kmeans_misclassification
from repro.datasets import s3d_velocity_triplet
from repro.harness import PAPER, format_rows, record_result
from repro.plod import plod_degrade


@pytest.fixture(scope="module")
def velocities():
    # ~1.7 M points per component at the default shape (paper: 20 M).
    return s3d_velocity_triplet((120, 120, 120), seed=21)


@pytest.mark.parametrize("level,n_bytes", [(1, 2), (2, 3), (3, 4)])
def test_histogram_error_bench(benchmark, velocities, level, n_bytes):
    vu = velocities["vu"].reshape(-1)

    def run():
        return histogram_migration_error(vu, plod_degrade(vu, level), 100)

    err = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["hist_error_pct"] = round(err * 100, 5)
    benchmark.extra_info["paper_pct"] = PAPER["table6_plod_accuracy_pct"][n_bytes][
        "hist"
    ][0]


def _compute_rows(velocities, kmeans_points):
    rows = {}
    for level, n_bytes in [(1, 2), (2, 3), (3, 4)]:
        hist = [
            histogram_migration_error(
                velocities[name].reshape(-1),
                plod_degrade(velocities[name].reshape(-1), level),
                100,
            )
            * 100
            for name in ("vu", "vv", "vw")
        ]
        degraded = np.stack(
            [
                plod_degrade(kmeans_points[:, 0], level),
                plod_degrade(kmeans_points[:, 1], level),
            ],
            axis=1,
        )
        km = (
            kmeans_misclassification(
                kmeans_points, degraded, k=8, n_iters=100, repeats=2, seed=3
            )
            * 100
        )
        paper = PAPER["table6_plod_accuracy_pct"][n_bytes]
        rows[f"{n_bytes} bytes"] = [
            round(hist[0], 4),
            round(hist[1], 4),
            round(hist[2], 4),
            round(km, 4),
            paper["hist"][0],
            paper["kmeans"],
        ]
    return rows


def test_table6_report(benchmark, velocities, capsys):
    vv = velocities["vv"].reshape(-1)
    vw = velocities["vw"].reshape(-1)
    kmeans_points = np.stack([vv, vw], axis=1)[::8]  # subsample for K-means

    def compute():
        return _compute_rows(velocities, kmeans_points)

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Table VI - PLoD analysis error (%), measured vs paper",
                ["bytes", "hist-vu", "hist-vv", "hist-vw", "kmeans", "p-hist-vu", "p-km"],
                rows,
            )
        )
    record_result("table6_plod_accuracy", {"rows": rows})

    # Shape: errors drop by >= ~30x per additional byte, 2-byte error is
    # percent-scale, 3-byte is centi-percent scale, 4-byte negligible.
    assert 0.5 < rows["2 bytes"][0] < 25.0
    assert rows["3 bytes"][0] < rows["2 bytes"][0] / 30
    assert rows["4 bytes"][0] < rows["3 bytes"][0] / 5 + 1e-6
    assert rows["3 bytes"][3] < rows["2 bytes"][3] / 10 + 1e-6
