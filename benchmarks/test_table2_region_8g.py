"""Table II: region-query (value-constrained, region-only) response
time on the 8 GB-class datasets, value selectivity 1% and 10%.

Paper row shape: all three MLOC variants answer in well under two
seconds; sequential scan pays a full-dataset read (~20 s); FastBit pays
its cold index load (~37 s, flat); SciDB scans every chunk through its
executor (hundreds of seconds).
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.harness import ALL_SYSTEMS, PAPER, format_rows, record_result


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_region_query_1pct_gts(benchmark, suite_gts_8g, system):
    suite = suite_gts_8g
    suite.store(system)
    constraint = suite.workload.value_constraints(0.01, 1)[0]
    result = benchmark.pedantic(
        suite.region_query, args=(system, constraint), rounds=3, iterations=1
    )
    attach_sim_info(
        benchmark,
        result.times,
        paper_value=PAPER["table2_region_8g"][system][0],
        n_results=result.n_results,
    )


def _workload_rows(suite, dataset_label):
    from repro.harness.experiments import table2_rows

    return table2_rows(suite, dataset_label, N_QUERIES)


@pytest.mark.parametrize("dataset", ["gts", "s3d"])
def test_table2_report(benchmark, dataset, suite_gts_8g, suite_s3d_8g, capsys):
    suite = suite_gts_8g if dataset == "gts" else suite_s3d_8g
    rows = benchmark.pedantic(_workload_rows, args=(suite, dataset), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                f"Table II - region query seconds, 8 GB-class {dataset.upper()} "
                "(sim) vs paper",
                ["system", "1%", "10%", "paper-1%", "paper-10%"],
                rows,
            )
        )
    record_result(f"table2_region_8g_{dataset}", {"rows": rows})

    # Orderings the paper reports must hold at 1% selectivity:
    mloc_worst = max(rows[s][0] for s in ("mloc-col", "mloc-iso", "mloc-isa"))
    assert mloc_worst < rows["seqscan"][0]
    assert mloc_worst < rows["fastbit"][0]
    assert mloc_worst < rows["scidb"][0]
    # Full-scan systems are flat across selectivity; MLOC grows.
    assert rows["seqscan"][1] < rows["seqscan"][0] * 1.5
    assert rows["scidb"][1] < rows["scidb"][0] * 1.5
