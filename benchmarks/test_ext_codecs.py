"""Extension benchmark: codec compression ratio vs throughput.

Not a numbered table, but the trade-off Section III-B4 describes when
motivating pluggable compression ("flexible block and binning size
adjustment for different compression techniques to achieve best
performance in the desired area, such as compression ratio and
throughput").  Measures, on a paper-like turbulence stream, every
registered float codec's encode/decode wall throughput and ratio.
"""

import numpy as np
import pytest

from repro.compression import make_codec
from repro.harness import format_rows, record_result

FLOAT_CODECS = ("zlib-float", "isobar", "isabela", "fpzip-like")


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(5)
    return np.cumsum(rng.normal(0, 0.02, 1 << 20)) + 300.0  # 8 MB


@pytest.mark.parametrize("name", FLOAT_CODECS)
def test_encode(benchmark, stream, name):
    codec = make_codec(name)
    payload = benchmark.pedantic(codec.encode, args=(stream,), rounds=3, iterations=1)
    benchmark.extra_info["ratio"] = round(len(payload) / stream.nbytes, 4)


@pytest.mark.parametrize("name", FLOAT_CODECS)
def test_decode(benchmark, stream, name):
    codec = make_codec(name)
    payload = codec.encode(stream)
    out = benchmark.pedantic(
        codec.decode, args=(payload, stream.size), rounds=3, iterations=1
    )
    assert out.size == stream.size
    benchmark.extra_info["ratio"] = round(len(payload) / stream.nbytes, 4)


def test_codec_tradeoff_report(benchmark, stream, capsys):
    import time

    def compute():
        rows = {}
        for name in FLOAT_CODECS:
            codec = make_codec(name)
            t0 = time.perf_counter()
            payload = codec.encode(stream)
            enc = time.perf_counter() - t0
            t0 = time.perf_counter()
            codec.decode(payload, stream.size)
            dec = time.perf_counter() - t0
            rows[name] = [
                round(len(payload) / stream.nbytes, 3),
                round(stream.nbytes / enc / 1e6, 1),
                round(stream.nbytes / dec / 1e6, 1),
                "lossy" if not codec.lossless else "lossless",
            ]
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Extension - codec ratio/throughput on 8 MB turbulence stream",
                ["codec", "ratio", "enc MB/s", "dec MB/s", "kind"],
                rows,
            )
        )
    record_result("ext_codec_tradeoff", {"rows": rows})

    # The paper's qualitative trade-off: ISABELA has the best ratio and
    # the worst throughput; ISOBAR trades ratio for speed.
    assert rows["isabela"][0] < rows["isobar"][0]
    assert rows["isabela"][2] < rows["isobar"][2]
