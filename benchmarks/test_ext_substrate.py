"""Extension micro-benchmarks: the performance-critical substrates.

Regression guards for the vectorized kernels everything else sits on:
Hilbert encode/decode, WAH bitmap compression, varint packing, the
position-index codec, and PLoD byte-plane splitting.  These are wall
times of this implementation (no cost-model scaling) — the numbers
that matter for keeping the benchmark suite itself fast.
"""

import numpy as np
import pytest

from repro.index.binindex import decode_position_block, encode_position_block
from repro.index.bitmap import wah_decode, wah_from_positions
from repro.plod.byteplanes import assemble_from_groups, split_byte_groups
from repro.sfc.hilbert import hilbert_decode, hilbert_encode
from repro.util.varint import varint_decode_array, varint_encode_array

N_POINTS = 1 << 18  # 256k


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(17)


class TestHilbertThroughput:
    def test_encode_2d(self, benchmark, rng):
        coords = rng.integers(0, 1 << 10, size=(N_POINTS, 2))
        out = benchmark(hilbert_encode, coords, 10)
        assert out.size == N_POINTS

    def test_decode_3d(self, benchmark, rng):
        idx = rng.integers(0, 1 << 30, size=N_POINTS, dtype=np.uint64)
        out = benchmark(hilbert_decode, idx, 3, 10)
        assert out.shape == (N_POINTS, 3)


class TestBitmapThroughput:
    def test_wah_from_positions_sparse(self, benchmark, rng):
        positions = rng.choice(4_000_000, size=40_000, replace=False)
        words = benchmark(wah_from_positions, positions, 4_000_000)
        assert words.size > 0

    def test_wah_decode(self, benchmark, rng):
        positions = rng.choice(4_000_000, size=40_000, replace=False)
        words = wah_from_positions(positions, 4_000_000)
        out = benchmark(wah_decode, words, 4_000_000)
        assert out.size == (4_000_000 + 7) // 8


class TestVarintThroughput:
    def test_encode(self, benchmark, rng):
        values = rng.integers(0, 1 << 20, size=N_POINTS, dtype=np.uint64)
        payload = benchmark(varint_encode_array, values)
        assert len(payload) > 0

    def test_decode(self, benchmark, rng):
        values = rng.integers(0, 1 << 20, size=N_POINTS, dtype=np.uint64)
        payload = varint_encode_array(values)
        out = benchmark(varint_decode_array, payload, N_POINTS)
        assert out.size == N_POINTS


class TestPositionIndexThroughput:
    def test_roundtrip(self, benchmark, rng):
        chunks = [
            np.sort(rng.choice(4096, size=300, replace=False)) for _ in range(64)
        ]
        counts = np.array([c.size for c in chunks])

        def run():
            payload = encode_position_block(chunks)
            return decode_position_block(payload, counts)

        out = benchmark(run)
        assert len(out) == 64


class TestPLoDThroughput:
    def test_split(self, benchmark, rng):
        values = rng.uniform(100, 1000, N_POINTS)
        groups = benchmark(split_byte_groups, values)
        assert len(groups) == 7

    def test_assemble_level2(self, benchmark, rng):
        values = rng.uniform(100, 1000, N_POINTS)
        groups = split_byte_groups(values)
        out = benchmark(assemble_from_groups, groups[:2], N_POINTS, 2)
        assert out.size == N_POINTS
