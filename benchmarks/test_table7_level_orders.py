"""Table VII: V-M-S versus V-S-M level ordering, 512 GB-class S3D.

Paper (1% region selectivity value queries):

                 3-byte PLoD    full precision
    V-M-S order     19.45           39.34
    V-S-M order     23.70           35.47

The mechanism: V-M-S stores each byte group contiguously per bin, so a
3-byte (PLoD level 2) access reads a contiguous prefix region — but a
full-precision access must visit all seven scattered group regions.
V-S-M keeps each chunk's bytes together, inverting the trade.  The
paper's takeaway (asserted below): each order wins its own favored
pattern and the penalty of the "wrong" order stays bounded.
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.harness import PAPER, format_rows, get_spec, record_result
from repro.pfs import PFSCostModel, SimulatedPFS


@pytest.fixture(scope="module")
def order_stores():
    # The order trade-off is a byte-group-vs-chunk contiguity effect;
    # it needs enough chunks and bins that compression blocks resolve
    # individual (group, chunk-run) cells, so this benchmark pins its
    # geometry (128^3 field, 16^3 chunks, 32 bins) independent of the
    # scale tier and keeps the 512 GB-class byte magnification.
    from repro.datasets import s3d_like
    from repro.harness import WorkloadGenerator

    data = s3d_like((128, 128, 128), seed=41)
    byte_scale = (512 << 30) / data.nbytes
    fs = SimulatedPFS(PFSCostModel(byte_scale=byte_scale))
    block = max(4096, int(round(fs.cost_model.stripe_size / byte_scale)))
    stores = {}
    for order in ("VMS", "VSM"):
        cfg = mloc_col(
            chunk_shape=(16, 16, 16),
            n_bins=16,
            level_order=order,
            target_block_bytes=block,
        )
        MLOCWriter(fs, f"/orders/{order}", cfg).write(data, variable="f")
        stores[order] = MLOCStore.open(fs, f"/orders/{order}", "f", n_ranks=8)

    workload = WorkloadGenerator.for_data(data, seed=48)
    return fs, workload, stores


def _avg(fs, store, regions, plod_level):
    """Median response time plus the deterministic I/O+decompression
    part.  The latter carries the layout effect (bytes read per order);
    reconstruction is measured wall time whose jitter can exceed the
    paper's own 10-20% margins, so assertions use the deterministic
    component while the table displays totals."""
    import statistics

    totals, deterministic = [], []
    for region in regions:
        fs.clear_cache()
        r = store.query(Query(region=region, output="values", plod_level=plod_level))
        totals.append(r.times.total)
        deterministic.append(r.times.io + r.times.decompression)
    return statistics.median(totals), statistics.median(deterministic)


# The paper ran 1% selectivity on 512 GB, where each (bin, byte-group)
# extent spans many 1 MB stripes.  At reproduction scale the same
# regime requires 10% selectivity so those extents exceed one
# compression block; below that, block quantization (not layout order)
# dominates and the comparison degenerates.
_SELECTIVITY = 0.10


@pytest.mark.parametrize("order", ["VMS", "VSM"])
@pytest.mark.parametrize("plod_level", [2, 7])
def test_order_query(benchmark, order_stores, order, plod_level):
    fs, workload, stores = order_stores
    region = workload.region_constraints(_SELECTIVITY, 1)[0]

    def run():
        fs.clear_cache()
        return stores[order].query(
            Query(region=region, output="values", plod_level=plod_level)
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    paper = PAPER["table7_level_orders"]["V-M-S" if order == "VMS" else "V-S-M"]
    attach_sim_info(
        benchmark, result.times, paper_value=paper[0 if plod_level == 2 else 1]
    )


def test_table7_report(benchmark, order_stores, capsys):
    fs, workload, stores = order_stores
    regions = workload.region_constraints(_SELECTIVITY, max(N_QUERIES, 5))

    def compute():
        rows = {}
        hidden = {}
        for order in ("VMS", "VSM"):
            plod3, plod3_det = _avg(fs, stores[order], regions, plod_level=2)
            full, full_det = _avg(fs, stores[order], regions, plod_level=7)
            paper = PAPER["table7_level_orders"]["V-M-S" if order == "VMS" else "V-S-M"]
            rows[f"{order[0]}-{order[1]}-{order[2]} order"] = [
                round(plod3, 2),
                round(full, 2),
                paper[0],
                paper[1],
            ]
            hidden[order] = (plod3_det, full_det)
        return rows, hidden

    rows, hidden = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Table VII - level-order seconds (sim) vs paper, value "
                "queries, 512 GB-class S3D",
                ["order", "3-byte", "full", "paper-3B", "paper-full"],
                rows,
            )
        )
    record_result("table7_level_orders", {"rows": rows})

    vms_det = hidden["VMS"]
    vsm_det = hidden["VSM"]
    # Each order wins its favored access pattern on the deterministic
    # (I/O + decompression) component that the layout controls:
    assert vms_det[0] < vsm_det[0]  # V-M-S better for 3-byte PLoD access
    assert vsm_det[1] < vms_det[1]  # V-S-M better for full precision
    # ...and the penalty of the wrong order is bounded (paper: < ~25%).
    assert vsm_det[0] / vms_det[0] < 2.5
    assert vms_det[1] / vsm_det[1] < 2.5
