"""Fig. 6: execution-time components for value retrieval (0.1%
selectivity, 512 GB-class S3D): I/O vs decompression vs reconstruction.

Paper shape: sequential scan is all I/O; every MLOC variant reads far
fewer bytes; MLOC-ISA has the *least* I/O but the *most* decompression
(B-spline evaluation); reconstruction is small for everyone.
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import ComponentTimes
from repro.harness import format_rows, record_result

SYSTEMS = ("mloc-col", "mloc-iso", "mloc-isa", "seqscan")


@pytest.mark.parametrize("system", SYSTEMS)
def test_components_bench(benchmark, suite_s3d_512g, system):
    suite = suite_s3d_512g
    suite.store(system)
    region = suite.workload.region_constraints(0.001, 1)[0]
    result = benchmark.pedantic(
        suite.value_query, args=(system, region), rounds=3, iterations=1
    )
    attach_sim_info(benchmark, result.times)


def test_fig6_report(benchmark, suite_s3d_512g, capsys):
    from repro.harness.experiments import fig6_rows

    suite = suite_s3d_512g
    rows = benchmark.pedantic(
        fig6_rows, args=(suite, N_QUERIES), rounds=1, iterations=1
    )
    components = {
        system: ComponentTimes(io=v[0], decompression=v[1], reconstruction=v[2])
        for system, v in rows.items()
    }
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Fig 6 - component seconds (sim), 0.1% value queries, "
                "512 GB-class S3D",
                ["system", "io", "decomp", "reconstruct", "total"],
                rows,
            )
        )
    record_result("fig6_components", {"rows": rows})

    # Paper's qualitative claims:
    # 1. MLOC-ISA has the least I/O of the MLOC variants (best reduction).
    assert components["mloc-isa"].io <= components["mloc-col"].io
    assert components["mloc-isa"].io <= components["mloc-iso"].io
    # 2. MLOC-ISA spends the most on decompression (B-spline recovery).
    assert components["mloc-isa"].decompression > components["mloc-iso"].decompression
    assert components["mloc-isa"].decompression > components["mloc-col"].decompression
    # 3. Sequential scan does no decompression at all.
    assert components["seqscan"].decompression == 0.0
