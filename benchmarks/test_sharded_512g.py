"""Sharded scale-out on the 512 GB-class workloads (Tables IV/V scale).

The single-store 512 GB benchmarks answer the paper's MLOC-vs-scan
rows; this suite re-serves the same workloads through
:class:`ShardedMLOCStore` to pin the scale-out contract at that scale:

* the merged answer of every region/value query is identical to the
  unsharded store on the same bytes, for every shard count;
* the per-shard scaling row — merged simulated seconds vs shard count
  with one rank per shard — improves monotonically and reaches a
  multi-x speedup by 8 shards (near-linear until shards outnumber the
  bins a query touches);
* sharding adds no storage: it is a metadata-level view over the same
  subfiles.

Marked slow via the benchmarks conftest, like every 512 GB suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import MLOCStore, Query, ShardedMLOCStore
from repro.harness import format_rows, record_result
from repro.harness.experiments import sharded_scaling_rows

SHARD_COUNTS = (1, 2, 4, 8)


def _open_sharded(suite, n_shards, **options):
    base = suite.store("mloc-col")
    return ShardedMLOCStore(
        suite.fs, base.root, base.meta, n_shards=n_shards, **options
    )


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_region_query_identical_gts_512g(benchmark, suite_gts_512g, n_shards):
    """Table IV's 1% region workload served by a sharded store."""
    suite = suite_gts_512g
    flat = suite.store("mloc-col")
    constraint = suite.workload.value_constraints(0.01, 1)[0]
    query = Query(value_range=tuple(constraint), output="positions")
    suite.fs.clear_cache()
    expected = flat.query(query)

    sharded = _open_sharded(suite, n_shards, n_ranks=suite.n_ranks)

    def run():
        suite.fs.clear_cache()
        return sharded.query(query)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert np.array_equal(result.positions, expected.positions)
    assert result.stats["n_results"] == expected.stats["n_results"]
    attach_sim_info(
        benchmark,
        result.times,
        n_results=result.stats["n_results"],
        n_shards=n_shards,
        shards_hit=result.stats["shards_hit"],
    )


def test_value_query_identical_s3d_512g(suite_s3d_512g):
    """Table V's value workload: sharded == unsharded on S3D too."""
    suite = suite_s3d_512g
    flat = suite.store("mloc-col")
    sharded = _open_sharded(suite, 4, n_ranks=suite.n_ranks)
    for constraint in suite.workload.value_constraints(0.01, max(N_QUERIES, 2)):
        query = Query(value_range=tuple(constraint), output="values")
        suite.fs.clear_cache()
        expected = flat.query(query)
        suite.fs.clear_cache()
        result = sharded.query(query)
        assert np.array_equal(result.positions, expected.positions)
        assert np.array_equal(result.values, expected.values)


def test_sharded_storage_is_metadata_only(suite_gts_512g):
    """Opening any shard count reads the same subfiles: no extra bytes."""
    suite = suite_gts_512g
    flat = suite.store("mloc-col")
    for n_shards in (2, 8):
        assert _open_sharded(suite, n_shards).storage_report() == (
            flat.storage_report()
        )


@pytest.mark.parametrize("dataset", ["gts", "s3d"])
def test_sharded_scaling_report(
    benchmark, dataset, suite_gts_512g, suite_s3d_512g, capsys
):
    """The per-shard scaling row for the 512 GB report."""
    suite = suite_gts_512g if dataset == "gts" else suite_s3d_512g
    rows, info = benchmark.pedantic(
        sharded_scaling_rows,
        args=(suite, "mloc-col"),
        kwargs={"shard_counts": SHARD_COUNTS, "n_queries": max(N_QUERIES, 3)},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            format_rows(
                f"Sharded 512 GB-class {dataset.upper()}: simulated seconds "
                f"vs shard count (bounds {info['shard_bounds']})",
                ["shards", "io", "decomp", "io+decomp", "speedup"],
                rows,
            )
        )
    record_result(f"sharded_512g_{dataset}", {"rows": rows, **info})
    assert info["identical"], "sharded answers diverged across shard counts"
    speedups = [rows[f"{n} shards"][3] for n in SHARD_COUNTS]
    assert speedups == sorted(speedups), rows
    assert speedups[-1] >= 3.0, rows
