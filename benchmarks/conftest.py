"""Shared benchmark fixtures: system suites per dataset scale.

Scale is controlled by ``REPRO_SCALE`` (tiny | small | large; default
small) and the simulated-query workload width by ``REPRO_QUERIES``
(default 5 random constraints per cell, vs the paper's 100).

Every benchmark reports two things:

* the pytest-benchmark wall time of one representative cold-cache
  query (real CPU + simulator bookkeeping on this machine);
* ``extra_info["sim_seconds"]`` — the *paper-scale-equivalent response
  time* from the cost models (DESIGN.md §5), which is the number to
  compare against the paper's tables.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import get_spec, get_suite

N_QUERIES = int(os.environ.get("REPRO_QUERIES", "5"))


def pytest_collection_modifyitems(items):
    """Every benchmark is ``slow``: tier-1 runs deselect them with
    ``-m 'not slow'`` while ``make bench`` still collects everything."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def suite_gts_8g():
    return get_suite(get_spec("8g", "gts"))


@pytest.fixture(scope="session")
def suite_s3d_8g():
    return get_suite(get_spec("8g", "s3d"))


@pytest.fixture(scope="session")
def suite_gts_512g():
    return get_suite(get_spec("512g", "gts"))


@pytest.fixture(scope="session")
def suite_s3d_512g():
    return get_suite(get_spec("512g", "s3d"))


def attach_sim_info(benchmark, times, paper_value=None, **extra):
    """Record simulated component times on a benchmark."""
    benchmark.extra_info["sim_seconds"] = round(times.total, 4)
    benchmark.extra_info["sim_io"] = round(times.io, 4)
    benchmark.extra_info["sim_decompression"] = round(times.decompression, 4)
    benchmark.extra_info["sim_reconstruction"] = round(times.reconstruction, 4)
    if paper_value is not None:
        benchmark.extra_info["paper_seconds"] = paper_value
    for key, value in extra.items():
        benchmark.extra_info[key] = value


def attach_batch_info(benchmark, batch):
    """Record a BatchResult's aggregate times and cache counters."""
    attach_sim_info(benchmark, batch.times)
    for key in ("n_queries", "blocks_planned", "blocks_decoded",
                "cache_hits", "cache_misses"):
        if key in batch.stats:
            benchmark.extra_info[key] = batch.stats[key]
