"""Broker traffic replay: 64 overlapping tenants vs per-tenant serial.

The acceptance experiment of the serving layer (docs/serving.md): a
64-tenant exploration workload — one drifting region walk dealt
round-robin across tenants, so *consecutive, heavily overlapping*
boxes belong to *different* tenants — replayed through the broker in
open- and closed-loop arrival modes, against the strongest per-tenant
baseline the library offers (each tenant batching its own stream
through ``query_many``, cold PFS per tenant: serial submission shares
nothing across tenants).

Asserted, not just recorded:

* every tenant's broker-served results are bit-identical to its
  serial run;
* the broker's simulated I/O bytes are at least **2x** below the
  per-tenant serial total on the same trace.

Latency percentiles (simulated seconds), dedup rate, and the I/O
comparison land in ``results/BENCH_broker_load.json``.
"""

from __future__ import annotations

import numpy as np

from repro.core import MLOCStore, Query
from repro.harness import record_result
from repro.server import (
    BrokerConfig,
    BrokerCore,
    open_loop_events,
    replay_closed_loop,
    replay_open_loop,
)

N_TENANTS = 64
QUERIES_PER_TENANT = 3
SELECTIVITY = 0.02
DRIFT = 0.3
ARRIVAL_RATE = 20.0  # open-loop queries per simulated second per tenant

RESULTS: dict[str, object] = {}


def _tenant_queries(suite) -> dict[str, list[Query]]:
    """The 64-tenant overlapping workload over the 8g GTS field."""
    regions = suite.workload.overlapping_region_constraints(
        SELECTIVITY, N_TENANTS * QUERIES_PER_TENANT, drift=DRIFT
    )
    return {
        f"tenant-{t:03d}": [
            Query(region=regions[i], output="values")
            for i in range(t, len(regions), N_TENANTS)
        ]
        for t in range(N_TENANTS)
    }


def _broker_store(suite) -> MLOCStore:
    base = suite.store("mloc-col")
    return MLOCStore(
        suite.fs,
        base.root,
        base.meta,
        n_ranks=suite.n_ranks,
        cache_bytes=64 << 20,
        plan_cache=64,
    )


def test_broker_halves_io_and_keeps_results_identical(suite_gts_8g):
    suite = suite_gts_8g
    tenants = _tenant_queries(suite)

    # Per-tenant serial baseline: each tenant batches its own stream
    # (within-tenant dedup via query_many's shared fetcher) on a fresh
    # handle with a cold PFS — serial submission shares nothing across
    # tenants.
    base = suite.store("mloc-col")
    serial_bytes = 0
    serial_results: dict[str, list] = {}
    serial_sim_seconds = 0.0
    for tenant, queries in tenants.items():
        handle = MLOCStore(suite.fs, base.root, base.meta, n_ranks=suite.n_ranks)
        suite.fs.clear_cache()
        batch = handle.query_many(queries)
        serial_bytes += batch.stats["bytes_read"]
        serial_sim_seconds += batch.times.total
        serial_results[tenant] = list(batch.results)

    # Broker, phase 1 — bit-identity on the same submission order.
    suite.fs.clear_cache()
    core = BrokerCore(_broker_store(suite), BrokerConfig(max_inflight=16))
    requests = {
        tenant: [core.submit(tenant, q) for q in queries]
        for tenant, queries in tenants.items()
    }
    core.drain()
    for tenant, reqs in requests.items():
        for req, expected in zip(reqs, serial_results[tenant]):
            assert req.status == "done"
            assert np.array_equal(req.result.positions, expected.positions)
            assert np.array_equal(req.result.values, expected.values)

    # Broker, phase 2 — open-loop replay for latency and I/O totals.
    suite.fs.clear_cache()
    open_core = BrokerCore(_broker_store(suite), BrokerConfig(max_inflight=16))
    events = open_loop_events(tenants, rate=ARRIVAL_RATE, seed=suite.spec.seed)
    open_report = replay_open_loop(open_core, events)
    open_summary = open_report.as_dict()
    broker_bytes = open_summary["bytes_read"]

    assert open_summary["n_requests"] == N_TENANTS * QUERIES_PER_TENANT
    assert open_summary["dropped"] == 0
    assert serial_bytes >= 2 * broker_bytes, (
        f"broker read {broker_bytes} simulated bytes vs {serial_bytes} "
        f"serial — less than the required 2x saving"
    )

    RESULTS["workload"] = {
        "n_tenants": N_TENANTS,
        "queries_per_tenant": QUERIES_PER_TENANT,
        "selectivity": SELECTIVITY,
        "drift": DRIFT,
        "dataset": suite.spec.name,
    }
    RESULTS["io_bytes"] = {
        "serial_per_tenant": int(serial_bytes),
        "broker_open_loop": int(broker_bytes),
        "savings_factor": round(serial_bytes / max(broker_bytes, 1), 2),
    }
    RESULTS["serial_baseline"] = {
        "sim_seconds_total": round(serial_sim_seconds, 4),
    }
    RESULTS["open_loop"] = open_summary


def test_closed_loop_replay(suite_gts_8g):
    suite = suite_gts_8g
    tenants = _tenant_queries(suite)
    suite.fs.clear_cache()
    core = BrokerCore(_broker_store(suite), BrokerConfig(max_inflight=16))
    report = replay_closed_loop(core, tenants, think_time=0.005)
    summary = report.as_dict()
    assert summary["n_requests"] == N_TENANTS * QUERIES_PER_TENANT
    assert report.broker["pending"] == 0
    assert summary["dedup_rate"] > 0.0
    RESULTS["closed_loop"] = summary


def teardown_module(module) -> None:
    assert RESULTS, "broker load benchmarks did not run"
    path = record_result("BENCH_broker_load", RESULTS)
    print(f"\nbroker load results -> {path}")
