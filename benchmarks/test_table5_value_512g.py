"""Table V: value-query response time on the 512 GB-class datasets.

Paper row shape: MLOC-ISA is fastest at 0.1% selectivity (smallest
bytes on disk) but falls behind the other variants at 1% because
B-spline reconstruction dominates — the crossover this benchmark
asserts.  Sequential scan pays its offset reads but loses at 1%.
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.harness import PAPER, format_rows, record_result

SYSTEMS = ("mloc-col", "mloc-iso", "mloc-isa", "seqscan")


@pytest.mark.parametrize("system", SYSTEMS)
def test_value_query_01pct_gts_512g(benchmark, suite_gts_512g, system):
    suite = suite_gts_512g
    suite.store(system)
    region = suite.workload.region_constraints(0.001, 1)[0]
    result = benchmark.pedantic(
        suite.value_query, args=(system, region), rounds=3, iterations=1
    )
    attach_sim_info(
        benchmark,
        result.times,
        paper_value=PAPER["table5_value_512g"][system][0],
        n_results=result.n_results,
    )


@pytest.mark.parametrize("dataset", ["gts", "s3d"])
def test_table5_report(benchmark, dataset, suite_gts_512g, suite_s3d_512g, capsys):
    suite = suite_gts_512g if dataset == "gts" else suite_s3d_512g

    from repro.harness.experiments import table5_rows

    rows, det = benchmark.pedantic(
        table5_rows,
        args=(suite, dataset, N_QUERIES),
        kwargs={"detailed": True},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            format_rows(
                f"Table V - value query seconds, 512 GB-class {dataset.upper()} "
                "(sim) vs paper",
                ["system", "0.1%", "1%", "paper-0.1%", "paper-1%"],
                rows,
            )
        )
    record_result(f"table5_value_512g_{dataset}", {"rows": rows})

    # The ISABELA crossover (paper's observation on Table V): the ISA
    # advantage shrinks or inverts as selectivity grows, because its
    # decompression cost scales with retrieved volume.  Compared on the
    # deterministic io+decompression component, where the effect lives.
    isa_ratio = det["mloc-isa"][1] / det["mloc-isa"][0]
    iso_ratio = det["mloc-iso"][1] / det["mloc-iso"][0]
    assert isa_ratio > iso_ratio * 0.8
    # Sequential-scan cost scales ~linearly with retrieved volume
    # (offset reads), while MLOC amortizes per-bin costs: the scan's
    # 0.1%->1% growth factor must exceed every MLOC variant's.
    # (At scaled-down geometry the scan's *absolute* seek penalty is
    # under-represented — see EXPERIMENTS.md — so the paper's absolute
    # MLOC-vs-scan ordering is asserted via growth rates instead.)
    scan_growth = rows["seqscan"][1] / max(rows["seqscan"][0], 1e-9)
    for s in ("mloc-col", "mloc-iso", "mloc-isa"):
        mloc_growth = rows[s][1] / max(rows[s][0], 1e-9)
        assert scan_growth > mloc_growth
