"""Table I: space requirements of data and index for 8 GB-class data.

Paper (per 8 GB raw): MLOC-COL 6.5+1.6, MLOC-ISO 6.9+1.6, MLOC-ISA
1.6+1.6 (lossy), Seq.Scan 8.0+0, FastBit 8.0+10.0, SciDB 8.8+0 GB.
The reproduction reports the same rows as fractions of the raw size —
fractions are scale-invariant, so they compare directly.
"""

import pytest

from repro.harness import ALL_SYSTEMS, PAPER, format_rows, record_result


def _fractions(suite, system):
    sizes = suite.storage_bytes(system)
    raw = suite.spec.raw_bytes
    return sizes["data"] / raw, sizes["index"] / raw


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_storage_footprint(benchmark, suite_gts_8g, system):
    """Wall time = storage accounting; extra_info = the Table I row."""
    suite = suite_gts_8g
    suite.store(system)  # build outside the timed section
    data_frac, index_frac = benchmark(_fractions, suite, system)
    paper_row = PAPER["table1_storage_gb"][system]
    benchmark.extra_info["data_fraction"] = round(data_frac, 3)
    benchmark.extra_info["index_fraction"] = round(index_frac, 3)
    benchmark.extra_info["total_fraction"] = round(data_frac + index_frac, 3)
    benchmark.extra_info["paper_total_fraction"] = round(
        (paper_row[0] + paper_row[1]) / 8.0, 3
    )


def test_table1_report(benchmark, suite_gts_8g, capsys):
    """Regenerate the full Table I and check its qualitative shape."""
    from repro.harness.experiments import table1_rows

    suite = suite_gts_8g
    rows = benchmark.pedantic(table1_rows, args=(suite,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Table I - storage as fraction of raw data (8 GB-class GTS)",
                ["system", "data", "index", "total", "paper-total"],
                rows,
            )
        )
    record_result("table1_storage", {"rows": rows})

    # Shape assertions mirroring the paper's conclusions:
    # lossy ISABELA reduces total far below raw;
    assert rows["mloc-isa"][2] < 0.6
    # lossless MLOC stays near (at or below ~1.1x) raw;
    assert rows["mloc-col"][2] < 1.1
    assert rows["mloc-iso"][2] < 1.1
    # FastBit's bitmap index dominates its footprint;
    assert rows["fastbit"][1] > 0.5
    assert rows["fastbit"][2] > 1.5
    # SciDB's overlap replication exceeds raw.
    assert 1.0 < rows["scidb"][2] < 1.4
