"""In-situ ingest serving: query latency under concurrent appends.

The acceptance experiment of the appendable-manifest refactor (ISSUE
PR 10): a simulation emits timesteps on a fixed cadence while two
analyst tenants query mid-run.  Three headline numbers land in
``results/BENCH_insitu_ingest.json``:

* **time-to-first-queryable-timestep** — seal time of the first
  member (arrival -> manifest commit on the simulated clock);
* **query latency with vs without concurrent appends** — the same
  query trace replayed against an actively ingesting dataset and
  against the same dataset fully sealed up front;
* **ingest throughput** — raw simulation bytes absorbed per simulated
  second of staging time.

Asserted, not just recorded:

* mid-run queries complete against *earlier* generations while later
  appends are still landing (the snapshot-pinning story), and each
  result is bit-identical to a fresh open pinned at that generation;
* one append touches only the new member's directory plus one new
  immutable manifest file — no whole-dataset index is rebuilt.
"""

from __future__ import annotations

import numpy as np

from repro.core import MLOCDataset, Query, mloc_col
from repro.datasets import gts_like
from repro.harness import record_result
from repro.pfs import SimulatedPFS
from repro.server import IngestQueryEvent, IngestSession, TimestepArrival, replay_ingest

N_TIMESTEPS = 8
CADENCE_S = 2.0  # simulation output interval
GRID = (128, 128)

RESULTS: dict[str, object] = {}


def _config():
    return mloc_col(chunk_shape=(32, 32), n_bins=16, target_block_bytes=8 * 1024)


def _arrivals(*, start: float, cadence: float) -> list[TimestepArrival]:
    return [
        TimestepArrival(
            time=start + t * cadence,
            variable="temp",
            timestep=t,
            data=gts_like(GRID, seed=100 + t),
        )
        for t in range(N_TIMESTEPS)
    ]


def _query_trace(start: float) -> list[IngestQueryEvent]:
    """Two tenants probing mid-run: latest-sealed scans and targeted
    timesteps (some still in flight when requested)."""
    rng = np.random.default_rng(42)
    events = []
    for i in range(2 * N_TIMESTEPS):
        tenant = f"analyst-{i % 2}"
        lo = int(rng.integers(0, GRID[0] - 48))
        query = Query(region=((lo, lo + 48), (lo, lo + 48)), output="values")
        # Half the trace asks for "newest sealed", half pins the *next*
        # timestep — not yet arrived when the query lands, so the
        # request stalls until its seal (the eager-analyst pattern).
        timestep = None if i % 2 == 0 else min(i // 2 + 1, N_TIMESTEPS - 1)
        events.append(
            IngestQueryEvent(
                arrival=start + i * CADENCE_S / 2.0,
                tenant=tenant,
                variable="temp",
                query=query,
                timestep=timestep,
            )
        )
    return events


def test_ingest_overlap_vs_sealed_baseline():
    # --- overlapped run: appends and queries share the clock ---------
    fs = SimulatedPFS()
    dataset = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    session = IngestSession(dataset, _arrivals(start=0.0, cadence=CADENCE_S))
    events = _query_trace(start=1.0)
    overlap = replay_ingest(session, events, keep_results=True)
    summary = overlap.as_dict()

    assert summary["dropped"] == 0
    assert summary["n_requests"] == len(events)
    final_generation = dataset.generation
    served_generations = sorted({s[3] for s in overlap.samples})
    assert served_generations[0] < final_generation, (
        "no query completed against an earlier generation — snapshot "
        "pinning under concurrent appends is not being exercised"
    )
    assert summary["generations_seen"] > 1
    assert summary["first_queryable_s"] < CADENCE_S, (
        "first timestep should be queryable before the second arrives"
    )
    assert summary["stalled_requests"] >= 1
    assert summary["ingest_stall_seconds"] > 0.0

    # Mid-run results are bit-identical to a fresh open pinned at the
    # generation each query was served against.
    check = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    for (_, _, _, generation, timestep, _), event, served in zip(
        overlap.samples, sorted(events, key=lambda e: e.arrival), overlap.results
    ):
        expected = check.snapshot(generation).store("temp", timestep).query(
            event.query
        )
        assert np.array_equal(served.positions, expected.positions)
        assert np.array_equal(served.values, expected.values)
    RESULTS["overlap"] = summary
    RESULTS["served_generations"] = served_generations
    RESULTS["final_generation"] = final_generation

    # --- sealed baseline: identical trace, everything sealed first --
    fs2 = SimulatedPFS()
    dataset2 = MLOCDataset(fs2, "/ds", _config(), n_ranks=4)
    presession = IngestSession(dataset2, _arrivals(start=0.0, cadence=0.0))
    presession.run_to_completion()
    sealed_start = presession.appended[-1].sealed_at
    baseline = replay_ingest(
        IngestSession(dataset2, []),
        _query_trace(start=sealed_start + 1.0),
    )
    base_summary = baseline.as_dict()
    assert base_summary["dropped"] == 0
    assert base_summary["stalled_requests"] == 0
    assert base_summary["ingest_stall_seconds"] == 0.0
    RESULTS["sealed_baseline"] = base_summary
    RESULTS["latency_overhead_p50"] = round(
        summary["latency_p50_s"] - base_summary["latency_p50_s"], 6
    )

    RESULTS["ingest"] = {
        "n_timesteps": N_TIMESTEPS,
        "cadence_s": CADENCE_S,
        "grid": list(GRID),
        "first_queryable_s": summary["first_queryable_s"],
        "throughput_raw_bytes_per_s": summary["ingest_throughput_bps"],
        "raw_bytes": session.raw_bytes,
        "stored_bytes": session.stored_bytes,
    }


def test_append_touches_only_new_member_and_manifest():
    """No full-dataset reindex: the file-set delta of one append is the
    new member's directory plus exactly one new manifest generation."""
    fs = SimulatedPFS()
    dataset = MLOCDataset(fs, "/ds", _config(), n_ranks=4)
    for t in range(3):
        dataset.append(gts_like(GRID, seed=t), "temp", t)
    before = {p: fs.total_bytes(p) for p in fs.list_files("/ds/")}
    dataset.append(gts_like(GRID, seed=3), "temp", 3)
    after = {p: fs.total_bytes(p) for p in fs.list_files("/ds/")}

    changed = {p for p in after if before.get(p) != after[p]}
    new_manifests = {p for p in changed if "/manifest.g" in p}
    assert len(new_manifests) == 1
    member_files = changed - new_manifests
    assert member_files, "append wrote no member files"
    assert all(p.startswith("/ds/temp@000003/") for p in member_files), (
        f"append touched files outside the new member: {sorted(member_files)}"
    )
    # Existing files are immutable: nothing previously on disk changed.
    assert all(before[p] == after[p] for p in before)
    RESULTS["append_delta"] = {
        "new_member_files": len(member_files),
        "new_manifest_files": len(new_manifests),
        "preexisting_files_changed": 0,
    }


def teardown_module(module) -> None:
    assert RESULTS, "in-situ ingest benchmarks did not run"
    path = record_result("BENCH_insitu_ingest", RESULTS)
    print(f"\nin-situ ingest results -> {path}")
