"""Ablation: the aligned-bin index-only fast path (Section III-D1).

Region-only queries over aligned bins are answered purely from the
per-bin position indices; forcing value retrieval on the same
constraint reads and decompresses the data too.  The gap between the
two is the fast path's payoff, and it grows with selectivity (more
fully-aligned bins).
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import Query
from repro.harness import format_rows, record_result


@pytest.mark.parametrize("output", ["positions", "values"])
def test_aligned_path_bench(benchmark, suite_gts_8g, output):
    suite = suite_gts_8g
    store = suite.store("mloc-col")
    constraint = suite.workload.value_constraints(0.10, 1)[0]

    def run():
        suite.fs.clear_cache()
        return store.query(Query(value_range=constraint, output=output))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(
        benchmark,
        result.times,
        aligned_bins=result.stats["aligned_bins"],
        bytes_read=result.stats["bytes_read"],
    )


def test_ablation_aligned_report(benchmark, suite_gts_8g, capsys):
    suite = suite_gts_8g
    store = suite.store("mloc-col")

    def compute():
        rows = {}
        gains = {}
        for sel in (0.01, 0.05, 0.20):
            constraints = suite.workload.value_constraints(sel, N_QUERIES)
            totals = {"positions": 0.0, "values": 0.0}
            bytes_read = {"positions": 0.0, "values": 0.0}
            aligned = 0
            for constraint in constraints:
                for output in totals:
                    suite.fs.clear_cache()
                    r = store.query(Query(value_range=constraint, output=output))
                    totals[output] += r.times.total
                    bytes_read[output] += r.stats["bytes_read"]
                aligned += r.stats["aligned_bins"]
            k = len(constraints)
            rows[f"sel {sel:.0%}"] = [
                round(totals["positions"] / k, 3),
                round(totals["values"] / k, 3),
                round(bytes_read["positions"] / bytes_read["values"], 3),
                round(aligned / k, 1),
            ]
            gains[sel] = totals["values"] / max(totals["positions"], 1e-12)
        return rows, gains

    rows, gains = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Ablation - aligned-bin fast path (region-only vs value "
                "retrieval), 8 GB-class GTS",
                ["selectivity", "index-only-s", "with-data-s", "byte-ratio", "aligned"],
                rows,
            )
        )
    record_result("ablation_aligned", {"rows": rows})

    # The fast path must be cheaper wherever aligned bins exist...
    assert rows["sel 20%"][0] < rows["sel 20%"][1]
    assert rows["sel 20%"][2] < 0.9  # index-only reads far fewer bytes
    # ...and the byte saving (deterministic, unlike wall-time gains)
    # grows with selectivity as more bins become fully aligned.
    assert rows["sel 20%"][2] < rows["sel 1%"][2]
    assert gains[0.20] > 1.1
