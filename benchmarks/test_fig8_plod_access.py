"""Fig. 8: multiresolution access performance under different PLoDs
(1% selectivity value queries, 512 GB-class, MLOC-COL).

Paper shape: response time grows with PLoD level, driven almost
entirely by I/O (more byte groups fetched); decompression barely moves
(the low mantissa planes are stored raw, so "decompressing" them is a
copy); reconstruction is level-independent.
"""

import pytest

from benchmarks.conftest import N_QUERIES, attach_sim_info
from repro.core import Query
from repro.harness import format_rows, record_result

LEVELS = (1, 2, 3, 4, 5, 6, 7)


@pytest.mark.parametrize("level", [2, 4, 7])
def test_plod_access_bench(benchmark, suite_gts_512g, level):
    suite = suite_gts_512g
    store = suite.store("mloc-col")
    region = suite.workload.region_constraints(0.01, 1)[0]

    def run():
        suite.fs.clear_cache()
        return store.query(Query(region=region, output="values", plod_level=level))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(benchmark, result.times, plod_level=level)


def test_fig8_report(benchmark, suite_gts_512g, capsys):
    suite = suite_gts_512g
    store = suite.store("mloc-col")
    regions = suite.workload.region_constraints(0.01, N_QUERIES)

    from repro.harness.experiments import fig8_rows

    rows = benchmark.pedantic(
        fig8_rows, args=(suite, N_QUERIES, LEVELS), rounds=1, iterations=1
    )
    io_series = [rows[f"PLoD {lvl} ({lvl + 1}B)"][0] for lvl in LEVELS]
    decomp_series = [rows[f"PLoD {lvl} ({lvl + 1}B)"][1] for lvl in LEVELS]
    recon_series = [rows[f"PLoD {lvl} ({lvl + 1}B)"][2] for lvl in LEVELS]
    total_series = [rows[f"PLoD {lvl} ({lvl + 1}B)"][3] for lvl in LEVELS]
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Fig 8 - PLoD access seconds (sim), 1% value queries, "
                "512 GB-class GTS, MLOC-COL",
                ["level", "io", "decomp", "reconstruct", "total"],
                rows,
            )
        )
    record_result("fig8_plod_access", {"rows": rows})

    # Response time grows with precision level...
    assert total_series[-1] > total_series[0]
    # ...the growth lives in fetching+recovering bytes (I/O and
    # decompression), not in reconstruction, which the paper observes
    # "remains the same since it is ... irrelevant to the PLoDs used".
    io_growth = io_series[-1] - io_series[0]
    fetch_growth = io_growth + (decomp_series[-1] - decomp_series[0])
    total_growth = total_series[-1] - total_series[0]
    assert fetch_growth > 0.75 * total_growth
    assert io_growth > 0.0
    # Reconstruction is roughly level-independent.
    assert recon_series[-1] < max(recon_series[0] * 1.6, recon_series[0] + 5.0)
    # Level 2 (3 bytes) reads roughly 3/8 of the full-precision bytes.
    assert io_series[1] < 0.75 * io_series[-1]
