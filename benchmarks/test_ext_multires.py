"""Extension benchmark: PLoD vs subset-based multiresolution.

Section III-B3 claims the precision-based approach "achieves higher
detail preservation than what is possible for traditional
multi-resolution data sampling": at a matched I/O budget, fetching
*all* points at reduced byte precision preserves analysis results far
better than fetching full-precision values of a spatial subset.  This
benchmark quantifies that claim — the paper states it without a table.

Protocol: over the same S3D-like field, compare (a) PLoD level k reads
on a V-M-S store against (b) resolution-level reads on a hierarchical
store, pairing configurations with similar bytes read; report each
one's mean-value error and histogram-migration error vs ground truth.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_sim_info
from repro.analysis import histogram_migration_error
from repro.core import MLOCStore, MLOCWriter, Query, mloc_col
from repro.datasets import s3d_like
from repro.harness import format_rows, record_result
from repro.pfs import PFSCostModel, SimulatedPFS


@pytest.fixture(scope="module")
def multires_stores():
    data = s3d_like((128, 128, 128), seed=71)
    byte_scale = (8 << 30) / data.nbytes
    fs = SimulatedPFS(PFSCostModel(byte_scale=byte_scale))
    block = max(4096, int(round(fs.cost_model.stripe_size / byte_scale)))
    stores = {}
    for label, curve in (("plod", "hilbert"), ("subset", "hierarchical")):
        cfg = mloc_col(
            chunk_shape=(16, 16, 16),
            n_bins=16,
            curve=curve,
            target_block_bytes=block,
        )
        MLOCWriter(fs, f"/mr/{label}", cfg).write(data, variable="f")
        stores[label] = MLOCStore.open(fs, f"/mr/{label}", "f", n_ranks=8)
    return fs, data, stores


@pytest.mark.parametrize("mode,level", [("plod", 2), ("subset", 2)])
def test_multires_access(benchmark, multires_stores, mode, level):
    fs, data, stores = multires_stores

    def run():
        fs.clear_cache()
        if mode == "plod":
            return stores["plod"].query(Query(output="values", plod_level=level))
        return stores["subset"].query(Query(output="values", resolution_level=level))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    attach_sim_info(benchmark, result.times, mode=mode, level=level)


def test_ext_multires_report(benchmark, multires_stores, capsys):
    fs, data, stores = multires_stores
    flat = data.reshape(-1)
    true_mean = flat.mean()

    def _row(values, truth, bytes_read):
        mean_err = abs(values.mean() - true_mean) / abs(true_mean)
        return [int(bytes_read), round(mean_err, 8)]

    def compute():
        rows = {}
        # PLoD: all points, k+1 bytes each.
        for level in (1, 2):
            fs.clear_cache()
            r = stores["plod"].query(Query(output="values", plod_level=level))
            hist = histogram_migration_error(flat[r.positions], r.values, 100)
            rows[f"PLoD level {level} ({level + 1}B/pt)"] = _row(
                r.values, flat, r.stats["bytes_read"]
            ) + [round(hist * 100, 4)]
        # Subset: full precision, fraction of points.
        for level in (1, 2):
            fs.clear_cache()
            r = stores["subset"].query(Query(output="values", resolution_level=level))
            # Subset values are exact; the *analysis* error comes from
            # the points it never sees: compare subset stats to truth.
            rows[f"subset level {level} ({r.n_results} pts)"] = _row(
                r.values, flat, r.stats["bytes_read"]
            ) + [float("nan")]
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Extension - PLoD vs subset multiresolution (whole-domain "
                "reads, S3D 128^3)",
                ["mode", "bytes-read", "mean-rel-err", "hist-err-%"],
                rows,
            )
        )
    record_result("ext_multires", {"rows": rows})

    # The paper's detail-preservation claim: at comparable (or lower)
    # I/O, PLoD's mean estimate beats the spatial subset's by orders of
    # magnitude, because it sees every point.
    plod2 = rows["PLoD level 2 (3B/pt)"]
    subset_rows = [v for k, v in rows.items() if k.startswith("subset")]
    comparable = [r for r in subset_rows if r[0] <= plod2[0] * 2]
    assert comparable, "no subset configuration within the byte budget"
    assert all(plod2[1] < r[1] for r in comparable)
