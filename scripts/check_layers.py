#!/usr/bin/env python
"""Layer-boundary lint for the staged query engine.

Three architectural rules, checked by AST import scan (no imports are
executed):

1. **PFS below core.**  ``repro.pfs`` is the storage substrate; no
   module under ``src/repro/pfs/`` may import from ``repro.core`` (or
   any higher package).  The engine calls down into the PFS, never the
   reverse.
2. **Engine stages import strictly downward.**  Within
   ``repro.core.engine`` the layers are ``scheduler`` (0) →
   ``stages`` (1) → ``session`` (2); each module may import only
   strictly lower engine layers.  ``engine/__init__.py`` is exempt (it
   is the package's re-export surface, not a layer).
3. **Serving above core.**  ``repro.server`` (the broker layer) sits
   on top of the whole library: it may import downward freely, but no
   module under ``src/repro/`` outside ``repro/server/`` may import
   ``repro.server`` — the store/engine must stay usable (and testable)
   without the serving layer.  ``repro/cli.py`` is exempt: the CLI is
   the composition root (the application shell above every layer,
   including serving).
4. **Manifests below the store.**  ``repro.core.manifest`` is the
   append protocol's foundation record — writer, store, dataset, and
   serving all depend on it, so it may import only the PFS substrate
   and stdlib.  Any import of the store/engine/planner stack (or
   higher) from ``core/manifest.py`` is a cycle waiting to happen.

Exits non-zero listing every violation.  Wired into ``make verify``
and CI; run directly with ``python scripts/check_layers.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Packages a PFS module may never import from.
PFS_FORBIDDEN_PREFIXES = (
    "repro.core",
    "repro.plod",
    "repro.binning",
    "repro.index",
    "repro.parallel",
    "repro.harness",
)

#: Packages ``repro.core.manifest`` may never import from (everything
#: at or above the store layer; the PFS substrate and stdlib are fine).
MANIFEST_FORBIDDEN_PREFIXES = (
    "repro.core.store",
    "repro.core.dataset",
    "repro.core.writer",
    "repro.core.executor",
    "repro.core.planner",
    "repro.core.engine",
    "repro.core.sharded",
    "repro.core.staging",
    "repro.server",
    "repro.index",
    "repro.plod",
    "repro.harness",
)

#: Engine layer heights; a module may import only strictly lower ones.
ENGINE_LAYERS = {
    "repro.core.engine.scheduler": 0,
    "repro.core.engine.stages": 1,
    "repro.core.engine.session": 2,
}


def _imported_modules(path: Path) -> list[tuple[int, str]]:
    """(lineno, dotted module) for every import statement in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.extend((node.lineno, alias.name) for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            out.append((node.lineno, node.module))
    return out


def _module_name(path: Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def check() -> list[str]:
    violations: list[str] = []

    for path in sorted((SRC / "repro" / "pfs").glob("*.py")):
        for lineno, module in _imported_modules(path):
            if module.startswith(PFS_FORBIDDEN_PREFIXES):
                violations.append(
                    f"{path.relative_to(REPO)}:{lineno}: repro.pfs must not "
                    f"import {module} (PFS sits below the core layer)"
                )

    for path in sorted((SRC / "repro" / "core" / "engine").glob("*.py")):
        name = _module_name(path)
        if name not in ENGINE_LAYERS:
            continue  # __init__.py re-export surface is exempt
        height = ENGINE_LAYERS[name]
        for lineno, module in _imported_modules(path):
            if module == name:
                continue
            other = ENGINE_LAYERS.get(module)
            if other is not None and other >= height:
                violations.append(
                    f"{path.relative_to(REPO)}:{lineno}: engine layer "
                    f"{name} (height {height}) may not import {module} "
                    f"(height {other}); stages import strictly downward"
                )

    manifest_py = SRC / "repro" / "core" / "manifest.py"
    for lineno, module in _imported_modules(manifest_py):
        if module.startswith(MANIFEST_FORBIDDEN_PREFIXES):
            violations.append(
                f"{manifest_py.relative_to(REPO)}:{lineno}: "
                f"repro.core.manifest must not import {module} (manifests "
                f"sit below the store layer; only the PFS substrate and "
                f"stdlib are allowed)"
            )

    server_dir = SRC / "repro" / "server"
    for path in sorted((SRC / "repro").rglob("*.py")):
        if server_dir in path.parents:
            continue
        if path == SRC / "repro" / "cli.py":
            continue  # composition root: sits above every layer
        for lineno, module in _imported_modules(path):
            if module == "repro.server" or module.startswith("repro.server."):
                violations.append(
                    f"{path.relative_to(REPO)}:{lineno}: {_module_name(path)} "
                    f"must not import {module} (repro.server sits above "
                    f"repro.core; imports go downward only)"
                )

    return violations


def main() -> int:
    violations = check()
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} layer violation(s)")
        return 1
    print("layer boundaries OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
