#!/usr/bin/env python
"""Regenerate tests/data/engine_golden.json from the current executor.

The golden file pins the *observable contract* of the read path:
results (checksummed), simulated component seconds, and the raw I/O
accounting (seeks / bytes / opens) of a fixed query list over the four
conftest store layouts, plus the cache hit/miss pattern of a warm
second pass (which pins LRU insertion order).  The staged engine of
``repro.core.engine`` must reproduce every number bit-for-bit with
``coalesce_gap=0``; ``tests/test_engine_equivalence.py`` enforces it.

Run from the repo root after an *intentional* contract change:

    PYTHONPATH=src python scripts/gen_engine_golden.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_isa, mloc_iso
from repro.datasets import gts_like
from repro.pfs import SimulatedPFS

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "engine_golden.json"

#: Mirrors tests/conftest.py store fixtures exactly.
STORE_KINDS = ("col", "vsm", "iso", "isa")
CACHE_BYTES = 256 * 1024


def build_store(kind: str):
    data = gts_like((256, 256), seed=7)
    fs = SimulatedPFS()
    maker = {"col": mloc_col, "vsm": mloc_col, "iso": mloc_iso, "isa": mloc_isa}[kind]
    overrides = {"level_order": "VSM"} if kind == "vsm" else {}
    config = maker(
        chunk_shape=(32, 32), n_bins=16, target_block_bytes=8 * 1024, **overrides
    )
    MLOCWriter(fs, "/store", config).write(data, variable="field")
    return fs, MLOCStore.open(fs, "/store", "field", n_ranks=4)


def queries_for(store) -> list[Query]:
    edges = store.meta.edges
    shape = store.shape
    box = tuple((d // 4, 3 * d // 4) for d in shape)
    queries = [
        Query(value_range=(float(edges[2]), float(edges[9])), output="positions"),
        Query(value_range=(float(edges[5]), float(edges[12])), output="values"),
        Query(region=box, output="positions"),
        Query(region=box, output="values"),
    ]
    if store.meta.config.plod_enabled:
        queries.append(Query(region=box, output="values", plod_level=3))
        queries.append(
            Query(
                value_range=(float(edges[1]), float(edges[7])),
                output="values",
                plod_level=5,
            )
        )
    return queries


def sha(arr) -> str | None:
    if arr is None:
        return None
    return hashlib.sha256(arr.tobytes()).hexdigest()


def capture(kind: str) -> dict:
    fs, store = build_store(kind)
    cold = []
    for query in queries_for(store):
        fs.clear_cache()
        r = store.query(query)
        cold.append(
            {
                "positions_sha": sha(r.positions),
                "values_sha": sha(r.values),
                "io": r.times.io,
                "decompression": r.times.decompression,
                "communication": r.times.communication,
                "seeks": r.stats["seeks"],
                "bytes_read": r.stats["bytes_read"],
                "files_opened": r.stats["files_opened"],
                "blocks_planned": r.stats["blocks_planned"],
                "blocks_decoded": r.stats["blocks_decoded"],
                "n_results": r.stats["n_results"],
            }
        )
    # Warm pass against a small LRU: pins cache insertion/eviction order
    # (and therefore every later query's hit pattern) across refactors.
    fs2, base = build_store(kind)
    cached = MLOCStore(fs2, base.root, base.meta, n_ranks=4, cache_bytes=CACHE_BYTES)
    warm = []
    for round_idx in range(2):
        for query in queries_for(base):
            fs2.clear_cache()
            r = cached.query(query)
            warm.append(
                {
                    "round": round_idx,
                    "positions_sha": sha(r.positions),
                    "cache_hits": r.stats["cache_hits"],
                    "cache_misses": r.stats["cache_misses"],
                    "cache_hit_raw_bytes": r.stats["cache_hit_raw_bytes"],
                    "bytes_read": r.stats["bytes_read"],
                    "seeks": r.stats["seeks"],
                    "io": r.times.io,
                }
            )
    return {"cold": cold, "warm": warm}


def main() -> None:
    golden = {
        "cache_bytes": CACHE_BYTES,
        "stores": {kind: capture(kind) for kind in STORE_KINDS},
    }
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
