#!/usr/bin/env sh
# Coverage gate over the read path: tier-1 tests under pytest-cov with
# a hard floor on the core executor and PFS packages.
# Usage: scripts/coverage.sh  (or: make coverage)
#
# Soft-skips (exit 0) when pytest-cov is not installed, mirroring the
# ruff gating in scripts/verify.sh, so the gate never blocks a box
# without the optional tooling; CI installs pytest-cov and enforces it.
set -eu

cd "$(dirname "$0")/.."

if ! python -c "import pytest_cov" >/dev/null 2>&1; then
    echo "== pytest-cov not installed; skipping coverage gate =="
    echo "   (pip install pytest-cov to enable)"
    exit 0
fi

echo "== coverage gate: repro.core + repro.pfs >= ${COVERAGE_FLOOR:=85}% =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -q \
    --cov=repro.core --cov=repro.pfs \
    --cov-report=term-missing:skip-covered \
    --cov-fail-under="$COVERAGE_FLOOR"
