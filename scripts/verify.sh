#!/usr/bin/env sh
# One-command verification gate: lint (if ruff is available) + tier-1
# tests.  Usage: scripts/verify.sh  (or: make verify)
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

echo "== layer boundaries =="
python scripts/check_layers.py

echo "== tier-1 tests =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q
