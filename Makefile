# Developer entry points.  `make verify` is the one-command gate every
# change must pass (lint when ruff is installed + tier-1 tests).

.PHONY: verify test lint bench chaos coverage

verify:
	sh scripts/verify.sh

test:
	PYTHONPATH=src python -m pytest -x -q

lint:
	ruff check src tests benchmarks

bench:
	PYTHONPATH=src python -m pytest benchmarks -q

chaos:
	PYTHONPATH=src python -m pytest -q -m chaos

coverage:
	sh scripts/coverage.sh
