"""Precision-based Level of Detail: byte-plane decomposition of float64.

Section III-B3 and Figure 3 of the paper: every double-precision value
is split into seven parts — the first part holds the two most
significant bytes (sign, full exponent, and the top four mantissa
bits; one byte alone could not carry the full exponent), and each of
the remaining six parts holds one further mantissa byte.  Bytes at the
same position across all points are stored contiguously, so an access
at *PLoD level k* fetches only the first ``k + 1`` bytes of every
point (level 7 = all 8 bytes = full precision).

On reassembly the missing bytes are **not** zero-filled — that would
bias every value low.  Following Section III-D3, the first missing
byte is filled with ``0x7F`` and the rest with ``0xFF``, which places
the reconstructed value almost exactly at the midpoint of the interval
of doubles sharing the known prefix, halving the worst-case error and
centering the average error near zero.

All operations are vectorized; the byte view uses the big-endian
representation so plane 0 is the most significant byte.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "N_GROUPS",
    "FULL_PLOD_LEVEL",
    "GROUP_WIDTHS",
    "GROUP_OFFSETS",
    "bytes_for_level",
    "groups_for_level",
    "refinement_groups",
    "split_byte_groups",
    "assemble_from_groups",
    "assemble_from_groups_degraded",
    "plod_degrade",
]

#: Number of byte groups a double is divided into (Fig. 3).
N_GROUPS = 7
#: PLoD level meaning "all bytes present" (full precision).
FULL_PLOD_LEVEL = 7
#: Width in bytes of each group: group 0 is two bytes, the rest one.
GROUP_WIDTHS = (2, 1, 1, 1, 1, 1, 1)
#: Starting byte (big-endian position) of each group.
GROUP_OFFSETS = (0, 2, 3, 4, 5, 6, 7)

_FILL_FIRST = 0x7F
_FILL_REST = 0xFF


def _check_level(level: int) -> None:
    if not (1 <= level <= FULL_PLOD_LEVEL):
        raise ValueError(f"PLoD level must be in [1, {FULL_PLOD_LEVEL}], got {level}")


def bytes_for_level(level: int) -> int:
    """Bytes fetched per point at PLoD ``level`` (level k -> k+1 bytes)."""
    _check_level(level)
    return level + 1


def groups_for_level(level: int) -> int:
    """Number of leading byte groups a PLoD-``level`` access reads."""
    _check_level(level)
    return level


def refinement_groups(from_level: int, to_level: int) -> range:
    """Byte-group indices a refinement from one PLoD level to another adds.

    A session already holding levels ``[1, from_level]`` that refines to
    ``to_level`` needs exactly the groups ``from_level .. to_level - 1``
    — the increment the progressive read path fetches.
    """
    _check_level(from_level)
    _check_level(to_level)
    if to_level <= from_level:
        raise ValueError(
            f"to_level must exceed from_level, got {from_level} -> {to_level}"
        )
    return range(groups_for_level(from_level), groups_for_level(to_level))


def split_byte_groups(values: np.ndarray) -> list[np.ndarray]:
    """Split float64 values into their seven big-endian byte groups.

    Returns a list of ``N_GROUPS`` contiguous ``uint8`` arrays; group 0
    has ``2 * n`` bytes (the two leading bytes of every value,
    interleaved per point), groups 1..6 have ``n`` bytes each.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    be = np.ascontiguousarray(values, dtype=">f8").view(np.uint8).reshape(-1, 8)
    groups: list[np.ndarray] = []
    for g in range(N_GROUPS):
        start = GROUP_OFFSETS[g]
        width = GROUP_WIDTHS[g]
        groups.append(np.ascontiguousarray(be[:, start : start + width]).reshape(-1))
    return groups


def assemble_from_groups(
    groups: list[np.ndarray], n_points: int, level: int
) -> np.ndarray:
    """Reassemble float64 values from the first ``level`` byte groups.

    Parameters
    ----------
    groups:
        At least ``level`` byte-group arrays as produced by
        :func:`split_byte_groups` (trailing groups may be omitted).
    n_points:
        Number of values to reconstruct.
    level:
        The PLoD level actually fetched.  At level 7 reconstruction is
        exact; below it the dummy-fill midpoint rule applies.
    """
    _check_level(level)
    if len(groups) < level:
        raise ValueError(f"need {level} byte groups for PLoD level {level}, got {len(groups)}")
    be = np.empty((n_points, 8), dtype=np.uint8)
    for g in range(level):
        start = GROUP_OFFSETS[g]
        width = GROUP_WIDTHS[g]
        plane = np.asarray(groups[g], dtype=np.uint8)
        if plane.size != n_points * width:
            raise ValueError(
                f"group {g}: expected {n_points * width} bytes, got {plane.size}"
            )
        be[:, start : start + width] = plane.reshape(n_points, width)
    known = GROUP_OFFSETS[level - 1] + GROUP_WIDTHS[level - 1] if level < FULL_PLOD_LEVEL else 8
    if known < 8:
        be[:, known] = _FILL_FIRST
        if known + 1 < 8:
            be[:, known + 1 :] = _FILL_REST
    return be.reshape(-1).view(">f8").astype(np.float64)


def assemble_from_groups_degraded(
    groups: list[np.ndarray],
    n_points: int,
    level: int,
    point_levels: np.ndarray,
) -> np.ndarray:
    """Reassemble with a *per-point* effective PLoD level.

    The fault-tolerant read path uses this when some refinement
    byte-plane blocks are quarantined: points whose refinement bytes
    were lost fall back to the dummy-fill reconstruction at the deepest
    level still intact for them, while unaffected points keep the full
    requested precision.

    Parameters
    ----------
    groups:
        ``level`` byte-group arrays; bytes belonging to a point at a
        group beyond its effective level may be garbage (they are
        overwritten by the fill rule).
    point_levels:
        ``(n_points,)`` integer array of effective levels, each in
        ``[1, level]``.
    """
    _check_level(level)
    if len(groups) < level:
        raise ValueError(f"need {level} byte groups for PLoD level {level}, got {len(groups)}")
    point_levels = np.asarray(point_levels, dtype=np.int64).reshape(-1)
    if point_levels.size != n_points:
        raise ValueError(
            f"point_levels has {point_levels.size} entries, expected {n_points}"
        )
    if n_points and (point_levels.min() < 1 or point_levels.max() > level):
        raise ValueError(
            f"point_levels must lie in [1, {level}], got "
            f"[{point_levels.min()}, {point_levels.max()}]"
        )
    be = np.empty((n_points, 8), dtype=np.uint8)
    for g in range(level):
        start = GROUP_OFFSETS[g]
        width = GROUP_WIDTHS[g]
        plane = np.asarray(groups[g], dtype=np.uint8)
        if plane.size != n_points * width:
            raise ValueError(
                f"group {g}: expected {n_points * width} bytes, got {plane.size}"
            )
        be[:, start : start + width] = plane.reshape(n_points, width)
    # Known bytes per point: level k < 7 knows k+1 leading bytes; level
    # 7 knows all 8 (same rule as assemble_from_groups, vectorized).
    known = np.where(point_levels >= FULL_PLOD_LEVEL, 8, point_levels + 1)
    cols = np.arange(8, dtype=np.int64)
    be[cols[None, :] == known[:, None]] = _FILL_FIRST
    be[cols[None, :] > known[:, None]] = _FILL_REST
    return be.reshape(-1).view(">f8").astype(np.float64)


def plod_degrade(values: np.ndarray, level: int) -> np.ndarray:
    """Round-trip values through a PLoD level (split, truncate, fill).

    Convenience used by the accuracy experiments (Table VI): returns
    the values an analysis routine would see at the given level.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    groups = split_byte_groups(values)
    return assemble_from_groups(groups[:level], values.size, level)
