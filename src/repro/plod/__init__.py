"""Precision-based Level of Detail (PLoD) byte-plane machinery
(Section III-B3, Fig. 3) and its error metrics."""

from repro.plod.accuracy import (
    PLoDErrorReport,
    io_reduction,
    plod_error_report,
    relative_errors,
)
from repro.plod.byteplanes import (
    FULL_PLOD_LEVEL,
    GROUP_OFFSETS,
    GROUP_WIDTHS,
    N_GROUPS,
    assemble_from_groups,
    assemble_from_groups_degraded,
    bytes_for_level,
    groups_for_level,
    plod_degrade,
    split_byte_groups,
)

__all__ = [
    "FULL_PLOD_LEVEL",
    "GROUP_OFFSETS",
    "GROUP_WIDTHS",
    "N_GROUPS",
    "PLoDErrorReport",
    "assemble_from_groups",
    "assemble_from_groups_degraded",
    "bytes_for_level",
    "groups_for_level",
    "io_reduction",
    "plod_degrade",
    "plod_error_report",
    "relative_errors",
    "split_byte_groups",
]
