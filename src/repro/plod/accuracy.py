"""Error metrics for PLoD-degraded data (Table VI support).

The paper reports, per PLoD level, the maximum per-point relative error
("0.008% for the S3D dataset at level 2") and downstream analysis
errors (histogram bin migration, K-means misclassification).  The
point-wise metrics live here; the analysis-level metrics live in
:mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.plod.byteplanes import FULL_PLOD_LEVEL, bytes_for_level, plod_degrade

__all__ = ["relative_errors", "PLoDErrorReport", "plod_error_report", "io_reduction"]


def relative_errors(original: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """Per-point ``|approx - original| / |original|`` with a zero guard.

    Points where the original is exactly zero use absolute error
    instead (relative error is undefined there); the synthetic science
    fields in this reproduction are bounded away from zero.
    """
    original = np.asarray(original, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    if original.shape != approx.shape:
        raise ValueError(
            f"shape mismatch: original {original.shape} vs approx {approx.shape}"
        )
    err = np.abs(approx - original)
    denom = np.abs(original)
    nonzero = denom > 0
    out = np.empty_like(err)
    out[nonzero] = err[nonzero] / denom[nonzero]
    out[~nonzero] = err[~nonzero]
    return out


@dataclass(frozen=True)
class PLoDErrorReport:
    """Point-wise error summary of one PLoD level."""

    level: int
    bytes_per_point: int
    max_relative_error: float
    mean_relative_error: float
    io_reduction: float


def io_reduction(level: int) -> float:
    """Fraction of I/O saved at a PLoD level (level 2 -> 62.5%)."""
    return 1.0 - bytes_for_level(level) / 8.0


def plod_error_report(values: np.ndarray, level: int) -> PLoDErrorReport:
    """Degrade ``values`` to ``level`` and summarize the induced error."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if level == FULL_PLOD_LEVEL:
        return PLoDErrorReport(level, 8, 0.0, 0.0, 0.0)
    approx = plod_degrade(values, level)
    rel = relative_errors(values, approx)
    return PLoDErrorReport(
        level=level,
        bytes_per_point=bytes_for_level(level),
        max_relative_error=float(rel.max()) if rel.size else 0.0,
        mean_relative_error=float(rel.mean()) if rel.size else 0.0,
        io_reduction=io_reduction(level),
    )
