"""Per-chunk PLoD error bounds: the ``peb`` record behind ``query(tol=...)``.

The paper's Table VI reports one max-relative-error figure per PLoD
level for a whole dataset; error-bounded retrieval needs the same
information *per chunk*, so the planner can pick the minimal level for
each chunk independently (mixed-level plans).  This module holds that
table:

* :class:`ErrorBoundsTable` — ``(7, n_chunks)`` max and mean relative
  errors of reconstructing each chunk at PLoD levels 1..7 (level 7 is
  exact, so its row is identically zero), indexed by curve position.
  Bounds are monotone non-increasing in level — adding a byte group
  never increases the reconstruction error — which is what lets
  :meth:`ErrorBoundsTable.min_level_for` resolve a tolerance to a
  per-chunk level with one vectorized comparison.
* :class:`PEBBuilder` — streaming write-time builder fed by the
  writer's ordered commit loop, exactly like
  :class:`repro.index.hbi.HBIBuilder`: chunk bounds are pure functions
  of the chunk-stage output, consumed in serial ``cpos`` order, so the
  persisted record is bit-identical across write backends and worker
  counts (DESIGN.md §6).
* :func:`build_from_store` — lazy rebuild for stores written before
  the record existed.  Level-7 byte-plane reassembly is exact, so the
  rebuilt values equal the written ones and the recomputed bounds are
  byte-identical to the write-time record.

A per-chunk **max** relative bound covers every subset of the chunk's
points, so it remains valid for value- and region-restricted queries
that touch only part of a chunk.  The **mean** bound is a chunk-level
statistic only — a selective query's observed mean error may exceed it
(see docs/tuning.md); the accuracy contract the property suite pins is
the max metric.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compression.base import make_codec
from repro.plod.accuracy import relative_errors
from repro.plod.byteplanes import (
    FULL_PLOD_LEVEL,
    GROUP_WIDTHS,
    N_GROUPS,
    assemble_from_groups,
    split_byte_groups,
)

__all__ = [
    "ErrorBoundsTable",
    "PEBBuilder",
    "TOL_METRICS",
    "build_from_store",
    "compute_chunk_bounds",
    "peb_path",
]

_MAGIC = b"MLOCPEB\x00"
FORMAT_VERSION = 1

#: Accepted values of ``Query.tol_metric``.
TOL_METRICS = ("max_rel", "mean_rel")


def peb_path(root: str) -> str:
    """On-disk path of a variable's per-chunk error-bounds file."""
    return f"{root.rstrip('/')}/peb"


def compute_chunk_bounds(
    values: np.ndarray, groups: list[np.ndarray] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Max and mean relative reconstruction error of one chunk per level.

    Returns two ``(N_GROUPS,)`` float64 arrays (levels 1..7; the level-7
    entries are exactly 0.0).  ``values`` is the chunk's element vector
    in any fixed order — both reductions are permutation-sensitive only
    through floating-point summation, so the writer and the rebuild
    path must (and do) pass the same bin-segmented order.  ``groups``
    may supply the already-split byte planes of ``values``.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    max_rel = np.zeros(N_GROUPS, dtype=np.float64)
    mean_rel = np.zeros(N_GROUPS, dtype=np.float64)
    if not values.size:
        return max_rel, mean_rel
    if groups is None:
        groups = split_byte_groups(values)
    for level in range(1, FULL_PLOD_LEVEL):
        approx = assemble_from_groups(groups[:level], values.size, level)
        rel = relative_errors(values, approx)
        max_rel[level - 1] = float(rel.max())
        mean_rel[level - 1] = float(rel.mean())
    return max_rel, mean_rel


class ErrorBoundsTable:
    """Per-(chunk, PLoD-level) reconstruction error bounds."""

    def __init__(self, max_rel: np.ndarray, mean_rel: np.ndarray) -> None:
        self.max_rel = np.asarray(max_rel, dtype=np.float64)
        self.mean_rel = np.asarray(mean_rel, dtype=np.float64)
        if self.max_rel.ndim != 2 or self.max_rel.shape[0] != N_GROUPS:
            raise ValueError(
                f"bounds must be ({N_GROUPS}, n_chunks), got {self.max_rel.shape}"
            )
        if self.mean_rel.shape != self.max_rel.shape:
            raise ValueError(
                f"max/mean shape mismatch: {self.max_rel.shape} vs "
                f"{self.mean_rel.shape}"
            )

    @property
    def n_chunks(self) -> int:
        return self.max_rel.shape[1]

    def _metric(self, metric: str) -> np.ndarray:
        if metric not in TOL_METRICS:
            raise ValueError(f"tol_metric must be one of {TOL_METRICS}, got {metric!r}")
        return self.max_rel if metric == "max_rel" else self.mean_rel

    def min_level_for(self, tol: float, metric: str = "max_rel") -> np.ndarray:
        """Minimal PLoD level per chunk whose bound is ``<= tol``.

        Monotonicity makes this one comparison: the first level at or
        under ``tol`` sits right after the last level above it.  The
        level-7 row is zero, so every chunk resolves to a level in
        ``[1, 7]`` for any ``tol >= 0``.
        """
        if tol < 0:
            raise ValueError(f"tol must be non-negative, got {tol}")
        bounds = self._metric(metric)
        levels = (bounds > tol).sum(axis=0) + 1
        return np.clip(levels, 1, FULL_PLOD_LEVEL).astype(np.int64)

    def bound_at(
        self,
        levels: np.ndarray,
        metric: str = "max_rel",
        cpos: np.ndarray | None = None,
    ) -> np.ndarray:
        """Recorded bound of each chunk at the given per-chunk levels.

        Without ``cpos``, ``levels`` must cover chunks ``0..n-1`` in
        curve order; with ``cpos``, ``levels[i]`` is looked up for the
        chunk at curve position ``cpos[i]`` (the shape a query plan's
        chunk subset arrives in).
        """
        bounds = self._metric(metric)
        levels = np.asarray(levels, dtype=np.int64)
        if levels.size and (levels.min() < 1 or levels.max() > FULL_PLOD_LEVEL):
            raise ValueError(
                f"levels must lie in [1, {FULL_PLOD_LEVEL}], got "
                f"[{levels.min()}, {levels.max()}]"
            )
        cols = (
            np.arange(levels.size)
            if cpos is None
            else np.asarray(cpos, dtype=np.int64)
        )
        if cols.shape != levels.shape:
            raise ValueError(
                f"cpos shape {cols.shape} must match levels shape {levels.shape}"
            )
        return bounds[levels - 1, cols]

    def validate(self) -> None:
        """Internal consistency: the invariants fsck cross-checks."""
        for name, bounds in (("max_rel", self.max_rel), ("mean_rel", self.mean_rel)):
            if not np.all(np.isfinite(bounds)) or bounds.min(initial=0.0) < 0:
                raise ValueError(f"{name} bounds must be finite and non-negative")
            if np.any(np.diff(bounds, axis=0) > 0):
                raise ValueError(f"{name} bounds must not increase with level")
            if np.any(bounds[FULL_PLOD_LEVEL - 1] != 0.0):
                raise ValueError(f"level-{FULL_PLOD_LEVEL} {name} bounds must be zero")
        # A mean over per-point errors cannot exceed their max beyond
        # summation rounding; allow that rounding headroom.
        slack = np.maximum(self.max_rel, 1.0) * 1e-12
        if np.any(self.mean_rel > self.max_rel + slack):
            raise ValueError("mean_rel bounds must not exceed max_rel bounds")

    # ------------------------------------------------------------------
    # Serialization (FORMAT.md: per-chunk error-bounds record)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Versioned, CRC-terminated serialization."""
        body = b"".join(
            [
                _MAGIC,
                struct.pack("<Iqq", FORMAT_VERSION, N_GROUPS, self.n_chunks),
                self.max_rel.astype("<f8").tobytes(),
                self.mean_rel.astype("<f8").tobytes(),
            ]
        )
        return body + struct.pack("<I", zlib.crc32(body))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ErrorBoundsTable":
        """Parse a serialized table, verifying magic, version, and CRC."""
        if len(raw) < len(_MAGIC) + 4 or raw[: len(_MAGIC)] != _MAGIC:
            raise ValueError("not a per-chunk error-bounds record")
        body, (crc,) = raw[:-4], struct.unpack("<I", raw[-4:])
        if zlib.crc32(body) != crc:
            raise ValueError("error-bounds record failed its CRC check")
        off = len(_MAGIC)
        version, n_levels, n_chunks = struct.unpack_from("<Iqq", body, off)
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported error-bounds record version {version}")
        if n_levels != N_GROUPS:
            raise ValueError(
                f"error-bounds record has {n_levels} levels, expected {N_GROUPS}"
            )
        off += struct.calcsize("<Iqq")

        def take(count: int) -> np.ndarray:
            nonlocal off
            arr = np.frombuffer(body, dtype="<f8", count=count, offset=off)
            off += count * 8
            return arr.astype(np.float64)

        max_rel = take(n_levels * n_chunks).reshape(n_levels, n_chunks)
        mean_rel = take(n_levels * n_chunks).reshape(n_levels, n_chunks)
        return cls(max_rel, mean_rel)


class PEBBuilder:
    """Streaming write-time builder fed in ordered-commit ``cpos`` order."""

    def __init__(self, n_chunks: int) -> None:
        self.n_chunks = int(n_chunks)
        self.max_rel = np.zeros((N_GROUPS, self.n_chunks), dtype=np.float64)
        self.mean_rel = np.zeros((N_GROUPS, self.n_chunks), dtype=np.float64)
        self._next_cpos = 0

    def add_chunk(
        self, cpos: int, max_rel: np.ndarray, mean_rel: np.ndarray
    ) -> None:
        """Record one chunk's per-level bounds (:func:`compute_chunk_bounds`)."""
        if cpos != self._next_cpos:
            raise ValueError(f"chunks must arrive in order: expected {self._next_cpos}")
        self._next_cpos = cpos + 1
        self.max_rel[:, cpos] = max_rel
        self.mean_rel[:, cpos] = mean_rel

    def finish(self) -> ErrorBoundsTable:
        if self._next_cpos != self.n_chunks:
            raise ValueError(
                f"saw {self._next_cpos} of {self.n_chunks} chunks before finish"
            )
        return ErrorBoundsTable(self.max_rel, self.mean_rel)


def build_from_store(store) -> ErrorBoundsTable:
    """Rebuild the bounds table from a store's data subfiles.

    The lazy fallback for stores written before the record existed:
    reads each bin's data subfile once (outside any query's accounting,
    like the metadata read at open), reassembles every chunk's values
    exactly from all seven byte groups, and recomputes the bounds with
    the same :func:`compute_chunk_bounds` the writer ran — producing
    bytes identical to the write-time record.
    """
    meta = store.meta
    config = meta.config
    if not config.plod_enabled:
        raise ValueError(
            f"per-chunk error bounds require a PLoD byte-plane layout, not "
            f"{config.level_order!r}"
        )
    counts = meta.counts.astype(np.int64)
    n_bins, n_chunks = counts.shape
    n_groups = config.n_groups
    widths = np.array(GROUP_WIDTHS[:n_groups], dtype=np.int64)
    codec = make_codec(config.codec, **config.codec_params)
    session = store.fs.session()

    # Per-chunk byte-plane fragments, gathered bin-major so the
    # reassembled value order matches the writer's bin-segmented order.
    chunk_groups: list[list[list[np.ndarray]]] = [
        [[] for _ in range(n_groups)] for _ in range(n_chunks)
    ]
    for b in range(n_bins):
        blob = bytes(session.open(store.files.data_path(b)).read_all())
        parts = []
        for _cs, _ce, offset, comp_len, raw_len, _crc in meta.data_blocks[b]:
            decoded = codec.decode(blob[offset : offset + comp_len], int(raw_len))
            parts.append(np.frombuffer(decoded, dtype=np.uint8))
        stream = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)
        )
        # Cell byte sizes in file order (FORMAT.md cell-index table).
        if config.group_major:
            sizes = (widths[:, None] * counts[b][None, :]).reshape(-1)
        else:
            sizes = (counts[b][:, None] * widths[None, :]).reshape(-1)
        starts = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        for cpos in range(n_chunks):
            if not counts[b, cpos]:
                continue
            for g in range(n_groups):
                cell = (
                    g * n_chunks + cpos if config.group_major else cpos * n_groups + g
                )
                chunk_groups[cpos][g].append(stream[starts[cell] : starts[cell + 1]])

    builder = PEBBuilder(n_chunks)
    for cpos in range(n_chunks):
        n_points = int(counts[:, cpos].sum())
        planes = [
            np.concatenate(chunk_groups[cpos][g])
            if chunk_groups[cpos][g]
            else np.empty(0, dtype=np.uint8)
            for g in range(n_groups)
        ]
        values = assemble_from_groups(planes, n_points, FULL_PLOD_LEVEL)
        builder.add_chunk(cpos, *compute_chunk_bounds(values))
    return builder.finish()
