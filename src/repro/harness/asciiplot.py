"""ASCII rendering of the paper's figures from recorded results.

The evaluation figures (6, 7, 8) are stacked-bar charts of component
times.  matplotlib is not available in the reproduction environment,
so this module renders the same information as aligned text charts —
enough to eyeball the shapes (who is I/O-bound, where scaling
plateaus, how PLoD levels grow) directly in benchmark output or from
the ``results/*.json`` records via ``examples/render_figures.py``.
"""

from __future__ import annotations

__all__ = ["stacked_bars", "bar_chart"]

#: Glyph per component, in rendering order.
_GLYPHS = ("#", "=", "-", "~")


def bar_chart(
    title: str,
    rows: dict[str, float],
    *,
    width: int = 50,
    unit: str = "s",
) -> str:
    """One horizontal bar per row, scaled to the maximum value."""
    if not rows:
        raise ValueError("bar_chart needs at least one row")
    peak = max(rows.values())
    label_w = max(len(k) for k in rows)
    lines = [title]
    for label, value in rows.items():
        n = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(f"{label.rjust(label_w)} |{'#' * n:<{width}}| {value:.3g} {unit}")
    return "\n".join(lines)


def stacked_bars(
    title: str,
    rows: dict[str, list[float]],
    components: list[str],
    *,
    width: int = 60,
    unit: str = "s",
) -> str:
    """Stacked horizontal bars (one per row, one glyph per component).

    ``rows[label]`` holds one value per component; all bars share a
    scale so relative totals are visible.
    """
    if not rows:
        raise ValueError("stacked_bars needs at least one row")
    n_comp = len(components)
    if n_comp > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} components supported")
    for label, values in rows.items():
        if len(values) != n_comp:
            raise ValueError(
                f"row {label!r} has {len(values)} values for {n_comp} components"
            )
    peak = max(sum(v) for v in rows.values())
    label_w = max(len(k) for k in rows)
    legend = "  ".join(f"{g}={c}" for g, c in zip(_GLYPHS, components))
    lines = [title, f"[{legend}]"]
    for label, values in rows.items():
        total = sum(values)
        bar = ""
        for glyph, value in zip(_GLYPHS, values):
            n = int(round(width * value / peak)) if peak > 0 else 0
            bar += glyph * n
        lines.append(f"{label.rjust(label_w)} |{bar:<{width}}| {total:.3g} {unit}")
    return "\n".join(lines)
