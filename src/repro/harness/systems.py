"""System suite: every compared system built over one dataset.

Builds and caches, per :class:`~repro.harness.scales.DatasetSpec`, the
six systems of the paper's evaluation (Section IV-A2) on one shared
simulated PFS:

* ``mloc-col`` — V-M-S order, Zlib byte columns;
* ``mloc-iso`` — whole values, ISOBAR lossless;
* ``mloc-isa`` — whole values, ISABELA lossy;
* ``seqscan`` — row-major raw file;
* ``fastbit`` — precision-binned WAH bitmap index;
* ``scidb``  — overlap-replicated chunk store.

and provides uniform query dispatch with the paper's cold-cache
protocol (the file cache is cleared before every query).
"""

from __future__ import annotations

from repro.baselines import FastBitStore, SciDBStore, SeqScanStore
from repro.core import MLOCStore, MLOCWriter, Query, mloc_col, mloc_isa, mloc_iso
from repro.core.result import BatchResult, ComponentTimes, QueryResult
from repro.harness.scales import DatasetSpec
from repro.harness.workloads import WorkloadGenerator
from repro.pfs import PFSCostModel, SimulatedPFS

__all__ = ["SystemSuite", "get_suite", "MLOC_SYSTEMS", "ALL_SYSTEMS"]

MLOC_SYSTEMS = ("mloc-col", "mloc-iso", "mloc-isa")
ALL_SYSTEMS = MLOC_SYSTEMS + ("seqscan", "fastbit", "scidb")

#: SciDB chunk-boundary overlap width (cells per side), giving the
#: ~10% footprint overhead of Table I at the harness chunk shapes.
_SCIDB_OVERLAP = 2


class SystemSuite:
    """Lazily-built collection of systems over one dataset.

    ``write_backend``/``write_workers`` choose the MLOC writer's
    execution backend when the suite builds its stores; because writer
    backends are bit-identical, they change build wall-clock only,
    never a stored byte or a downstream measurement.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        n_ranks: int = 8,
        *,
        write_backend: str = "serial",
        write_workers: int | None = None,
    ) -> None:
        self.spec = spec
        self.n_ranks = n_ranks
        self.write_backend = write_backend
        self.write_workers = write_workers
        self.fs = SimulatedPFS(PFSCostModel(byte_scale=spec.byte_scale))
        self.data = spec.generate()
        self.flat = self.data.reshape(-1)
        self.workload = WorkloadGenerator.for_data(self.data, seed=spec.seed + 100)
        self._stores: dict[str, object] = {}

    @property
    def block_bytes(self) -> int:
        """Raw compression-block target: one paper-scale stripe.

        The paper aligns the smallest accessed unit with the PFS stripe
        (Section III-C); under dataset magnification one stripe of our
        data corresponds to ``stripe_size / byte_scale`` real bytes,
        floored to keep codec framing overhead negligible.
        """
        stripe = self.fs.cost_model.stripe_size
        return max(4096, int(round(stripe / self.spec.byte_scale)))

    # ------------------------------------------------------------------
    def store(self, system: str):
        """Build (once) and return the named system's store."""
        if system not in self._stores:
            self._stores[system] = self._build(system)
        return self._stores[system]

    def _build(self, system: str):
        spec = self.spec
        root = f"/{spec.name}/{system}"
        if system in MLOC_SYSTEMS:
            maker = {"mloc-col": mloc_col, "mloc-iso": mloc_iso, "mloc-isa": mloc_isa}[
                system
            ]
            config = maker(
                chunk_shape=spec.chunk_shape,
                n_bins=spec.n_bins,
                target_block_bytes=self.block_bytes,
            )
            MLOCWriter(
                self.fs,
                root,
                config,
                write_backend=self.write_backend,
                write_workers=self.write_workers,
            ).write(self.data, variable="field")
            return MLOCStore.open(self.fs, root, "field", n_ranks=self.n_ranks)
        if system == "seqscan":
            return SeqScanStore.build(self.fs, f"{root}/data", self.data, n_ranks=self.n_ranks)
        if system == "fastbit":
            return FastBitStore.build(
                self.fs, root, self.data, n_bins=spec.fastbit_bins, n_ranks=self.n_ranks
            )
        if system == "scidb":
            return SciDBStore.build(
                self.fs,
                f"{root}/data",
                self.data,
                chunk_shape=spec.chunk_shape,
                overlap=_SCIDB_OVERLAP,
                n_ranks=self.n_ranks,
            )
        raise ValueError(f"unknown system {system!r}; expected one of {ALL_SYSTEMS}")

    # ------------------------------------------------------------------
    # Uniform query dispatch (cold cache, as in the paper's protocol)
    # ------------------------------------------------------------------
    def region_query(self, system: str, value_range) -> QueryResult:
        """Value-constrained region-only access."""
        store = self.store(system)
        self.fs.clear_cache()
        if system in MLOC_SYSTEMS:
            return store.query(Query(value_range=tuple(value_range), output="positions"))
        return store.region_query(tuple(value_range))

    def value_query(self, system: str, region, plod_level: int = 7) -> QueryResult:
        """Spatially-constrained value retrieval."""
        store = self.store(system)
        self.fs.clear_cache()
        if system in MLOC_SYSTEMS:
            return store.query(
                Query(region=tuple(region), output="values", plod_level=plod_level)
            )
        return store.value_query(tuple(region))

    def value_query_batch(
        self, system: str, regions, plod_level: int = 7
    ) -> BatchResult:
        """A batch of spatial value retrievals run as one pipeline.

        MLOC systems go through :meth:`MLOCStore.query_many` (one cache
        clear at batch start, shared block fetcher — a block covered by
        several queries of the batch is decoded once).  Baselines have
        no batch path; their queries run back to back on a warm file
        cache, the closest equivalent service discipline.
        """
        store = self.store(system)
        self.fs.clear_cache()
        if system in MLOC_SYSTEMS:
            return store.query_many(
                [
                    Query(region=tuple(r), output="values", plod_level=plod_level)
                    for r in regions
                ]
            )
        results = [store.value_query(tuple(r)) for r in regions]
        times = ComponentTimes()
        for r in results:
            times = times + r.times
        return BatchResult(
            results=results,
            times=times,
            stats={"n_queries": len(results)},
        )

    def storage_bytes(self, system: str) -> dict[str, int]:
        """``{"data": ..., "index": ...}`` accounting for Table I."""
        store = self.store(system)
        if system in MLOC_SYSTEMS:
            report = store.storage_report()
            return {
                "data": report.data_bytes,
                "index": report.index_bytes + report.meta_bytes,
            }
        return store.storage_bytes()

    # ------------------------------------------------------------------
    def average_region_times(
        self, system: str, constraints
    ) -> tuple[ComponentTimes, float]:
        """Mean component times (and result count) over a workload."""
        return _average(self.region_query, system, constraints)

    def average_value_times(
        self, system: str, constraints, plod_level: int = 7
    ) -> tuple[ComponentTimes, float]:
        return _average(
            lambda s, c: self.value_query(s, c, plod_level=plod_level),
            system,
            constraints,
        )


def _average(fn, system, constraints) -> tuple[ComponentTimes, float]:
    total = ComponentTimes()
    n_results = 0.0
    for c in constraints:
        result = fn(system, c)
        total = total + result.times
        n_results += result.n_results
    k = max(len(constraints), 1)
    return (
        ComponentTimes(
            io=total.io / k,
            decompression=total.decompression / k,
            reconstruction=total.reconstruction / k,
            communication=total.communication / k,
        ),
        n_results / k,
    )


_SUITES: dict[tuple[str, int, int], SystemSuite] = {}


def get_suite(
    spec: DatasetSpec,
    n_ranks: int = 8,
    *,
    write_backend: str = "serial",
    write_workers: int | None = None,
) -> SystemSuite:
    """Process-wide cache of built suites (shared across benchmarks).

    The write options are not part of the cache key: writer backends
    are bit-identical, so a suite built serially is byte-for-byte the
    suite a threaded build would have produced.
    """
    key = (spec.name, spec.n_elements, n_ranks)
    if key not in _SUITES:
        _SUITES[key] = SystemSuite(
            spec,
            n_ranks=n_ranks,
            write_backend=write_backend,
            write_workers=write_workers,
        )
    return _SUITES[key]
