"""Paper reference values and result recording.

Every benchmark prints its measured rows next to the paper's published
numbers so the *shape* comparison (who wins, by what factor) is visible
in the benchmark output, and appends a JSON record under ``results/``
from which EXPERIMENTS.md is assembled.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["PAPER", "record_result", "format_rows", "results_dir"]

#: Published numbers, keyed by experiment id.  Values are the paper's
#: tables verbatim (seconds, or GB for Table I).
PAPER: dict[str, dict] = {
    "table1_storage_gb": {
        # (data, index, total) for 8 GB raw data
        "mloc-col": (6.5, 1.6, 8.1),
        "mloc-iso": (6.9, 1.6, 8.5),
        "mloc-isa": (1.6, 1.6, 3.2),
        "seqscan": (8.0, 0.0, 8.0),
        "fastbit": (8.0, 10.0, 18.0),
        "scidb": (8.8, 0.0, 8.8),
    },
    "table2_region_8g": {
        # response seconds at (1% GTS, 10% GTS, 1% S3D, 10% S3D)
        "mloc-col": (0.53, 1.21, 0.59, 1.62),
        "mloc-iso": (0.41, 1.10, 0.53, 1.57),
        "mloc-isa": (0.34, 1.23, 0.56, 1.66),
        "seqscan": (19.22, 20.27, 22.71, 22.93),
        "fastbit": (36.81, 37.48, 37.27, 37.83),
        "scidb": (206.80, 677.10, 210.00, 597.80),
    },
    "table3_value_8g": {
        # response seconds at (0.1% GTS, 1% GTS, 0.1% S3D, 1% S3D)
        "mloc-col": (3.07, 5.06, 3.51, 5.26),
        "mloc-iso": (2.15, 4.99, 2.96, 4.51),
        "mloc-isa": (1.52, 3.31, 1.63, 3.42),
        "seqscan": (4.38, 5.92, 1.81, 4.75),
        "fastbit": (37.29, 38.24, 37.49, 39.70),
        "scidb": (29.10, 122.50, 143.20, 469.10),
    },
    "table4_region_512g": {
        "mloc-col": (16.51, 41.18, 18.94, 39.25),
        "mloc-iso": (15.81, 42.06, 19.43, 41.55),
        "mloc-isa": (16.42, 42.19, 20.23, 43.71),
        "seqscan": (1596.52, 2317.39, 1423.45, 2179.81),
    },
    "table5_value_512g": {
        "mloc-col": (13.25, 33.03, 15.24, 39.34),
        "mloc-iso": (8.81, 23.77, 9.96, 37.66),
        "mloc-isa": (7.82, 40.99, 8.39, 44.04),
        "seqscan": (37.22, 248.87, 40.74, 230.26),
    },
    "table6_plod_accuracy_pct": {
        # histogram error % for (vu, vv, vw) and K-means error % (vv+vw)
        2: {"hist": (8.241, 1.83, 1.834), "kmeans": 4.290},
        3: {"hist": (0.029, 6.5e-3, 8.3e-3), "kmeans": 0.017},
        4: {"hist": (1.6e-4, 4.5e-5, 3.5e-5), "kmeans": 6.6e-5},
    },
    "table7_level_orders": {
        # seconds for (3-byte PLoD access, full-precision access)
        "V-M-S": (19.45, 39.34),
        "V-S-M": (23.70, 35.47),
    },
    "fig6_components": {
        # qualitative shape: per system, which component dominates
        "note": "MLOC-ISA least I/O, most decompression; seqscan most I/O",
    },
    "fig7_scalability": {
        "note": "decompression/reconstruction scale with ranks; I/O plateaus",
        "ranks": (8, 16, 32, 64, 128),
    },
    "fig8_plod_access": {
        "note": "response time grows with PLoD level, I/O-dominated",
        "levels": (2, 3, 4, 5, 6, 7),
    },
}


def results_dir() -> Path:
    """Directory for JSON result records (``REPRO_RESULTS_DIR``)."""
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def record_result(experiment: str, payload: dict) -> Path:
    """Write one experiment's measured rows to ``results/<id>.json``."""
    out = {
        "experiment": experiment,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "payload": payload,
    }
    path = results_dir() / f"{experiment}.json"
    path.write_text(json.dumps(out, indent=2, default=_jsonify))
    return path


def _jsonify(obj):
    try:
        import numpy as np

        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
    except ImportError:  # pragma: no cover
        pass
    return str(obj)


def format_rows(title: str, header: list[str], rows: dict[str, list]) -> str:
    """Render an aligned text table for benchmark stdout."""
    widths = [max(len(h), 12) for h in header]
    lines = [title, "  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for name, cells in rows.items():
        rendered = [str(name).ljust(widths[0])]
        for cell, w in zip(cells, widths[1:]):
            if isinstance(cell, float):
                rendered.append(f"{cell:.4g}".ljust(w))
            else:
                rendered.append(str(cell).ljust(w))
        lines.append("  ".join(rendered))
    return "\n".join(lines)
