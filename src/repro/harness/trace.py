"""Query-trace recording and replay.

The paper's target users run *iterative* exploration: "typical
analytical workflows consist of iterative data querying for patterns
of interest and fetching subsets of data" (Section I).  Traces make
those workflows first-class artifacts:

* :class:`TracingStore` wraps an :class:`~repro.core.store.MLOCStore`
  and records every query it serves;
* :class:`QueryTrace` serializes to/from JSON, so a session captured
  against one layout can be replayed against another (different level
  order, bin count, codec, rank count) for an apples-to-apples layout
  comparison — the empirical input the level-order advisor formalizes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.query import Query
from repro.core.result import FAULT_STAT_KEYS, ComponentTimes, QueryResult
from repro.core.store import MLOCStore

__all__ = [
    "FAULT_STAT_KEYS",
    "QueryTrace",
    "TracingStore",
    "ReplayReport",
    "replay_trace",
]

_TRACE_VERSION = 1


def _query_to_dict(query: Query) -> dict:
    return {
        "value_range": list(query.value_range) if query.value_range else None,
        "region": [list(b) for b in query.region] if query.region else None,
        "output": query.output,
        "plod_level": query.plod_level,
        "resolution_level": query.resolution_level,
    }


def _query_from_dict(payload: dict) -> Query:
    return Query(
        value_range=tuple(payload["value_range"]) if payload["value_range"] else None,
        region=(
            tuple(tuple(b) for b in payload["region"]) if payload["region"] else None
        ),
        output=payload["output"],
        plod_level=payload["plod_level"],
        resolution_level=payload["resolution_level"],
    )


@dataclass
class QueryTrace:
    """An ordered list of queries, serializable to JSON."""

    queries: list[Query] = field(default_factory=list)

    def append(self, query: Query) -> None:
        self.queries.append(query)

    def __len__(self) -> int:
        return len(self.queries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": _TRACE_VERSION,
            "queries": [_query_to_dict(q) for q in self.queries],
        }
        Path(path).write_text(json.dumps(payload, indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "QueryTrace":
        payload = json.loads(Path(path).read_text())
        version = payload.get("version")
        if version != _TRACE_VERSION:
            raise ValueError(f"unsupported trace version {version!r}")
        return cls([_query_from_dict(q) for q in payload["queries"]])


class TracingStore:
    """Store wrapper that records every query into a trace."""

    def __init__(self, store: MLOCStore, trace: QueryTrace | None = None) -> None:
        self.store = store
        self.trace = trace if trace is not None else QueryTrace()

    def query(self, query: Query, **kwargs) -> QueryResult:
        self.trace.append(query)
        return self.store.query(query, **kwargs)

    def __getattr__(self, name):
        # Delegate everything else (shape, meta, fetch_positions, ...).
        return getattr(self.store, name)


# FAULT_STAT_KEYS is re-exported from repro.core.result — the canonical
# counter registry — so replay aggregation can never drift from the
# executor's emitted stats.


@dataclass
class ReplayReport:
    """Outcome of replaying a trace against one store."""

    per_query: list[ComponentTimes]
    n_results: list[int]
    fault_stats: dict = field(default_factory=dict)

    @property
    def total(self) -> ComponentTimes:
        out = ComponentTimes()
        for times in self.per_query:
            out = out + times
        return out

    @property
    def mean_seconds(self) -> float:
        return self.total.total / len(self.per_query) if self.per_query else 0.0

    @property
    def saw_faults(self) -> bool:
        """True when any replayed query hit a read-path fault."""
        return any(self.fault_stats.get(k) for k in FAULT_STAT_KEYS) or bool(
            self.fault_stats.get("quarantined_blocks")
        ) or bool(self.fault_stats.get("partial_chunks"))


def replay_trace(
    store: MLOCStore,
    trace: QueryTrace,
    *,
    cold_cache: bool = True,
) -> ReplayReport:
    """Run every traced query against ``store``; gather the timings.

    ``cold_cache`` clears the PFS cache before each query (the paper's
    methodology); pass ``False`` to measure a warm iterative session.
    """
    per_query: list[ComponentTimes] = []
    n_results: list[int] = []
    fault_stats: dict = {key: 0 for key in FAULT_STAT_KEYS}
    partial: set[int] = set()
    for query in trace.queries:
        if cold_cache:
            store.fs.clear_cache()
        result = store.query(query)
        per_query.append(result.times)
        n_results.append(result.n_results)
        for key in FAULT_STAT_KEYS:
            fault_stats[key] += int(result.stats.get(key, 0))
        partial.update(result.stats.get("partial_chunks", ()))
    fault_stats["partial_chunks"] = sorted(partial)
    fault_stats["quarantined_blocks"] = len(store.quarantined_blocks)
    return ReplayReport(
        per_query=per_query, n_results=n_results, fault_stats=fault_stats
    )
