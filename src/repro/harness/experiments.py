"""Shared experiment row computations.

Each function regenerates one of the paper's tables/figures as a
``{row_label: [cells...]}`` dict with the paper's reference values
appended, given a built :class:`~repro.harness.systems.SystemSuite`.
Both the pytest benchmarks (`benchmarks/`) and the standalone runner
(``python -m repro.bench``) call these, so the two entry points can
never drift apart.
"""

from __future__ import annotations

import statistics
import time

from repro.core import ComponentTimes, MLOCWriter, Query
from repro.harness.systems import ALL_SYSTEMS, SystemSuite
from repro.harness.tables import PAPER
from repro.pfs import SimulatedPFS

__all__ = [
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "batch_pipeline_rows",
    "writer_backend_rows",
    "sharded_scaling_rows",
    "planning_rows",
    "fault_tolerance_rows",
    "coalescing_rows",
    "progressive_rows",
]

_512G_SYSTEMS = ("mloc-col", "mloc-iso", "mloc-isa", "seqscan")


def table1_rows(suite: SystemSuite) -> dict[str, list]:
    """Table I: storage fractions of raw for every system."""
    rows = {}
    for system in ALL_SYSTEMS:
        sizes = suite.storage_bytes(system)
        raw = suite.spec.raw_bytes
        data_frac = sizes["data"] / raw
        index_frac = sizes["index"] / raw
        paper = PAPER["table1_storage_gb"][system]
        rows[system] = [
            round(data_frac, 3),
            round(index_frac, 3),
            round(data_frac + index_frac, 3),
            round((paper[0] + paper[1]) / 8.0, 3),
        ]
    return rows


def _query_table(
    suite: SystemSuite,
    systems: tuple[str, ...],
    paper_key: str,
    dataset_label: str,
    selectivities: tuple[float, float],
    kind: str,
    n_queries: int,
) -> dict[str, list]:
    """Response-time cells are per-query *medians* (robust against
    outlier draws), computed alongside the medians of the deterministic
    io + decompression component.  The reconstruction part is measured
    CPU time amplified by ``cpu_scale``, so fine-margin shape
    assertions should use the deterministic cells."""
    n_queries = max(n_queries, 3)
    rows = {}
    deterministic = {}
    for system in systems:
        cells = []
        det_cells = []
        for sel in selectivities:
            totals = []
            det = []
            if kind == "region":
                constraints = suite.workload.value_constraints(sel, n_queries)
                run = suite.region_query
            else:
                constraints = suite.workload.region_constraints(sel, n_queries)
                run = suite.value_query
            for constraint in constraints:
                times = run(system, constraint).times
                totals.append(times.total)
                det.append(times.io + times.decompression)
            cells.append(round(statistics.median(totals), 2))
            det_cells.append(round(statistics.median(det), 2))
        paper = PAPER[paper_key][system]
        offset = 0 if dataset_label == "gts" else 2
        rows[system] = cells + [paper[offset], paper[offset + 1]]
        deterministic[system] = det_cells
    return rows, deterministic


def table2_rows(
    suite: SystemSuite, dataset_label: str, n_queries: int, detailed: bool = False
):
    """Table II: 8 GB-class region queries at 1% / 10% selectivity.

    With ``detailed=True`` additionally returns the per-system medians
    of the deterministic (io + decompression) component, which is what
    shape assertions should compare — see ``_query_table``.
    """
    rows, det = _query_table(
        suite, ALL_SYSTEMS, "table2_region_8g", dataset_label,
        (0.01, 0.10), "region", n_queries,
    )
    return (rows, det) if detailed else rows


def table3_rows(
    suite: SystemSuite, dataset_label: str, n_queries: int, detailed: bool = False
):
    """Table III: 8 GB-class value queries at 0.1% / 1% selectivity."""
    rows, det = _query_table(
        suite, ALL_SYSTEMS, "table3_value_8g", dataset_label,
        (0.001, 0.01), "value", n_queries,
    )
    return (rows, det) if detailed else rows


def table4_rows(
    suite: SystemSuite, dataset_label: str, n_queries: int, detailed: bool = False
):
    """Table IV: 512 GB-class region queries (MLOC vs seq scan)."""
    rows, det = _query_table(
        suite, _512G_SYSTEMS, "table4_region_512g", dataset_label,
        (0.01, 0.10), "region", n_queries,
    )
    return (rows, det) if detailed else rows


def table5_rows(
    suite: SystemSuite, dataset_label: str, n_queries: int, detailed: bool = False
):
    """Table V: 512 GB-class value queries (MLOC vs seq scan)."""
    rows, det = _query_table(
        suite, _512G_SYSTEMS, "table5_value_512g", dataset_label,
        (0.001, 0.01), "value", n_queries,
    )
    return (rows, det) if detailed else rows


def fig6_rows(suite: SystemSuite, n_queries: int) -> dict[str, list]:
    """Fig. 6: component decomposition of 0.1% value queries."""
    rows = {}
    regions = suite.workload.region_constraints(0.001, n_queries)
    for system in _512G_SYSTEMS:
        times, _ = suite.average_value_times(system, regions)
        rows[system] = [
            round(times.io, 2),
            round(times.decompression, 2),
            round(times.reconstruction, 2),
            round(times.total, 2),
        ]
    return rows


def fig7_rows(
    suite: SystemSuite,
    n_queries: int,
    ranks: tuple[int, ...] = (8, 16, 32, 64, 128),
) -> dict[str, list]:
    """Fig. 7: scalability of 10% value queries over rank counts."""
    base = suite.store("mloc-iso")
    regions = suite.workload.region_constraints(0.10, max(2, n_queries // 2))
    rows = {}
    for n_ranks in ranks:
        store = base.with_ranks(n_ranks)
        total = ComponentTimes()
        for region in regions:
            suite.fs.clear_cache()
            total = total + store.query(Query(region=region, output="values")).times
        k = len(regions)
        rows[f"{n_ranks} ranks"] = [
            round(total.io / k, 2),
            round(total.decompression / k, 2),
            round(total.reconstruction / k, 2),
            round(total.total / k, 2),
        ]
    return rows


def batch_pipeline_rows(
    suite: SystemSuite,
    n_queries: int,
    system: str = "mloc-col",
    selectivity: float = 0.01,
    plod_level: int = 7,
):
    """Batched ``query_many`` vs cold one-by-one on overlapping queries.

    Runs an exploration-session workload (drifting boxes, mostly-shared
    blocks) both ways and returns the comparison rows plus the
    :class:`~repro.core.result.BatchResult` (whose stats carry the
    cache hit/miss counters).  The aggregate io + decompression of the
    batch must come out lower — each shared block is read and decoded
    once instead of once per query.
    """
    regions = suite.workload.overlapping_region_constraints(selectivity, n_queries)
    t0 = time.perf_counter()
    cold = ComponentTimes()
    for region in regions:
        cold = cold + suite.value_query(system, region, plod_level=plod_level).times
    cold_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch = suite.value_query_batch(system, regions, plod_level=plod_level)
    batch_wall = time.perf_counter() - t0
    rows = {
        "cold one-by-one": [
            round(cold.io, 3),
            round(cold.decompression, 3),
            round(cold.io + cold.decompression, 3),
            round(cold_wall, 3),
        ],
        "batched query_many": [
            round(batch.times.io, 3),
            round(batch.times.decompression, 3),
            round(batch.times.io + batch.times.decompression, 3),
            round(batch_wall, 3),
        ],
    }
    return rows, batch


def writer_backend_rows(
    data,
    config,
    *,
    workers: int | None = None,
    rounds: int = 2,
    backends: tuple[str, ...] = ("serial", "threads", "processes"),
):
    """Serial vs threaded vs process write pipelines on one array.

    Writes ``data`` under ``config`` once per backend into fresh
    :class:`SimulatedPFS` instances (best-of-``rounds`` wall-clock,
    the noise-robust statistic the perf smoke suite uses throughout),
    verifies the produced subfiles *and* metadata are byte-identical
    across every backend, and returns ``(rows, identical)`` with
    ``rows`` mapping ``"<backend> writer"`` to ``[wall_seconds]``.
    """
    walls: dict[str, float] = {}
    snapshots: dict[str, dict[str, bytes]] = {}
    for backend in backends:
        label = f"{backend} writer"
        best = float("inf")
        for _ in range(max(rounds, 1)):
            fs = SimulatedPFS()
            writer = MLOCWriter(
                fs, "/bench", config, write_backend=backend, write_workers=workers
            )
            t0 = time.perf_counter()
            writer.write(data, variable="field")
            best = min(best, time.perf_counter() - t0)
        walls[label] = best
        snapshots[label] = {
            path: bytes(fs.session().open(path).read_all())
            for path in fs.list_files("/bench/")
        }
    reference = snapshots[f"{backends[0]} writer"]
    identical = all(snap == reference for snap in snapshots.values())
    rows = {label: [round(wall, 4)] for label, wall in walls.items()}
    return rows, identical


def sharded_scaling_rows(
    suite: SystemSuite,
    system: str = "mloc-col",
    *,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    n_queries: int = 3,
    fraction: float = 0.5,
):
    """Per-shard scaling sweep of :class:`ShardedMLOCStore` on one suite.

    Opens the already-written store as ``n`` bin-range shards for each
    ``n`` in ``shard_counts`` (one simulated rank per shard, so shard
    count is the only parallelism axis), runs the same cold-cache
    value-constraint workload at every count, and verifies the merged
    answers are identical throughout.  Because merged component times
    take the per-shard max (shards are notionally concurrent store
    servers), the simulated io column should fall near-linearly until
    shards outnumber the touched bins.

    Returns ``(rows, info)``: ``rows`` maps ``"<n> shards"`` to
    ``[io, decompression, io+decompression, speedup vs 1 shard]``;
    ``info`` carries the identity verdict and the shard balance of the
    widest configuration.
    """
    from repro.core import ShardedMLOCStore

    base = suite.store(system)
    # Broad (default 50%-selectivity) constraints: per-shard scaling
    # only shows on queries whose bins actually spread across shards.
    constraints = suite.workload.value_constraints(fraction, n_queries)
    queries = [Query(value_range=tuple(c), output="values") for c in constraints]

    rows: dict[str, list] = {}
    reference = None
    identical = True
    widest = None
    for n in shard_counts:
        sharded = ShardedMLOCStore(
            suite.fs, base.root, base.meta, n_shards=n, n_ranks=1
        )
        widest = sharded
        suite.fs.clear_cache()
        batch = sharded.query_many(queries)
        if reference is None:
            reference = batch
        else:
            for got, want in zip(batch.results, reference.results):
                if not (
                    _np_equal(got.positions, want.positions)
                    and _np_equal(got.values, want.values)
                ):
                    identical = False
        io, dec = batch.times.io, batch.times.decompression
        base_io_dec = (
            reference.times.io + reference.times.decompression
        )
        rows[f"{n} shards"] = [
            round(io, 4),
            round(dec, 4),
            round(io + dec, 4),
            round(base_io_dec / max(io + dec, 1e-12), 2),
        ]
    info = {
        "identical": identical,
        "n_queries": len(queries),
        "shard_counts": list(shard_counts),
        "shard_bounds": [int(b) for b in widest.shard_bounds],
        "shard_weights": [round(float(w), 1) for w in widest.shard_weights()],
    }
    return rows, info


def _np_equal(a, b) -> bool:
    import numpy as np

    if a is None or b is None:
        return (a is None) == (b is None)
    return np.array_equal(a, b)


def planning_rows(
    n_bins: int = 100,
    n_chunks: int = 1000,
    n_ranks: int = 8,
    rounds: int = 5,
):
    """Object-path vs array-path plan scheduling on a synthetic plan.

    Builds an ``n_bins x n_chunks`` work-list (the ISSUE's reference
    scale), runs the seed's per-block-object pipeline (nested-loop
    ``BlockRef`` construction, ``sorted()``, near-equal list spans)
    against the columnar pipeline (``QueryPlan.block_list`` +
    ``column_order_assignment``), verifies the per-rank assignments are
    block-for-block identical, and returns ``(rows, info)`` where
    ``rows`` maps each path to ``[plan_seconds, blocks_per_second]``
    and ``info`` carries ``identical``, ``speedup`` and the work-list
    size.  Best-of-``rounds`` wall clock, like every perf-smoke cell.
    """
    import numpy as np

    from repro.core.planner import QueryPlan
    from repro.parallel.scheduler import BlockRef, column_order_assignment

    rng = np.random.default_rng(11)
    cpos = np.sort(rng.choice(4 * n_chunks, size=n_chunks, replace=False)).astype(
        np.int64
    )
    plan = QueryPlan(
        bin_ids=np.arange(n_bins, dtype=np.int64),
        aligned=np.ones(n_bins, dtype=bool),
        cpos=cpos,
        chunk_ids=rng.permutation(n_chunks).astype(np.int64),
        interior=np.ones(n_chunks, dtype=bool),
        region=None,
    )
    n_blocks = plan.n_blocks

    def seed_path():
        # The pre-columnar pipeline, verbatim: one Python object per
        # block, a total sort, then near-equal contiguous list spans.
        blocks = [
            BlockRef(int(b), int(cp), int(cid))
            for b in plan.bin_ids
            for cp, cid in zip(plan.cpos, plan.chunk_ids)
        ]
        ordered = sorted(blocks)
        base, extra = divmod(len(ordered), n_ranks)
        out, start = [], 0
        for rank in range(n_ranks):
            size = base + (1 if rank < extra else 0)
            out.append(ordered[start : start + size])
            start += size
        return out

    def array_path():
        return column_order_assignment(plan.block_list(), n_ranks)

    def best_of(fn):
        best = float("inf")
        for _ in range(max(rounds, 1)):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    seed_assignment = seed_path()
    array_assignment = array_path()
    identical = all(
        seed_rank == rank_list.to_refs()
        for seed_rank, rank_list in zip(seed_assignment, array_assignment)
    )
    seed_s = best_of(seed_path)
    array_s = best_of(array_path)
    rows = {
        "object path (seed)": [round(seed_s, 5), int(n_blocks / seed_s)],
        "array path": [round(array_s, 5), int(n_blocks / array_s)],
    }
    info = {
        "identical": identical,
        "speedup": seed_s / array_s,
        "n_blocks": n_blocks,
        "n_ranks": n_ranks,
    }
    return rows, info


def fault_tolerance_rows(
    suite: SystemSuite,
    n_queries: int,
    rates: tuple[float, ...] = (0.0, 0.01, 0.05),
    seed: int = 1234,
):
    """Read-path fault tolerance: 1% value queries under injected faults.

    Runs the same workload against the suite's ``mloc-col`` store three
    times, through a :class:`~repro.pfs.faults.FaultyPFS` whose per-read
    fault rates sweep ``rates`` (each rate drives transient errors, bit
    flips, torn reads, sticky extent rot, and latency spikes together).
    ``allow_partial=True``: queries degrade instead of failing, and the
    row reports what the degradation cost — retries, quarantined blocks,
    degraded/dropped points — alongside the simulated response time.
    The rate-0.0 row doubles as the no-fault overhead check: its counter
    cells are all zero and its times match the plain store's.
    """
    from repro.core import MLOCStore
    from repro.pfs.faults import FaultPlan, FaultyPFS

    suite.store("mloc-col")  # build (once) through the plain PFS
    root = f"/{suite.spec.name}/mloc-col"
    regions = suite.workload.region_constraints(0.01, max(n_queries, 2))
    rows = {}
    for rate in rates:
        plan = FaultPlan(
            seed=seed,
            transient_error_rate=rate,
            bitflip_rate=rate,
            torn_read_rate=rate / 2,
            sticky_corruption_rate=rate / 2,
            latency_spike_rate=rate,
        )
        ffs = FaultyPFS(suite.fs, plan)
        store = MLOCStore.open(
            ffs, root, "field", n_ranks=suite.n_ranks, allow_partial=True
        )
        total = ComponentTimes()
        counters = {k: 0 for k in ("crc_failures", "io_retries", "degraded_points", "dropped_points")}
        for region in regions:
            ffs.clear_cache()
            ffs.reset_attempts()  # same fault draws for every rate
            result = store.query(Query(region=region, output="values"))
            total = total + result.times
            for key in counters:
                counters[key] += int(result.stats[key])
        k = len(regions)
        rows[f"rate {rate:g}"] = [
            round((total.io + total.decompression) / k, 3),
            counters["crc_failures"],
            counters["io_retries"],
            len(store.quarantined_blocks),
            counters["degraded_points"],
            counters["dropped_points"],
        ]
    return rows


def coalescing_rows(
    suite: SystemSuite,
    n_queries: int,
    system: str = "mloc-col",
    gap: int = 4096,
    plod_level: int = 3,
):
    """Coalesced vectored I/O vs one read per block on SC queries.

    Runs the same spatially-constrained (region) value workload twice —
    ``coalesce_gap=0`` (the pre-engine read path: one PFS read per
    pending block) and ``coalesce_gap=gap`` (the I/O scheduler merges
    near-adjacent extents of one subfile into single vectored reads) —
    and returns ``(rows, info)``: per-mode ``[seeks, bytes_read,
    io+dec seconds]`` plus ``identical`` (results must not change),
    ``seeks_saved`` and ``coalesced_reads``.  A reduced PLoD level
    leaves gaps between the covering blocks inside each byte-group
    segment, which is exactly what coalescing bridges.
    """
    import numpy as np

    from repro.core import MLOCStore

    base = suite.store(system)
    regions = suite.workload.region_constraints(0.01, max(n_queries, 2))
    queries = [
        Query(region=region, output="values", plod_level=plod_level)
        for region in regions
    ]
    rows = {}
    outputs: dict[str, list] = {}
    counters: dict[str, dict[str, int]] = {}
    for label, gap_bytes in (("one read per block", 0), (f"coalesce_gap={gap}", gap)):
        store = MLOCStore(
            suite.fs, base.root, base.meta,
            n_ranks=suite.n_ranks, coalesce_gap=gap_bytes,
        )
        seeks = bytes_read = coalesced = 0
        times = ComponentTimes()
        results = []
        for query in queries:
            suite.fs.clear_cache()
            result = store.query(query)
            seeks += int(result.stats["seeks"])
            bytes_read += int(result.stats["bytes_read"])
            coalesced += int(result.stats["coalesced_reads"])
            times = times + result.times
            results.append(result)
        rows[label] = [seeks, bytes_read, round(times.io + times.decompression, 4)]
        outputs[label] = results
        counters[label] = {"seeks": seeks, "coalesced": coalesced}
    plain, vectored = outputs.values()
    identical = all(
        np.array_equal(a.positions, b.positions)
        and np.array_equal(a.values, b.values)
        for a, b in zip(plain, vectored)
    )
    (plain_c, vec_c) = counters.values()
    info = {
        "identical": identical,
        "seeks_uncoalesced": plain_c["seeks"],
        "seeks_coalesced": vec_c["seeks"],
        "seeks_saved": plain_c["seeks"] - vec_c["seeks"],
        "coalesced_reads": vec_c["coalesced"],
    }
    return rows, info


def progressive_rows(
    suite: SystemSuite,
    system: str = "mloc-col",
    levels: tuple[int, ...] = (2, 5, 7),
):
    """Progressive refinement session vs independent per-level queries.

    Opens one :class:`~repro.core.engine.session.RefinementSession` on a
    1% region value query at ``levels[0]`` and refines through the
    remaining levels; then runs a fresh cold single-shot query at every
    level.  Returns ``(rows, info)``: one row per level with the bytes
    each approach read, plus ``identical`` (every session step must be
    bit-identical to the fresh query at its level), ``bytes_reused``
    (raw bytes served from held planes), the session-vs-independent
    total byte ratio, and the refine-to-full vs re-query-at-full ratio
    (the ISSUE's >= 2x bar: refining 4 -> 7 fetches only the missing
    three byte-plane groups and never re-reads the index).
    """
    import numpy as np

    from repro.core import MLOCStore

    base = suite.store(system)
    region = suite.workload.region_constraints(0.01, 2)[0]
    query = Query(region=region, output="values", plod_level=levels[0])

    store = MLOCStore(suite.fs, base.root, base.meta, n_ranks=suite.n_ranks)
    suite.fs.clear_cache()
    with store.open_session(query) as session:
        for level in levels[1:]:
            session.refine(level)
        session_results = list(session.results)
        bytes_reused = session.bytes_reused

    fresh_store = MLOCStore(suite.fs, base.root, base.meta, n_ranks=suite.n_ranks)
    independent = []
    for level in levels:
        suite.fs.clear_cache()
        independent.append(
            fresh_store.query(
                Query(region=region, output="values", plod_level=level)
            )
        )

    rows = {}
    for level, step, fresh in zip(levels, session_results, independent):
        rows[f"PLoD {level}"] = [
            int(step.stats["bytes_read"]),
            int(fresh.stats["bytes_read"]),
            int(step.stats["bytes_reused"]),
        ]
    session_bytes = sum(int(r.stats["bytes_read"]) for r in session_results)
    independent_bytes = sum(int(r.stats["bytes_read"]) for r in independent)
    rows["total"] = [session_bytes, independent_bytes, bytes_reused]
    identical = all(
        np.array_equal(a.positions, b.positions)
        and np.array_equal(a.values, b.values)
        for a, b in zip(session_results, independent)
    )
    refine_full = int(session_results[-1].stats["bytes_read"])
    requery_full = int(independent[-1].stats["bytes_read"])
    info = {
        "identical": identical,
        "bytes_reused": bytes_reused,
        "session_bytes": session_bytes,
        "independent_bytes": independent_bytes,
        "refine_to_full_bytes": refine_full,
        "requery_full_bytes": requery_full,
        "full_step_ratio": requery_full / max(refine_full, 1),
        "levels": list(levels),
    }
    return rows, info


def fig8_rows(
    suite: SystemSuite,
    n_queries: int,
    levels: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
) -> dict[str, list]:
    """Fig. 8: PLoD access cost of 1% value queries per level."""
    store = suite.store("mloc-col")
    regions = suite.workload.region_constraints(0.01, n_queries)
    rows = {}
    for level in levels:
        total = ComponentTimes()
        for region in regions:
            suite.fs.clear_cache()
            total = total + store.query(
                Query(region=region, output="values", plod_level=level)
            ).times
        k = len(regions)
        rows[f"PLoD {level} ({level + 1}B)"] = [
            round(total.io / k, 2),
            round(total.decompression / k, 2),
            round(total.reconstruction / k, 2),
            round(total.total / k, 2),
        ]
    return rows
