"""Dataset scale definitions for the experiment harness.

The paper evaluates on 8 GB and 512 GB datasets.  Absolute scale is a
property of the testbed, not of the algorithms; the reproduction runs
the same experiments on scaled-down datasets (DESIGN.md §2) with every
system scaled identically, so ratios and orderings are preserved.  The
``REPRO_SCALE`` environment variable selects the tier:

* ``tiny``  — seconds-fast, for CI and quick iteration;
* ``small`` — the default "8 GB-class" tier (tens of MB);
* ``large`` — the "512 GB-class" tier (hundreds of MB).

Every spec pins the chunk shape (chosen so the per-chunk byte size is
in the stripe-friendly range the paper prescribes) and the RNG seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import gts_like, s3d_like

__all__ = ["DatasetSpec", "get_spec", "scale_tier", "SCALE_TIERS"]

SCALE_TIERS = ("tiny", "small", "large")


@dataclass(frozen=True)
class DatasetSpec:
    """One concrete dataset the harness can materialize.

    ``paper_bytes`` is the size of the dataset this spec *stands in
    for* (8 GB or 512 GB); the ratio ``paper_bytes / raw_bytes`` is the
    cost model's ``byte_scale``, making every reported I/O second
    paper-scale-equivalent (DESIGN.md §5).
    """

    name: str
    kind: str  # "gts" | "s3d"
    shape: tuple[int, ...]
    chunk_shape: tuple[int, ...]
    n_bins: int
    fastbit_bins: int
    seed: int
    paper_bytes: int = 8 << 30

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def raw_bytes(self) -> int:
        return self.n_elements * 8

    @property
    def byte_scale(self) -> float:
        return self.paper_bytes / self.raw_bytes

    def generate(self) -> np.ndarray:
        """Materialize the synthetic field."""
        if self.kind == "gts":
            return gts_like(self.shape, seed=self.seed)
        if self.kind == "s3d":
            return s3d_like(self.shape, seed=self.seed)
        raise ValueError(f"unknown dataset kind {self.kind!r}")


_SPECS: dict[tuple[str, str, str], DatasetSpec] = {}


def _register(tier: str, cls: str, spec: DatasetSpec) -> None:
    _SPECS[(tier, cls, spec.kind)] = spec


_8G = 8 << 30
_512G = 512 << 30

# ---------------------------------------------------------------------
# tiny tier (CI): ~2 MB per dataset
_register("tiny", "8g", DatasetSpec("gts-8g", "gts", (512, 512), (32, 32), 20, 128, 11, _8G))
_register(
    "tiny", "8g", DatasetSpec("s3d-8g", "s3d", (64, 64, 64), (16, 16, 16), 20, 128, 12, _8G)
)
_register(
    "tiny", "512g", DatasetSpec("gts-512g", "gts", (1024, 1024), (32, 32), 20, 128, 13, _512G)
)
_register(
    "tiny",
    "512g",
    DatasetSpec("s3d-512g", "s3d", (64, 64, 64), (16, 16, 16), 20, 128, 14, _512G),
)

# small tier: the default experiment tier
_register(
    "small", "8g", DatasetSpec("gts-8g", "gts", (2048, 2048), (64, 64), 100, 1024, 11, _8G)
)
_register(
    "small",
    "8g",
    DatasetSpec("s3d-8g", "s3d", (128, 128, 128), (16, 16, 16), 100, 1024, 12, _8G),
)
_register(
    "small",
    "512g",
    DatasetSpec("gts-512g", "gts", (4096, 4096), (64, 64), 100, 1024, 13, _512G),
)
_register(
    "small",
    "512g",
    DatasetSpec("s3d-512g", "s3d", (256, 256, 256), (32, 32, 32), 100, 1024, 14, _512G),
)

# large tier: bigger runs (smaller byte_scale, finer-grained effects)
_register(
    "large", "8g", DatasetSpec("gts-8g", "gts", (4096, 4096), (64, 64), 100, 1024, 11, _8G)
)
_register(
    "large",
    "8g",
    DatasetSpec("s3d-8g", "s3d", (256, 256, 256), (32, 32, 32), 100, 1024, 12, _8G),
)
_register(
    "large",
    "512g",
    DatasetSpec("gts-512g", "gts", (8192, 8192), (64, 64), 100, 1024, 13, _512G),
)
_register(
    "large",
    "512g",
    DatasetSpec("s3d-512g", "s3d", (512, 512, 512), (32, 32, 32), 100, 1024, 14, _512G),
)


def scale_tier() -> str:
    """The active tier, from ``REPRO_SCALE`` (default ``small``)."""
    tier = os.environ.get("REPRO_SCALE", "small")
    if tier not in SCALE_TIERS:
        raise ValueError(
            f"REPRO_SCALE must be one of {SCALE_TIERS}, got {tier!r}"
        )
    return tier


def get_spec(size_class: str, kind: str, tier: str | None = None) -> DatasetSpec:
    """Look up the spec for a paper size class ('8g'/'512g') and kind."""
    tier = tier if tier is not None else scale_tier()
    try:
        return _SPECS[(tier, size_class, kind)]
    except KeyError:
        raise ValueError(
            f"no spec for tier={tier!r}, size_class={size_class!r}, kind={kind!r}"
        ) from None
