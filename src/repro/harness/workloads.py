"""Random query workload generation (Section IV-A).

The paper generates "random value and spatial constraints with certain
selectivity" and reports averages over 100 random queries.  The
generators here reproduce that protocol:

* a *value constraint* at selectivity ``s`` is a value interval
  containing fraction ``s`` of the points, anchored at a uniformly
  random quantile;
* a *spatial constraint* at selectivity ``s`` is an axis-aligned box
  covering fraction ``s`` of the domain volume (equal per-axis side
  fractions), at a uniformly random position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorkloadGenerator", "ValueConstraint", "RegionConstraint"]

ValueConstraint = tuple[float, float]
RegionConstraint = tuple[tuple[int, int], ...]


@dataclass
class WorkloadGenerator:
    """Seeded generator of random constraints over one dataset."""

    shape: tuple[int, ...]
    quantiles: np.ndarray  # value at quantile q, sampled on a fine grid
    seed: int = 0

    @classmethod
    def for_data(cls, data: np.ndarray, seed: int = 0, grid: int = 4096) -> "WorkloadGenerator":
        """Build from the data itself (quantile table precomputed)."""
        flat = np.asarray(data, dtype=np.float64).reshape(-1)
        qs = np.quantile(flat, np.linspace(0.0, 1.0, grid + 1))
        return cls(shape=tuple(data.shape), quantiles=qs, seed=seed)

    # ------------------------------------------------------------------
    def _quantile(self, q: float) -> float:
        grid = self.quantiles.size - 1
        x = q * grid
        i = int(np.clip(np.floor(x), 0, grid - 1))
        frac = x - i
        return float(self.quantiles[i] * (1 - frac) + self.quantiles[i + 1] * frac)

    def value_constraints(
        self, selectivity: float, n: int
    ) -> list[ValueConstraint]:
        """``n`` random value intervals each selecting ~``selectivity``."""
        if not (0 < selectivity <= 1):
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        rng = np.random.default_rng(self.seed)
        out = []
        for _ in range(n):
            u = rng.uniform(0.0, 1.0 - selectivity)
            out.append((self._quantile(u), self._quantile(u + selectivity)))
        return out

    def region_constraints(
        self, selectivity: float, n: int
    ) -> list[RegionConstraint]:
        """``n`` random boxes each covering ~``selectivity`` of the volume."""
        if not (0 < selectivity <= 1):
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        rng = np.random.default_rng(self.seed + 1)
        ndims = len(self.shape)
        side = selectivity ** (1.0 / ndims)
        out = []
        for _ in range(n):
            region = []
            for extent in self.shape:
                width = max(1, int(round(side * extent)))
                width = min(width, extent)
                lo = int(rng.integers(0, extent - width + 1))
                region.append((lo, lo + width))
            out.append(tuple(region))
        return out
