"""Random query workload generation (Section IV-A).

The paper generates "random value and spatial constraints with certain
selectivity" and reports averages over 100 random queries.  The
generators here reproduce that protocol:

* a *value constraint* at selectivity ``s`` is a value interval
  containing fraction ``s`` of the points, anchored at a uniformly
  random quantile;
* a *spatial constraint* at selectivity ``s`` is an axis-aligned box
  covering fraction ``s`` of the domain volume (equal per-axis side
  fractions), at a uniformly random position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorkloadGenerator", "ValueConstraint", "RegionConstraint"]

ValueConstraint = tuple[float, float]
RegionConstraint = tuple[tuple[int, int], ...]


@dataclass
class WorkloadGenerator:
    """Seeded generator of random constraints over one dataset."""

    shape: tuple[int, ...]
    quantiles: np.ndarray  # value at quantile q, sampled on a fine grid
    seed: int = 0

    @classmethod
    def for_data(cls, data: np.ndarray, seed: int = 0, grid: int = 4096) -> "WorkloadGenerator":
        """Build from the data itself (quantile table precomputed)."""
        flat = np.asarray(data, dtype=np.float64).reshape(-1)
        qs = np.quantile(flat, np.linspace(0.0, 1.0, grid + 1))
        return cls(shape=tuple(data.shape), quantiles=qs, seed=seed)

    # ------------------------------------------------------------------
    def _quantile(self, q: float) -> float:
        grid = self.quantiles.size - 1
        x = q * grid
        i = int(np.clip(np.floor(x), 0, grid - 1))
        frac = x - i
        return float(self.quantiles[i] * (1 - frac) + self.quantiles[i + 1] * frac)

    def value_constraints(
        self, selectivity: float, n: int
    ) -> list[ValueConstraint]:
        """``n`` random value intervals each selecting ~``selectivity``."""
        if not (0 < selectivity <= 1):
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        rng = np.random.default_rng(self.seed)
        out = []
        for _ in range(n):
            u = rng.uniform(0.0, 1.0 - selectivity)
            out.append((self._quantile(u), self._quantile(u + selectivity)))
        return out

    def region_constraints(
        self, selectivity: float, n: int
    ) -> list[RegionConstraint]:
        """``n`` random boxes each covering ~``selectivity`` of the volume."""
        if not (0 < selectivity <= 1):
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        rng = np.random.default_rng(self.seed + 1)
        ndims = len(self.shape)
        side = selectivity ** (1.0 / ndims)
        out = []
        for _ in range(n):
            region = []
            for extent in self.shape:
                width = max(1, int(round(side * extent)))
                width = min(width, extent)
                lo = int(rng.integers(0, extent - width + 1))
                region.append((lo, lo + width))
            out.append(tuple(region))
        return out

    def overlapping_region_constraints(
        self, selectivity: float, n: int, drift: float = 0.25
    ) -> list[RegionConstraint]:
        """``n`` boxes of ~``selectivity`` volume each, sharing most chunks.

        Models an exploration session (pan/zoom around a feature): the
        first box is placed at a random position and each subsequent box
        shifts by at most ``drift`` of its side length per axis.
        Consecutive queries therefore cover mostly the same compression
        blocks — the access pattern the decoded-block cache and
        :meth:`~repro.core.store.MLOCStore.query_many` batching exploit.
        """
        if not (0 < selectivity <= 1):
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        if not (0 <= drift <= 1):
            raise ValueError(f"drift must be in [0, 1], got {drift}")
        rng = np.random.default_rng(self.seed + 2)
        ndims = len(self.shape)
        side = selectivity ** (1.0 / ndims)
        widths = [
            min(max(1, int(round(side * extent))), extent) for extent in self.shape
        ]
        lows = [
            int(rng.integers(0, extent - width + 1))
            for extent, width in zip(self.shape, widths)
        ]
        out: list[RegionConstraint] = []
        for _ in range(n):
            out.append(
                tuple((lo, lo + w) for lo, w in zip(lows, widths))
            )
            for d, (extent, width) in enumerate(zip(self.shape, widths)):
                max_step = max(1, int(round(drift * width)))
                step = int(rng.integers(-max_step, max_step + 1))
                lows[d] = int(np.clip(lows[d] + step, 0, extent - width))
        return out
