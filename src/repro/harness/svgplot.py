"""Dependency-free SVG rendering of the paper's figures.

matplotlib is unavailable in the reproduction environment, so this
module emits hand-rolled SVG — enough for publication-style stacked
horizontal bar charts of the component-time figures (6, 7, 8).  The
output is deliberately plain: one `<rect>` per component segment, a
labelled axis, and a legend, all computed with simple arithmetic so
the renderer itself is easily testable.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["stacked_bar_svg", "save_figure_svg", "COMPONENT_COLORS"]

#: Default fill colors per component (colorblind-safe-ish).
COMPONENT_COLORS = ("#4477aa", "#ee6677", "#228833", "#ccbb44")

_BAR_HEIGHT = 22
_BAR_GAP = 10
_LABEL_WIDTH = 150
_CHART_WIDTH = 560
_MARGIN = 16
_LEGEND_HEIGHT = 28


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def stacked_bar_svg(
    title: str,
    rows: dict[str, list[float]],
    components: list[str],
    *,
    unit: str = "s",
) -> str:
    """Render stacked horizontal bars as an SVG document string.

    ``rows[label]`` holds one non-negative value per component; bars
    share a common scale set by the largest total.
    """
    if not rows:
        raise ValueError("stacked_bar_svg needs at least one row")
    if len(components) > len(COMPONENT_COLORS):
        raise ValueError(f"at most {len(COMPONENT_COLORS)} components supported")
    for label, values in rows.items():
        if len(values) != len(components):
            raise ValueError(
                f"row {label!r} has {len(values)} values for "
                f"{len(components)} components"
            )
        if any(v < 0 for v in values):
            raise ValueError(f"row {label!r} has negative values")

    peak = max(sum(v) for v in rows.values()) or 1.0
    n = len(rows)
    height = (
        _MARGIN * 2
        + 24  # title
        + _LEGEND_HEIGHT
        + n * (_BAR_HEIGHT + _BAR_GAP)
    )
    width = _MARGIN * 2 + _LABEL_WIDTH + _CHART_WIDTH + 90

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<text x="{_MARGIN}" y="{_MARGIN + 12}" font-size="14" '
        f'font-weight="bold">{_esc(title)}</text>',
    ]

    # Legend.
    x = _MARGIN
    legend_y = _MARGIN + 26
    for color, name in zip(COMPONENT_COLORS, components):
        parts.append(
            f'<rect x="{x}" y="{legend_y}" width="12" height="12" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + 16}" y="{legend_y + 10}">{_esc(name)}</text>'
        )
        x += 16 + 8 * len(name) + 24

    # Bars.
    y = legend_y + _LEGEND_HEIGHT
    for label, values in rows.items():
        parts.append(
            f'<text x="{_MARGIN + _LABEL_WIDTH - 6}" y="{y + _BAR_HEIGHT - 7}" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        x = float(_MARGIN + _LABEL_WIDTH)
        for color, value in zip(COMPONENT_COLORS, values):
            seg = _CHART_WIDTH * value / peak
            if seg > 0:
                parts.append(
                    f'<rect x="{x:.1f}" y="{y}" width="{seg:.1f}" '
                    f'height="{_BAR_HEIGHT}" fill="{color}"/>'
                )
            x += seg
        total = sum(values)
        parts.append(
            f'<text x="{x + 6:.1f}" y="{y + _BAR_HEIGHT - 7}">'
            f"{total:.3g} {_esc(unit)}</text>"
        )
        y += _BAR_HEIGHT + _BAR_GAP

    parts.append("</svg>")
    return "\n".join(parts)


def save_figure_svg(
    path: str | Path,
    title: str,
    rows: dict[str, list[float]],
    components: list[str],
    *,
    unit: str = "s",
) -> Path:
    """Write :func:`stacked_bar_svg` output to ``path``."""
    path = Path(path)
    path.write_text(stacked_bar_svg(title, rows, components, unit=unit))
    return path
