"""Experiment harness: dataset scales, workloads, system suites, and
paper-reference tables for the per-table/figure benchmarks."""

from repro.harness.scales import SCALE_TIERS, DatasetSpec, get_spec, scale_tier
from repro.harness.systems import ALL_SYSTEMS, MLOC_SYSTEMS, SystemSuite, get_suite
from repro.harness.asciiplot import bar_chart, stacked_bars
from repro.harness.tables import PAPER, format_rows, record_result, results_dir
from repro.harness.trace import QueryTrace, ReplayReport, TracingStore, replay_trace
from repro.harness.workloads import WorkloadGenerator

__all__ = [
    "ALL_SYSTEMS",
    "DatasetSpec",
    "MLOC_SYSTEMS",
    "PAPER",
    "QueryTrace",
    "ReplayReport",
    "SCALE_TIERS",
    "SystemSuite",
    "TracingStore",
    "WorkloadGenerator",
    "bar_chart",
    "format_rows",
    "get_spec",
    "get_suite",
    "record_result",
    "replay_trace",
    "results_dir",
    "scale_tier",
    "stacked_bars",
]
