"""Analysis kernels used by the accuracy experiments (Table VI)."""

from repro.analysis.histogram import equal_width_histogram, histogram_migration_error
from repro.analysis.kmeans import assign_clusters, kmeans, kmeans_misclassification

__all__ = [
    "assign_clusters",
    "equal_width_histogram",
    "histogram_migration_error",
    "kmeans",
    "kmeans_misclassification",
]
