"""K-means clustering and the misclassification metric (Table VI).

Implemented from scratch (vectorized Lloyd iterations with k-means++
seeding) so the reproduction has no dependency beyond NumPy.  The
paper's experiment clusters the original data and the PLoD-degraded
data and reports the percentage of points assigned to a different
cluster than their original counterpart; running both clusterings from
the *same* seeded centroids keeps cluster labels comparable, matching
the paper's "randomized centroids each time, 100 iterations" protocol
averaged over repetitions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "assign_clusters", "kmeans_misclassification"]


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(0, n)]
    dist_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = dist_sq.sum()
        if total <= 0:
            centroids[i:] = points[rng.integers(0, n, size=k - i)]
            break
        probs = dist_sq / total
        centroids[i] = points[rng.choice(n, p=probs)]
        dist_sq = np.minimum(dist_sq, np.sum((points - centroids[i]) ** 2, axis=1))
    return centroids


def assign_clusters(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (squared Euclidean), vectorized."""
    # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2; the ||p||^2 term is
    # constant per point and can be dropped for argmin.
    cross = points @ centroids.T
    c_sq = np.sum(centroids**2, axis=1)
    return np.argmin(c_sq[None, :] - 2.0 * cross, axis=1)


def kmeans(
    points: np.ndarray,
    k: int,
    n_iters: int = 100,
    seed: int = 0,
    tol: float = 0.0,
    init_centroids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm; returns ``(centroids, labels)``.

    Parameters
    ----------
    points:
        ``(n, d)`` observations.
    k:
        Number of clusters.
    n_iters:
        Maximum iterations (the paper ran 100).
    seed:
        Seed for k-means++ initialization.
    tol:
        Early-exit threshold on total centroid movement (0 = run all
        iterations unless assignments stop changing).
    init_centroids:
        Optional explicit starting centroids (warm start); overrides
        the seeded k-means++ initialization.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D (n, d), got shape {points.shape}")
    n = points.shape[0]
    if not (1 <= k <= n):
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if init_centroids is not None:
        centroids = np.asarray(init_centroids, dtype=np.float64).copy()
        if centroids.shape != (k, points.shape[1]):
            raise ValueError(
                f"init_centroids shape {centroids.shape} != ({k}, {points.shape[1]})"
            )
    else:
        rng = np.random.default_rng(seed)
        centroids = _kmeans_pp_init(points, k, rng)
    labels = assign_clusters(points, centroids)
    for _ in range(n_iters):
        new_centroids = centroids.copy()
        for c in range(k):
            members = points[labels == c]
            if members.size:
                new_centroids[c] = members.mean(axis=0)
        movement = float(np.abs(new_centroids - centroids).sum())
        centroids = new_centroids
        new_labels = assign_clusters(points, centroids)
        if np.array_equal(new_labels, labels) or movement <= tol:
            labels = new_labels
            break
        labels = new_labels
    return centroids, labels


def kmeans_misclassification(
    original: np.ndarray,
    degraded: np.ndarray,
    k: int = 8,
    n_iters: int = 100,
    repeats: int = 3,
    seed: int = 0,
) -> float:
    """Fraction of points clustered differently after degradation.

    For each repetition, the original data is clustered from a fresh
    seeded k-means++ initialization ("randomized centroids each time,
    100 iterations", as in the paper); both datasets are then assigned
    to the *converged original centroids*, and the disagreement rate
    between the two assignments is reported.  Re-running full Lloyd
    iterations on the degraded data would measure the algorithm's
    local-minimum jitter (on continuous turbulence data Lloyd wanders
    for hundreds of iterations), swamping the sub-percent data effect
    Table VI reports; assignment against fixed centroids isolates
    exactly the points that byte truncation pushes across cluster
    boundaries.
    """
    original = np.asarray(original, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    if original.shape != degraded.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {degraded.shape}")
    if original.ndim == 1:
        original = original[:, None]
        degraded = degraded[:, None]
    errors = []
    for rep in range(repeats):
        centroids, labels_orig = kmeans(original, k, n_iters=n_iters, seed=seed + rep)
        labels_degr = assign_clusters(degraded, centroids)
        errors.append(float(np.mean(labels_orig != labels_degr)))
    return float(np.mean(errors))
