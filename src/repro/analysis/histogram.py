"""Histogram-migration error metric (Table VI, left half).

The paper's accuracy experiment: construct an equal-width histogram on
the *original* data, apply the same bin boundaries to the PLoD-degraded
data, and report the fraction of points that land in a different bin
than their original counterpart.
"""

from __future__ import annotations

import numpy as np

__all__ = ["histogram_migration_error", "equal_width_histogram"]


def equal_width_histogram(values: np.ndarray, n_bins: int) -> tuple[np.ndarray, np.ndarray]:
    """Equal-width histogram; returns ``(counts, edges)``.

    Edges span exactly ``[min, max]`` of the input, as NumPy does.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot histogram an empty array")
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    counts, edges = np.histogram(values, bins=n_bins)
    return counts, edges


def _digitize(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bin ids under ``edges`` with end-clamping (degraded values can
    fall slightly outside the original range)."""
    ids = np.searchsorted(edges, values, side="right") - 1
    return np.clip(ids, 0, edges.size - 2)


def histogram_migration_error(
    original: np.ndarray, degraded: np.ndarray, n_bins: int = 100
) -> float:
    """Fraction of points whose histogram bin changes under degradation."""
    original = np.asarray(original, dtype=np.float64).reshape(-1)
    degraded = np.asarray(degraded, dtype=np.float64).reshape(-1)
    if original.shape != degraded.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {degraded.shape}"
        )
    _, edges = equal_width_histogram(original, n_bins)
    bins_orig = _digitize(original, edges)
    bins_degr = _digitize(degraded, edges)
    return float(np.mean(bins_orig != bins_degr))
