"""Block-to-rank assignment policies for parallel query execution.

Section III-D of the paper: blocks selected for a query are assigned to
MPI processes in *column order* — equal counts per process, filling as
many blocks as possible from a single bin before moving to the next —
so that each process touches the fewest bin files and file contention
is minimized.  A round-robin policy is provided for the scheduling
ablation benchmark.

Work-lists are columnar: a :class:`BlockList` carries the planned
(bin, chunk) work items as three parallel int64 arrays, and both
policies operate on it with one ``lexsort`` plus span slicing — no
per-block Python objects.  :class:`BlockRef` remains as the object
view of a single work item (tools, tests, debugging); passing a
sequence of refs to a policy returns per-rank ref lists with exactly
the assignments the columnar path produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "BlockRef",
    "BlockList",
    "column_order_assignment",
    "round_robin_assignment",
    "assignment_file_counts",
    "weighted_bin_partition",
]


@dataclass(frozen=True, order=True)
class BlockRef:
    """A unit of work for the executor: one chunk's data inside one bin.

    Attributes
    ----------
    bin_id:
        The value bin whose subfile holds this block.
    chunk_pos:
        Position of the chunk in the bin's on-disk (Hilbert) order.
    chunk_id:
        The global chunk identifier (row-major over the chunk grid).
    """

    bin_id: int
    chunk_pos: int
    chunk_id: int


@dataclass(frozen=True)
class BlockList:
    """A columnar block work-list: parallel int64 arrays, one row per
    (bin, chunk) work item.

    Row ``i`` is the block of chunk ``chunk_ids[i]`` (at on-disk curve
    position ``cpos[i]``) inside bin ``bin_ids[i]`` — exactly what a
    :class:`BlockRef` holds, without the object.
    """

    bin_ids: np.ndarray
    cpos: np.ndarray
    chunk_ids: np.ndarray

    def __post_init__(self) -> None:
        for name in ("bin_ids", "cpos", "chunk_ids"):
            object.__setattr__(
                self, name, np.asarray(getattr(self, name), dtype=np.int64)
            )
        if not (self.bin_ids.size == self.cpos.size == self.chunk_ids.size):
            raise ValueError(
                f"column lengths differ: {self.bin_ids.size}, "
                f"{self.cpos.size}, {self.chunk_ids.size}"
            )

    def __len__(self) -> int:
        return int(self.bin_ids.size)

    @classmethod
    def from_refs(cls, refs: Sequence[BlockRef]) -> "BlockList":
        return cls(
            bin_ids=np.fromiter((r.bin_id for r in refs), dtype=np.int64, count=len(refs)),
            cpos=np.fromiter((r.chunk_pos for r in refs), dtype=np.int64, count=len(refs)),
            chunk_ids=np.fromiter((r.chunk_id for r in refs), dtype=np.int64, count=len(refs)),
        )

    def to_refs(self) -> list[BlockRef]:
        return [
            BlockRef(int(b), int(cp), int(cid))
            for b, cp, cid in zip(self.bin_ids, self.cpos, self.chunk_ids)
        ]

    def take(self, indices: np.ndarray) -> "BlockList":
        return BlockList(
            bin_ids=self.bin_ids[indices],
            cpos=self.cpos[indices],
            chunk_ids=self.chunk_ids[indices],
        )

    def span(self, start: int, stop: int) -> "BlockList":
        return BlockList(
            bin_ids=self.bin_ids[start:stop],
            cpos=self.cpos[start:stop],
            chunk_ids=self.chunk_ids[start:stop],
        )

    def lexsorted(self) -> "BlockList":
        """Rows sorted by (bin, on-disk position, chunk id)."""
        order = np.lexsort((self.chunk_ids, self.cpos, self.bin_ids))
        return self.take(order)

    def bin_segments(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(bin_id, cpos, chunk_ids)`` per contiguous bin run.

        The list must be bin-major (as every assignment policy
        produces); each bin's rows then form one contiguous segment,
        recovered here from the run boundaries without any dict
        regrouping.
        """
        if not len(self):
            return
        bounds = np.flatnonzero(np.diff(self.bin_ids)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [self.bin_ids.size]))
        for s, e in zip(starts, ends):
            yield int(self.bin_ids[s]), self.cpos[s:e], self.chunk_ids[s:e]


def _as_block_list(blocks) -> tuple[BlockList, bool]:
    """Normalize policy input; second value = caller passed ref objects."""
    if isinstance(blocks, BlockList):
        return blocks, False
    return BlockList.from_refs(blocks), True


def _span_bounds(n: int, n_parts: int) -> np.ndarray:
    """Start offsets of ``n_parts`` near-equal contiguous spans of ``n``."""
    base, extra = divmod(n, n_parts)
    sizes = np.full(n_parts, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(n_parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def column_order_assignment(blocks, n_ranks: int):
    """Assign blocks to ranks in column (bin-major) order.

    Blocks are sorted by (bin, on-disk position) and split into
    ``n_ranks`` contiguous spans of near-equal length.  Contiguity in
    bin-major order means a rank's span crosses the fewest possible bin
    boundaries, i.e. it opens the fewest files — the paper's stated
    policy for minimizing I/O contention.

    Accepts a :class:`BlockList` (returning per-rank ``BlockList``
    spans) or a sequence of :class:`BlockRef` (returning per-rank ref
    lists with identical assignments).
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    work, as_refs = _as_block_list(blocks)
    ordered = work.lexsorted()
    bounds = _span_bounds(len(ordered), n_ranks)
    spans = [ordered.span(int(bounds[i]), int(bounds[i + 1])) for i in range(n_ranks)]
    return [span.to_refs() for span in spans] if as_refs else spans


def round_robin_assignment(blocks, n_ranks: int):
    """Deal blocks to ranks round-robin (the ablation's strawman).

    Counts stay balanced but every rank touches nearly every bin file,
    maximizing opens and cross-rank contention on the same files.
    Accepts the same inputs as :func:`column_order_assignment`.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    work, as_refs = _as_block_list(blocks)
    ordered = work.lexsorted()
    spans = [
        ordered.take(np.arange(rank, len(ordered), n_ranks, dtype=np.int64))
        for rank in range(n_ranks)
    ]
    return [span.to_refs() for span in spans] if as_refs else spans


def weighted_bin_partition(weights: np.ndarray, n_shards: int) -> np.ndarray:
    """Partition bins into ``n_shards`` contiguous ranges of near-equal
    total weight.

    The shard-level extension of the column-order idea: a shard owns a
    *contiguous* range of bin ids — every bin subfile lives in exactly
    one shard and a narrow value-range query touches the fewest shards
    — while the ranges are cut where the cumulative weight (per-bin
    stored bytes in practice) crosses the ideal equal-share points, so
    shards carry comparable data volumes rather than comparable bin
    *counts* (equal-frequency binning balances element counts, not
    compressed bytes).

    Returns the ``n_shards + 1`` boundary array ``b``; shard ``s`` owns
    bins ``[b[s], b[s+1])``.  Boundaries are monotone and cover every
    bin; shards past the weight mass come out empty rather than the cut
    points going non-monotone.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError(f"weights must be a non-empty 1-D array, got {weights.shape}")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    n_bins = weights.size
    if n_shards >= n_bins:
        # One bin per shard, trailing shards empty.
        bounds = np.minimum(np.arange(n_shards + 1, dtype=np.int64), n_bins)
        return bounds
    cum = np.cumsum(weights)
    total = cum[-1]
    if total == 0:
        return _span_bounds(n_bins, n_shards)
    ideal = total * np.arange(1, n_shards, dtype=np.float64) / n_shards
    cuts = np.searchsorted(cum, ideal, side="left") + 1
    bounds = np.concatenate(([0], cuts, [n_bins])).astype(np.int64)
    # Weight-driven cuts can collide on one heavy bin; keep them
    # monotone (an empty shard beats splitting a bin).
    np.maximum.accumulate(bounds, out=bounds)
    np.minimum(bounds, n_bins, out=bounds)
    return bounds


def assignment_file_counts(assignment) -> np.ndarray:
    """Distinct bins (files) touched by each rank — the contention metric."""
    counts = []
    for rank_blocks in assignment:
        if isinstance(rank_blocks, BlockList):
            counts.append(int(np.unique(rank_blocks.bin_ids).size))
        else:
            counts.append(len({b.bin_id for b in rank_blocks}))
    return np.array(counts, dtype=np.int64)
