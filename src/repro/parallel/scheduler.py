"""Block-to-rank assignment policies for parallel query execution.

Section III-D of the paper: blocks selected for a query are assigned to
MPI processes in *column order* — equal counts per process, filling as
many blocks as possible from a single bin before moving to the next —
so that each process touches the fewest bin files and file contention
is minimized.  A round-robin policy is provided for the scheduling
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "BlockRef",
    "column_order_assignment",
    "round_robin_assignment",
    "assignment_file_counts",
]


@dataclass(frozen=True, order=True)
class BlockRef:
    """A unit of work for the executor: one chunk's data inside one bin.

    Attributes
    ----------
    bin_id:
        The value bin whose subfile holds this block.
    chunk_pos:
        Position of the chunk in the bin's on-disk (Hilbert) order.
    chunk_id:
        The global chunk identifier (row-major over the chunk grid).
    """

    bin_id: int
    chunk_pos: int
    chunk_id: int


def column_order_assignment(
    blocks: Sequence[BlockRef], n_ranks: int
) -> list[list[BlockRef]]:
    """Assign blocks to ranks in column (bin-major) order.

    Blocks are sorted by (bin, on-disk position) and split into
    ``n_ranks`` contiguous spans of near-equal length.  Contiguity in
    bin-major order means a rank's span crosses the fewest possible bin
    boundaries, i.e. it opens the fewest files — the paper's stated
    policy for minimizing I/O contention.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    ordered = sorted(blocks)
    return [list(span) for span in _near_equal_spans(ordered, n_ranks)]


def round_robin_assignment(
    blocks: Sequence[BlockRef], n_ranks: int
) -> list[list[BlockRef]]:
    """Deal blocks to ranks round-robin (the ablation's strawman).

    Counts stay balanced but every rank touches nearly every bin file,
    maximizing opens and cross-rank contention on the same files.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    ordered = sorted(blocks)
    out: list[list[BlockRef]] = [[] for _ in range(n_ranks)]
    for i, block in enumerate(ordered):
        out[i % n_ranks].append(block)
    return out


def _near_equal_spans(items: list, n_parts: int) -> list[list]:
    n = len(items)
    base, extra = divmod(n, n_parts)
    spans = []
    start = 0
    for part in range(n_parts):
        size = base + (1 if part < extra else 0)
        spans.append(items[start : start + size])
        start += size
    return spans


def assignment_file_counts(assignment: list[list[BlockRef]]) -> np.ndarray:
    """Distinct bins (files) touched by each rank — the contention metric."""
    return np.array(
        [len({b.bin_id for b in rank_blocks}) for rank_blocks in assignment],
        dtype=np.int64,
    )
