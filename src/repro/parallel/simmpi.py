"""Deterministic simulated MPI for the query engine.

The paper parallelizes data access with MPI/MPI-IO (Section III-D).
mpi4py is not available in this environment, so we substitute a
*deterministic* simulated communicator:

* SPMD sections run as a plain Python loop over ranks (``spmd``);
  CPU-bound work is measured per rank, and the executor reports the
  maximum over ranks (the parallel critical path).
* Collectives operate on *rank-indexed lists* (the value every rank
  would contribute) and charge a modeled communication cost: a
  binomial-tree latency term plus a bandwidth term on the payload,
  which is the standard first-order model for MPI collectives.

This keeps the reproduction's parallel behaviour — column-order block
assignment, per-rank I/O contention on shared OSTs, bitmap exchanges
for multi-variable queries — faithful to the paper while staying
single-process and fully reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["CommCostModel", "SimCommunicator", "spmd", "payload_nbytes"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class CommCostModel:
    """First-order cost model for collective communication.

    ``latency`` is the per-hop message latency (alpha); ``byte_time`` is
    the inverse interconnect bandwidth (beta).  A collective over *P*
    ranks moving *B* total payload bytes costs
    ``ceil(log2 P) * latency + B * byte_time``.
    Defaults model a 2012-era InfiniBand fabric (~2 us, ~3 GB/s).
    """

    latency: float = 2e-6
    byte_time: float = 1.0 / 3e9

    def collective_seconds(self, size: int, total_bytes: int) -> float:
        if size <= 1:
            return 0.0
        hops = math.ceil(math.log2(size))
        return hops * self.latency + total_bytes * self.byte_time


def payload_nbytes(obj: object) -> int:
    """Best-effort byte size of a collective payload element."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    # Fallback for objects exposing an nbytes attribute (e.g. bitmaps).
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return 64  # opaque Python object: count its envelope only


class SimCommunicator:
    """Simulated communicator over ``size`` ranks.

    All collectives are *vectorized*: the caller supplies the
    rank-indexed list of contributions and receives what the root (or
    all ranks) would see.  Communication seconds accumulate in
    :attr:`comm_seconds` and are added to the query's modeled response
    time by the executor.
    """

    def __init__(self, size: int, cost_model: CommCostModel | None = None) -> None:
        if size <= 0:
            raise ValueError(f"communicator size must be positive, got {size}")
        self.size = size
        self.cost_model = cost_model if cost_model is not None else CommCostModel()
        self.comm_seconds = 0.0

    def _check_contributions(self, per_rank: Sequence[object]) -> None:
        if len(per_rank) != self.size:
            raise ValueError(
                f"expected one contribution per rank ({self.size}), got {len(per_rank)}"
            )

    def _charge(self, total_bytes: int) -> None:
        self.comm_seconds += self.cost_model.collective_seconds(self.size, total_bytes)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def gather(self, per_rank: Sequence[T]) -> list[T]:
        """All ranks' contributions delivered to the root."""
        self._check_contributions(per_rank)
        self._charge(sum(payload_nbytes(x) for x in per_rank))
        return list(per_rank)

    def bcast(self, value: T) -> list[T]:
        """Root's value delivered to every rank (returned per-rank)."""
        self._charge(payload_nbytes(value) * max(self.size - 1, 0))
        return [value for _ in range(self.size)]

    def barrier(self) -> None:
        self._charge(0)

    def allreduce(self, per_rank: Sequence[T], op: Callable[[T, T], T]) -> T:
        """Reduce all contributions with ``op``; result visible to all."""
        self._check_contributions(per_rank)
        if not per_rank:
            raise ValueError("allreduce over an empty contribution list")
        total = sum(payload_nbytes(x) for x in per_rank)
        # reduce + broadcast phases
        self._charge(total)
        self._charge(payload_nbytes(per_rank[0]) * max(self.size - 1, 0))
        result = per_rank[0]
        for value in per_rank[1:]:
            result = op(result, value)
        return result

    def allgather(self, per_rank: Sequence[T]) -> list[T]:
        """Every rank receives every contribution."""
        self._check_contributions(per_rank)
        total = sum(payload_nbytes(x) for x in per_rank)
        self._charge(total * max(self.size - 1, 1))
        return list(per_rank)


def spmd(size: int, fn: Callable[[int], R]) -> list[R]:
    """Run ``fn(rank)`` for every rank in a deterministic loop.

    This is the SPMD section of a bulk-synchronous step: ranks do not
    interact inside ``fn`` (all exchange happens through
    :class:`SimCommunicator` collectives between sections), so a
    sequential loop is an exact execution of the parallel program.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    return [fn(rank) for rank in range(size)]
