"""Simulated MPI and parallel scheduling substrate.

Replaces the paper's MPI/MPI-IO layer with a deterministic simulated
communicator (DESIGN.md §2) and implements the column-order block
assignment policy of Section III-D.
"""

from repro.parallel.scheduler import (
    BlockList,
    BlockRef,
    assignment_file_counts,
    column_order_assignment,
    round_robin_assignment,
)
from repro.parallel.simmpi import CommCostModel, SimCommunicator, payload_nbytes, spmd

__all__ = [
    "BlockList",
    "BlockRef",
    "CommCostModel",
    "SimCommunicator",
    "assignment_file_counts",
    "column_order_assignment",
    "payload_nbytes",
    "round_robin_assignment",
    "spmd",
]
