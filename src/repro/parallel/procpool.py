"""Shared-nothing process pool for the ``processes`` backends.

The ``threads`` decode/encode backends cannot beat serial on
CPU-bound codec work — the GIL serializes most of the fan-out
(``results/BENCH_perf_smoke.json``'s 0.94-0.99x rows).  This module
provides the GIL-free alternative: a persistent pool of **spawned**
worker processes that never share live objects with the parent.

The backend rule (DESIGN.md "Shared-nothing process backend"):

* Work travels as **picklable specs** — tagged tuples carrying a codec
  *name* plus its constructor params and the raw payload bytes, never
  codec instances, file handles, or closures.  Workers rebuild codecs
  through the ordinary :func:`~repro.compression.base.make_codec`
  registry and memoize them per ``(name, params)``.
* Results are committed by the **parent** in deterministic plan/table
  order, so output stays bit-identical to the ``serial`` backend for
  any worker count.
* A dying worker breaks the whole pool (shared-nothing means no
  work-stealing recovery inside a batch); the pool resets itself and
  raises :class:`PoolBrokenError` so callers re-run the batch inline.
  Nothing hangs, nothing is dropped.

Spawn (not fork) is used deliberately: it is the start method that
works everywhere, and it is the one that flushes out unpicklable codec
state (ISABELA's design-matrix lock) — the codec picklability audit in
``tests/test_codec_pickle.py`` enforces the contract this module
relies on.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

__all__ = [
    "AUTO_PROCESS_MIN_BYTES",
    "PoolBrokenError",
    "ProcessPool",
    "run_task",
    "get_pool",
    "shutdown_pools",
]

#: Minimum raw bytes of decode/encode work for ``backend="auto"`` to
#: pick the process pool over inline execution.  Below this the
#: per-task pickle + dispatch overhead outweighs GIL-free codec work
#: (the ``threads`` backend's <1x smoke rows are the cautionary tale);
#: the threshold is roughly four paper-scale compression blocks
#: (docs/tuning.md "Process backend and sharding").
AUTO_PROCESS_MIN_BYTES = 4 << 20


class PoolBrokenError(RuntimeError):
    """The worker pool died mid-batch (a worker process exited).

    The pool has already been reset when this is raised; the caller is
    expected to fall back to inline execution for the affected batch
    and may keep submitting to the (fresh) pool afterwards.
    """


# ----------------------------------------------------------------------
# Worker side: spec interpreter.  Everything here must be importable in
# a spawned child, so heavyweight imports stay inside the functions.
# ----------------------------------------------------------------------

#: Per-process codec cache keyed by ``(name, params_items)``; workers
#: are shared-nothing, so no locking is needed.
_WORKER_CODECS: dict = {}


def _worker_codec(name: str, params_items: tuple):
    codec = _WORKER_CODECS.get((name, params_items))
    if codec is None:
        from repro.compression import make_codec

        codec = make_codec(name, **dict(params_items))
        _WORKER_CODECS[(name, params_items)] = codec
    return codec


def run_task(task: tuple):
    """Execute one ``(spec, payload)`` decode/encode task.

    Spec forms (all fields picklable by construction):

    * ``("index", counts)`` + payload bytes — decode a position-index
      block into the flat int64 position array.
    * ``("bytes", name, params, raw_len)`` + payload bytes — byte-codec
      decode into a uint8 array (PLoD byte planes).
    * ``("float", name, params, count)`` + payload bytes — float-codec
      decode into a float64 array (whole-value layouts).
    * ``("encode-data", name, params)`` + raw array — codec encode of
      one compression block.
    * ``("encode-index", level)`` + parts list — position-index block
      encode.
    * ``("__crash__",)`` — test hook: kill this worker immediately, to
      exercise the broken-pool fallback path.

    This function also serves as the parent-side inline fallback when
    the pool breaks, so spec semantics exist in exactly one place.
    """
    spec, payload = task
    kind = spec[0]
    if kind == "index":
        from repro.index.binindex import decode_position_block_flat

        return decode_position_block_flat(payload, spec[1])
    if kind == "bytes":
        import numpy as np

        _, name, params, raw_len = spec
        codec = _worker_codec(name, params)
        return np.frombuffer(codec.decode(payload, raw_len), dtype=np.uint8)
    if kind == "float":
        _, name, params, count = spec
        return _worker_codec(name, params).decode(payload, count)
    if kind == "encode-data":
        _, name, params = spec
        return _worker_codec(name, params).encode(payload)
    if kind == "encode-index":
        from repro.index.binindex import encode_position_block

        return encode_position_block(payload, spec[1])
    if kind == "__crash__":
        os._exit(1)
    raise ValueError(f"unknown task spec kind {kind!r}")


# ----------------------------------------------------------------------
# Parent side: persistent pool with ordered results and reset-on-break.
# ----------------------------------------------------------------------
class ProcessPool:
    """A persistent spawn-based worker pool running :func:`run_task`.

    Workers are created lazily on first use and reused across queries
    and writes (spawning is expensive: each worker re-imports the
    package).  Results always come back in submission order, which is
    what pins the deterministic commit order of both backends.
    """

    def __init__(self, workers: int) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        #: Batches that died on a broken pool since creation.
        self.broken_batches = 0

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._executor

    def _reset(self) -> None:
        executor, self._executor = self._executor, None
        self.broken_batches += 1
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def submit(self, task: tuple) -> Future:
        """Submit one task; raises :class:`PoolBrokenError` on a dead pool."""
        try:
            return self._ensure().submit(run_task, task)
        except BrokenProcessPool as exc:
            self._reset()
            raise PoolBrokenError(str(exc)) from exc

    def resolve(self, future: Future):
        """Wait for one submitted task, normalizing pool death.

        Task-level exceptions (e.g. a corrupt payload's
        :class:`~repro.compression.base.CodecDecodeError`) propagate
        unchanged, exactly as inline execution would raise them.
        """
        try:
            return future.result()
        except BrokenProcessPool as exc:
            self._reset()
            raise PoolBrokenError(str(exc)) from exc

    def run_tasks(self, tasks: list[tuple]) -> list:
        """Run ``tasks`` on the pool, results in submission order."""
        futures = [self.submit(task) for task in tasks]
        return [self.resolve(future) for future in futures]

    def shutdown(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


#: Process-wide pools keyed by worker count, so repeated queries (and
#: every shard of a :class:`~repro.core.sharded.ShardedMLOCStore`)
#: share one set of warm workers per width.
_POOLS: dict[int, ProcessPool] = {}
_ATEXIT_REGISTERED = False


def get_pool(workers: int) -> ProcessPool:
    """The shared persistent pool of the given width (lazily created).

    The atexit shutdown hook is registered here, on first use, rather
    than at module import: importing ``repro`` must stay side-effect
    free (embedders that never touch the process backend get no hook),
    and first-use registration orders the hook *after* any hooks the
    host application registered before creating a pool — so ours runs
    first at exit, while worker processes are still join-able.
    """
    global _ATEXIT_REGISTERED
    pool = _POOLS.get(workers)
    if pool is None:
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_pools)
            _ATEXIT_REGISTERED = True
        pool = ProcessPool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every shared pool (atexit hook; also used by tests)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()
