"""FastBit baseline: binned WAH bitmap indexing.

FastBit (Wu, 2005) answers value-constrained queries with per-bin
bitmaps compressed by the word-aligned-hybrid scheme.  Two properties
drive its behaviour in the paper's experiments (Section IV-C2):

* the binned bitmap index is *large* — with precision binning it was
  10 GB for 8 GB of raw data (Table I) — because fine binning
  fragments the bitmaps into mostly-literal words;
* FastBit assumes the index resides in memory; under the paper's
  cold-cache methodology the **entire index must be loaded from disk
  for every query**, which dominates and flattens its response time
  across selectivities and even across query types (Tables II/III).

This implementation reproduces both mechanisms: the index is a single
concatenated file of per-bin WAH bitmaps (default 1024 "precision"
bins), read in full at query start by the parallel ranks; candidate
(boundary-bin) positions are then verified against the raw data file.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineStore
from repro.binning.binner import BinScheme
from repro.binning.boundaries import equal_frequency_boundaries
from repro.baselines.seqscan import region_runs
from repro.core.chunking import normalize_region
from repro.core.result import ComponentTimes, QueryResult
from repro.index.bitmap import (
    groups_to_bitmap,
    wah_expand_groups,
    wah_from_positions,
)
from repro.pfs.layout import aggregate_parallel_time
from repro.pfs.simfs import SimulatedPFS
from repro.util.timing import TimerRegistry

__all__ = ["FastBitStore"]


class FastBitStore(BaselineStore):
    """Binned WAH-bitmap index over row-major raw data."""

    name = "FastBit"

    def __init__(
        self,
        fs: SimulatedPFS,
        root: str,
        shape: tuple[int, ...],
        scheme: BinScheme,
        bitmap_offsets: np.ndarray,
        n_ranks: int = 8,
    ) -> None:
        self.fs = fs
        self.root = root.rstrip("/")
        self._shape = tuple(int(s) for s in shape)
        self.scheme = scheme
        #: Byte offsets of each bin's WAH payload in the index file
        #: (length n_bins + 1).
        self.bitmap_offsets = bitmap_offsets
        self.n_ranks = int(n_ranks)
        self.n_elements = int(np.prod(self._shape))

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        fs: SimulatedPFS,
        root: str,
        data: np.ndarray,
        n_bins: int = 1024,
        n_ranks: int = 8,
        seed: int = 0,
    ) -> "FastBitStore":
        """Index ``data`` with ``n_bins`` precision bins.

        The default bin count models FastBit's precision binning on
        double-precision data (the paper's best-response-time variant),
        which produces the large index footprint of Table I.
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        root = root.rstrip("/")
        flat = data.reshape(-1)
        rng = np.random.default_rng(seed)
        n_sample = min(flat.size, max(n_bins * 16, int(flat.size * 0.01)))
        sample = flat[rng.integers(0, flat.size, size=n_sample)]
        scheme = BinScheme(equal_frequency_boundaries(sample, n_bins))
        bin_ids = scheme.assign(flat)

        payloads: list[bytes] = []
        order = np.argsort(bin_ids, kind="stable")
        counts = np.bincount(bin_ids, minlength=n_bins)
        offsets = np.zeros(n_bins + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        for b in range(n_bins):
            members = order[offsets[b] : offsets[b + 1]]
            payloads.append(wah_from_positions(members, flat.size).tobytes())

        byte_offsets = np.zeros(n_bins + 1, dtype=np.int64)
        np.cumsum([len(p) for p in payloads], out=byte_offsets[1:])
        fs.write_file(f"{root}/index", b"".join(payloads))
        fs.write_file(f"{root}/data", data.tobytes())
        return cls(fs, root, data.shape, scheme, byte_offsets, n_ranks=n_ranks)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def data_path(self) -> str:
        return f"{self.root}/data"

    @property
    def index_path(self) -> str:
        return f"{self.root}/index"

    def storage_bytes(self) -> dict[str, int]:
        return {
            "data": self.fs.size(self.data_path),
            "index": self.fs.size(self.index_path),
        }

    # ------------------------------------------------------------------
    def _load_full_index(
        self,
    ) -> tuple[bytes, list, list[TimerRegistry]]:
        """Cold read of the complete index file, split across ranks."""
        total = self.fs.size(self.index_path)
        span = (total + self.n_ranks - 1) // self.n_ranks
        sessions = []
        chunks: list[bytes] = []
        for rank in range(self.n_ranks):
            session = self.fs.session()
            start = rank * span
            end = min(start + span, total)
            if start < end:
                chunks.append(session.open(self.index_path).read(start, end - start))
            sessions.append(session)
        return b"".join(chunks), sessions, [TimerRegistry() for _ in sessions]

    def region_query(self, value_range: tuple[float, float]) -> QueryResult:
        lo, hi = value_range
        index_bytes, sessions, timers = self._load_full_index()
        root_timer = timers[0]

        bin_ids, aligned = self.scheme.bins_overlapping(float(lo), float(hi))
        # OR the selected bins in the compact 63-bit-group domain, as a
        # real WAH query engine does, expanding to positions only once.
        n_groups = (self.n_elements + 62) // 63
        hits = np.zeros(n_groups, dtype=np.uint64)
        candidates_acc = np.zeros(n_groups, dtype=np.uint64)
        with root_timer["decompression"]:
            for b, is_aligned in zip(bin_ids, aligned):
                payload = index_bytes[
                    self.bitmap_offsets[b] : self.bitmap_offsets[b + 1]
                ]
                groups = wah_expand_groups(np.frombuffer(payload, dtype=np.uint64))
                if is_aligned:
                    hits |= groups
                else:
                    candidates_acc |= groups

        pos_parts: list[np.ndarray] = []
        with root_timer["reconstruction"]:
            if hits.any():
                pos_parts.append(groups_to_bitmap(hits, self.n_elements).to_positions())

        # Candidate check: boundary bins require reading the raw values.
        if candidates_acc.any():
            with root_timer["reconstruction"]:
                candidates = groups_to_bitmap(
                    candidates_acc, self.n_elements
                ).to_positions()
            verified = self._verify_candidates(candidates, lo, hi, sessions[0], root_timer)
            pos_parts.append(verified)

        positions = (
            np.sort(np.concatenate(pos_parts)) if pos_parts else np.empty(0, dtype=np.int64)
        )
        cpu_scale = self.fs.cost_model.effective_cpu_scale
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, sessions),
            decompression=cpu_scale * root_timer.elapsed("decompression"),
            reconstruction=cpu_scale * root_timer.elapsed("reconstruction"),
        )
        stats = {
            "bytes_read": int(sum(s.stats.bytes_read for s in sessions)),
            "index_bytes": len(index_bytes),
            "n_results": int(positions.size),
        }
        return QueryResult(positions=positions, values=None, times=times, stats=stats)

    def _verify_candidates(
        self,
        candidates: np.ndarray,
        lo: float,
        hi: float,
        session,
        timers: TimerRegistry,
    ) -> np.ndarray:
        """Read candidate positions (merged into runs) and filter."""
        if candidates.size == 0:
            return candidates
        handle = session.open(self.data_path)
        # Merge candidates into page-granular read runs: FastBit reads
        # the candidate *pages*, trading extra sequential bytes for
        # seeks.  The tolerance is one stripe worth of elements.
        page_elements = max(self.fs.cost_model.stripe_size // 8, 1)
        gaps = np.flatnonzero(np.diff(candidates) > page_elements)
        run_starts = np.concatenate(([0], gaps + 1))
        run_ends = np.concatenate((gaps + 1, [candidates.size]))
        keep: list[np.ndarray] = []
        for s, e in zip(run_starts, run_ends):
            first, last = int(candidates[s]), int(candidates[e - 1])
            raw = handle.read(first * 8, (last - first + 1) * 8)
            with timers["reconstruction"]:
                vals = np.frombuffer(raw, dtype=np.float64)
                local = candidates[s:e] - first
                v = vals[local]
                ok = (v >= lo) & (v <= hi)
                keep.append(candidates[s:e][ok])
        return np.concatenate(keep) if keep else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def value_query(self, region) -> QueryResult:
        """Value retrieval under SC: the index is still loaded in full
        (the paper observes FastBit's value-query time tracks its
        region-query time for exactly this reason), then the region's
        runs are read from the raw data."""
        region = normalize_region(region, self._shape)
        index_bytes, sessions, timers = self._load_full_index()
        root_timer = timers[0]

        starts, run_length = region_runs(self._shape, region)
        handle = sessions[0].open(self.data_path)
        pos_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        for start in starts:
            raw = handle.read(int(start) * 8, run_length * 8)
            with root_timer["reconstruction"]:
                val_parts.append(np.frombuffer(raw, dtype=np.float64))
                pos_parts.append(
                    np.arange(start, start + run_length, dtype=np.int64)
                )
        positions = (
            np.concatenate(pos_parts) if pos_parts else np.empty(0, dtype=np.int64)
        )
        values = (
            np.concatenate(val_parts) if val_parts else np.empty(0, dtype=np.float64)
        )
        cpu_scale = self.fs.cost_model.effective_cpu_scale
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, sessions),
            decompression=cpu_scale * root_timer.elapsed("decompression"),
            reconstruction=cpu_scale * root_timer.elapsed("reconstruction"),
        )
        stats = {
            "bytes_read": int(sum(s.stats.bytes_read for s in sessions)),
            "index_bytes": len(index_bytes),
            "n_results": int(positions.size),
        }
        return self._sorted_result(positions, values, times, stats)
