"""Sequential-scan baseline.

The paper's naive comparator: the array is linearized row-major in a
single file on the PFS.  Value-constrained (region) queries must read
and filter the *entire* dataset; spatially-constrained (value) queries
compute the file offsets of the contiguous runs inside the region and
read only those — which is why sequential scan is terrible in
Tables II/IV but competitive in Tables III/V.

The scan is given the same rank-level parallelism as MLOC (the paper
used 8 cores for every system): ranks read disjoint contiguous spans
of the file, so OST contention is modeled identically.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineStore
from repro.core.chunking import normalize_region
from repro.core.result import ComponentTimes, QueryResult
from repro.pfs.layout import aggregate_parallel_time
from repro.pfs.simfs import SimulatedPFS
from repro.util.timing import TimerRegistry

__all__ = ["SeqScanStore", "region_runs"]


def region_runs(shape: tuple[int, ...], region) -> tuple[np.ndarray, int]:
    """Contiguous row-major runs covering a region.

    Returns ``(starts, run_length)``: the global positions at which
    each run begins and the (uniform) run length.  Runs that are
    adjacent in linear order (region spans the full final axes) are
    merged by construction because the run length then multiplies up.
    """
    region = normalize_region(region, shape)
    ndims = len(shape)
    strides = [int(np.prod(shape[d + 1 :])) for d in range(ndims)]
    # Find the longest suffix of axes fully covered by the region: runs
    # extend contiguously across those axes.
    run_axes = ndims
    run_length = 1
    partial_axis = None  # innermost axis not fully covered by the region
    for d in range(ndims - 1, -1, -1):
        lo, hi = region[d]
        run_length *= hi - lo
        run_axes = d
        if not (lo == 0 and hi == shape[d]):
            partial_axis = d
            break
    base = 0 if partial_axis is None else region[partial_axis][0] * strides[partial_axis]
    outer = region[:run_axes]
    if not outer:
        return np.array([base], dtype=np.int64), run_length
    axes = [np.arange(lo, hi, dtype=np.int64) for lo, hi in outer]
    mesh = np.meshgrid(*axes, indexing="ij")
    starts = np.full(mesh[0].size, base, dtype=np.int64)
    for d in range(run_axes):
        starts += mesh[d].reshape(-1) * strides[d]
    return starts, run_length


class SeqScanStore(BaselineStore):
    """Row-major raw storage with brute-force scans."""

    name = "Seq. Scan"

    def __init__(
        self, fs: SimulatedPFS, path: str, shape: tuple[int, ...], n_ranks: int = 8
    ) -> None:
        self.fs = fs
        self.path = path
        self._shape = tuple(int(s) for s in shape)
        self.n_ranks = int(n_ranks)
        self.n_elements = int(np.prod(self._shape))

    @classmethod
    def build(
        cls, fs: SimulatedPFS, path: str, data: np.ndarray, n_ranks: int = 8
    ) -> "SeqScanStore":
        data = np.ascontiguousarray(data, dtype=np.float64)
        fs.write_file(path, data.tobytes())
        return cls(fs, path, data.shape, n_ranks=n_ranks)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    def storage_bytes(self) -> dict[str, int]:
        return {"data": self.fs.size(self.path), "index": 0}

    # ------------------------------------------------------------------
    def region_query(self, value_range: tuple[float, float]) -> QueryResult:
        """Full scan + filter."""
        lo, hi = value_range
        stripe = self.fs.cost_model.stripe_size
        total_bytes = self.n_elements * 8
        span = (total_bytes + self.n_ranks - 1) // self.n_ranks
        # Align rank spans to whole elements.
        span -= span % 8

        sessions = []
        timers_per_rank = []
        parts: list[np.ndarray] = []
        for rank in range(self.n_ranks):
            session = self.fs.session()
            timers = TimerRegistry()
            start = rank * span
            end = min(start + span, total_bytes) if rank < self.n_ranks - 1 else total_bytes
            if start >= end:
                sessions.append(session)
                timers_per_rank.append(timers)
                continue
            handle = session.open(self.path)
            offset = start
            while offset < end:
                length = min(stripe, end - offset)
                raw = handle.read(offset, length)
                with timers["reconstruction"]:
                    vals = np.frombuffer(raw, dtype=np.float64)
                    local = np.flatnonzero((vals >= lo) & (vals <= hi))
                    if local.size:
                        parts.append(local + offset // 8)
                offset += length
            sessions.append(session)
            timers_per_rank.append(timers)

        positions = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, sessions),
            reconstruction=self.fs.cost_model.effective_cpu_scale
            * max(t.elapsed("reconstruction") for t in timers_per_rank),
        )
        stats = {
            "bytes_read": int(sum(s.stats.bytes_read for s in sessions)),
            "seeks": int(sum(s.stats.seeks for s in sessions)),
            "n_results": int(positions.size),
        }
        return QueryResult(
            positions=np.sort(positions), values=None, times=times, stats=stats
        )

    # ------------------------------------------------------------------
    def value_query(self, region) -> QueryResult:
        """Offset-computed reads of the runs inside the region."""
        starts, run_length = region_runs(self._shape, region)
        # Distribute runs over ranks in contiguous spans.
        spans = np.array_split(np.arange(starts.size), self.n_ranks)

        sessions = []
        timers_per_rank = []
        pos_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        for rank_runs_idx in spans:
            session = self.fs.session()
            timers = TimerRegistry()
            if rank_runs_idx.size:
                handle = session.open(self.path)
                for i in rank_runs_idx:
                    start = int(starts[i])
                    raw = handle.read(start * 8, run_length * 8)
                    with timers["reconstruction"]:
                        vals = np.frombuffer(raw, dtype=np.float64)
                        pos_parts.append(
                            np.arange(start, start + run_length, dtype=np.int64)
                        )
                        val_parts.append(vals)
            sessions.append(session)
            timers_per_rank.append(timers)

        positions = (
            np.concatenate(pos_parts) if pos_parts else np.empty(0, dtype=np.int64)
        )
        values = (
            np.concatenate(val_parts) if val_parts else np.empty(0, dtype=np.float64)
        )
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, sessions),
            reconstruction=self.fs.cost_model.effective_cpu_scale
            * max(t.elapsed("reconstruction") for t in timers_per_rank),
        )
        stats = {
            "bytes_read": int(sum(s.stats.bytes_read for s in sessions)),
            "seeks": int(sum(s.stats.seeks for s in sessions)),
            "n_results": int(positions.size),
        }
        return self._sorted_result(positions, values, times, stats)
