"""Shared baseline-store interface.

The paper compares MLOC against sequential scan, FastBit, and SciDB on
the same two access patterns: value-constrained region queries and
spatially-constrained value queries.  Every baseline implements this
interface so the benchmark harness can treat all systems uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.result import QueryResult

__all__ = ["BaselineStore"]


class BaselineStore(ABC):
    """A queryable baseline over one variable on the simulated PFS."""

    #: Display name used by the harness tables.
    name: str = "baseline"

    @property
    @abstractmethod
    def shape(self) -> tuple[int, ...]:
        """Shape of the stored array."""

    @abstractmethod
    def storage_bytes(self) -> dict[str, int]:
        """Storage accounting: ``{"data": ..., "index": ...}`` bytes."""

    @abstractmethod
    def region_query(self, value_range: tuple[float, float]) -> QueryResult:
        """Value-constrained region-only access: positions of points
        whose value lies in the closed range."""

    @abstractmethod
    def value_query(self, region: tuple[tuple[int, int], ...]) -> QueryResult:
        """Spatially-constrained value retrieval: values (and
        positions) of all points inside the region."""

    # ------------------------------------------------------------------
    @staticmethod
    def _sorted_result(
        positions: np.ndarray, values: np.ndarray | None, times, stats
    ) -> QueryResult:
        order = np.argsort(positions, kind="stable")
        return QueryResult(
            positions=positions[order],
            values=values[order] if values is not None else None,
            times=times,
            stats=stats,
        )
