"""Comparator systems of the paper's evaluation (Section IV-A2):
sequential scan, FastBit (binned WAH bitmaps), and SciDB (overlap-
replicated chunk store)."""

from repro.baselines.common import BaselineStore
from repro.baselines.fastbit import FastBitStore
from repro.baselines.scidb import SciDBStore
from repro.baselines.seqscan import SeqScanStore, region_runs

__all__ = [
    "BaselineStore",
    "FastBitStore",
    "SciDBStore",
    "SeqScanStore",
    "region_runs",
]
