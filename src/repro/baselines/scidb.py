"""SciDB-like baseline: overlap-replicated chunked array storage.

SciDB (Brown, SIGMOD 2010) stores multidimensional arrays as regular
chunks and answers sub-volume (spatially-constrained) accesses by
reading the covering chunks; to avoid reading neighbour chunks for
window operations it *replicates data along chunk boundaries*, which is
why its footprint exceeds the raw data in Table I (8.8 GB for 8 GB).

Three mechanisms drive its query behaviour in the paper:

* value-constrained queries have no value index to use — **every chunk
  is scanned**;
* every scanned byte passes through the storage-manager/executor
  stack, whose effective processing rate is far below raw streaming
  (the paper measured SciDB an order of magnitude slower than a plain
  sequential scan over the same bytes: 206.8 s vs 19.2 s for the 8 GB
  GTS region query implies ~45 MB/s end-to-end);
* each query pays a fixed coordinator/chunk-map startup cost (visible
  as the ~29 s floor of the 0.1% GTS value query in Table III).

The processing rate and startup cost cannot be reproduced
mechanistically in a simulator, so they are explicit modeled constants
(``scan_bandwidth``, ``startup_seconds``) calibrated from the paper's
own measurements as derived above; see DESIGN.md §2.  I/O (chunk
reads, seeks, striping) is fully simulated like every other system,
and the modeled processing applies to paper-scale-equivalent bytes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineStore
from repro.core.chunking import ChunkGrid, normalize_region
from repro.core.result import ComponentTimes, QueryResult
from repro.pfs.layout import aggregate_parallel_time
from repro.pfs.simfs import SimulatedPFS
from repro.util.timing import TimerRegistry

__all__ = ["SciDBStore"]


class SciDBStore(BaselineStore):
    """Chunked storage with boundary overlap and modeled executor cost."""

    name = "SciDB"

    def __init__(
        self,
        fs: SimulatedPFS,
        path: str,
        grid: ChunkGrid,
        overlap: int,
        chunk_offsets: np.ndarray,
        stored_shapes: list[tuple[int, ...]],
        scan_bandwidth: float,
        startup_seconds: float,
        n_ranks: int = 8,
    ) -> None:
        self.fs = fs
        self.path = path
        self.grid = grid
        self.overlap = overlap
        self.chunk_offsets = chunk_offsets
        self.stored_shapes = stored_shapes
        self.scan_bandwidth = scan_bandwidth
        self.startup_seconds = startup_seconds
        self.n_ranks = int(n_ranks)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        fs: SimulatedPFS,
        path: str,
        data: np.ndarray,
        chunk_shape: tuple[int, ...],
        overlap: int = 2,
        scan_bandwidth: float = 45e6,
        startup_seconds: float = 12.0,
        n_ranks: int = 8,
    ) -> "SciDBStore":
        data = np.ascontiguousarray(data, dtype=np.float64)
        grid = ChunkGrid(data.shape, chunk_shape)
        payloads: list[bytes] = []
        stored_shapes: list[tuple[int, ...]] = []
        for cid in range(grid.n_chunks):
            slices = grid.chunk_slices(cid)
            extended = tuple(
                slice(max(s.start - overlap, 0), min(s.stop + overlap, dim))
                for s, dim in zip(slices, data.shape)
            )
            block = np.ascontiguousarray(data[extended])
            stored_shapes.append(block.shape)
            payloads.append(block.tobytes())
        offsets = np.zeros(grid.n_chunks + 1, dtype=np.int64)
        np.cumsum([len(p) for p in payloads], out=offsets[1:])
        fs.write_file(path, b"".join(payloads))
        return cls(
            fs,
            path,
            grid,
            overlap,
            offsets,
            stored_shapes,
            scan_bandwidth,
            startup_seconds,
            n_ranks=n_ranks,
        )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.grid.shape

    def storage_bytes(self) -> dict[str, int]:
        return {"data": self.fs.size(self.path), "index": 0}

    # ------------------------------------------------------------------
    def _chunk_core(self, cid: int, block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Extract the non-overlap core of a stored chunk with its
        global positions."""
        slices = self.grid.chunk_slices(cid)
        stored_lo = [max(s.start - self.overlap, 0) for s in slices]
        core = tuple(
            slice(s.start - lo, s.stop - lo) for s, lo in zip(slices, stored_lo)
        )
        values = block[core].reshape(-1)
        local = np.arange(values.size, dtype=np.int64)
        positions = self.grid.global_positions(cid, local)
        return positions, values

    def _scan_chunks(
        self, chunk_ids: np.ndarray
    ) -> tuple[list[tuple[int, np.ndarray]], ComponentTimes, dict]:
        """Read the given chunks, modeling the executor processing cost.

        SciDB's 2011-era storage manager streams a scan through one
        coordinator, so reads are charged to a single session; every
        scanned byte additionally passes the modeled executor stack at
        ``scan_bandwidth``, and the query pays the coordinator startup
        once.
        """
        session = self.fs.session()
        timers = TimerRegistry()
        blocks: list[tuple[int, np.ndarray]] = []
        bytes_processed = 0
        if chunk_ids.size:
            handle = session.open(self.path)
            for cid in chunk_ids:
                cid = int(cid)
                offset = int(self.chunk_offsets[cid])
                length = int(self.chunk_offsets[cid + 1] - offset)
                raw = handle.read(offset, length)
                bytes_processed += length
                with timers["reconstruction"]:
                    block = np.frombuffer(raw, dtype=np.float64).reshape(
                        self.stored_shapes[cid]
                    )
                    blocks.append((cid, block))
        executor_cost = (
            self.startup_seconds
            + self.fs.cost_model.scaled_bytes(bytes_processed) / self.scan_bandwidth
        )
        # Measured NumPy seconds are NOT cpu-scaled here: the modeled
        # executor cost already covers the full processing stack (it
        # was derived from the paper's end-to-end rates).
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, [session]),
            reconstruction=timers.elapsed("reconstruction") + executor_cost,
        )
        stats = {
            "bytes_read": session.stats.bytes_read,
            "seeks": session.stats.seeks,
            "chunks_scanned": int(chunk_ids.size),
        }
        return blocks, times, stats

    # ------------------------------------------------------------------
    def region_query(self, value_range: tuple[float, float]) -> QueryResult:
        """No value index: scan every chunk and filter."""
        lo, hi = value_range
        chunk_ids = np.arange(self.grid.n_chunks, dtype=np.int64)
        blocks, times, stats = self._scan_chunks(chunk_ids)
        parts: list[np.ndarray] = []
        timers = TimerRegistry()
        with timers["reconstruction"]:
            for cid, block in blocks:
                positions, values = self._chunk_core(cid, block)
                mask = (values >= lo) & (values <= hi)
                if mask.any():
                    parts.append(positions[mask])
        positions = (
            np.sort(np.concatenate(parts)) if parts else np.empty(0, dtype=np.int64)
        )
        times.reconstruction += timers.elapsed("reconstruction")
        stats["n_results"] = int(positions.size)
        return QueryResult(positions=positions, values=None, times=times, stats=stats)

    def value_query(self, region) -> QueryResult:
        """Read the covering chunks; filter their cores to the region."""
        region = normalize_region(region, self.grid.shape)
        chunk_ids = self.grid.chunks_overlapping(region)
        blocks, times, stats = self._scan_chunks(chunk_ids)
        pos_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        timers = TimerRegistry()
        with timers["reconstruction"]:
            for cid, block in blocks:
                positions, values = self._chunk_core(cid, block)
                mask = self.grid.positions_in_region(positions, region)
                pos_parts.append(positions[mask])
                val_parts.append(values[mask])
        positions = (
            np.concatenate(pos_parts) if pos_parts else np.empty(0, dtype=np.int64)
        )
        values = (
            np.concatenate(val_parts) if val_parts else np.empty(0, dtype=np.float64)
        )
        times.reconstruction += timers.elapsed("reconstruction")
        stats["n_results"] = int(positions.size)
        return self._sorted_result(positions, values, times, stats)
