"""One-command reproduction runner: ``python -m repro.bench``.

Regenerates the paper's tables and figures without pytest — handy for a
quick end-to-end reproduction or for scripting:

    python -m repro.bench                         # everything, default scale
    python -m repro.bench --experiments table1,table2 --datasets gts
    REPRO_SCALE=tiny python -m repro.bench --queries 3 --svg figs/

Row computations are shared with the pytest benchmark suite through
:mod:`repro.harness.experiments`, so both entry points always agree.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import format_rows, get_spec, get_suite, record_result
from repro.harness.experiments import (
    coalescing_rows,
    fault_tolerance_rows,
    fig6_rows,
    fig7_rows,
    fig8_rows,
    progressive_rows,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)

__all__ = ["main", "EXPERIMENTS"]

#: experiment id -> (size class, per-dataset?, header columns)
EXPERIMENTS = {
    "table1": ("8g", False, ["system", "data", "index", "total", "paper-total"]),
    "table2": ("8g", True, ["system", "1%", "10%", "paper-1%", "paper-10%"]),
    "table3": ("8g", True, ["system", "0.1%", "1%", "paper-0.1%", "paper-1%"]),
    "table4": ("512g", True, ["system", "1%", "10%", "paper-1%", "paper-10%"]),
    "table5": ("512g", True, ["system", "0.1%", "1%", "paper-0.1%", "paper-1%"]),
    "fig6": ("512g", False, ["system", "io", "decomp", "reconstruct", "total"]),
    "fig7": ("512g", False, ["ranks", "io", "decomp", "reconstruct", "total"]),
    "fig8": ("512g", False, ["level", "io", "decomp", "reconstruct", "total"]),
    "faults": (
        "8g",
        False,
        ["fault rate", "io+dec s", "crc", "retries", "quarantined", "degraded", "dropped"],
    ),
    "coalescing": ("8g", False, ["mode", "seeks", "bytes", "io+dec s"]),
    "progressive": (
        "8g",
        False,
        ["step", "session bytes", "fresh bytes", "cum reused"],
    ),
}

_TITLES = {
    "table1": "Table I - storage as fraction of raw ({ds})",
    "table2": "Table II - region query seconds, 8 GB-class {ds}",
    "table3": "Table III - value query seconds, 8 GB-class {ds}",
    "table4": "Table IV - region query seconds, 512 GB-class {ds}",
    "table5": "Table V - value query seconds, 512 GB-class {ds}",
    "fig6": "Fig 6 - components, 0.1% value queries, 512 GB-class {ds}",
    "fig7": "Fig 7 - scalability, 10% value queries, 512 GB-class {ds}",
    "fig8": "Fig 8 - PLoD access, 1% value queries, 512 GB-class {ds}",
    "faults": "Fault tolerance - 1% value queries under injected faults ({ds})",
    "coalescing": "Coalesced vectored I/O - 1% SC value queries at PLoD 3 ({ds})",
    "progressive": "Progressive refinement - session vs fresh per-level queries ({ds})",
}


def _compute(exp: str, suite, dataset: str, n_queries: int) -> dict:
    if exp == "table1":
        return table1_rows(suite)
    if exp == "table2":
        return table2_rows(suite, dataset, n_queries)
    if exp == "table3":
        return table3_rows(suite, dataset, n_queries)
    if exp == "table4":
        return table4_rows(suite, dataset, n_queries)
    if exp == "table5":
        return table5_rows(suite, dataset, n_queries)
    if exp == "fig6":
        return fig6_rows(suite, n_queries)
    if exp == "fig7":
        return fig7_rows(suite, n_queries)
    if exp == "fig8":
        return fig8_rows(suite, n_queries)
    if exp == "faults":
        return fault_tolerance_rows(suite, n_queries)
    if exp == "coalescing":
        return coalescing_rows(suite, n_queries)[0]
    if exp == "progressive":
        return progressive_rows(suite)[0]
    raise ValueError(f"unknown experiment {exp!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--experiments",
        default=",".join(EXPERIMENTS),
        help=f"comma-separated subset of: {','.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--datasets", default="gts,s3d", help="comma-separated: gts,s3d"
    )
    parser.add_argument(
        "--queries", type=int, default=5, help="random queries per cell"
    )
    parser.add_argument(
        "--svg", default=None, help="also render figure SVGs into this directory"
    )
    parser.add_argument(
        "--no-record", action="store_true", help="skip writing results/*.json"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    experiments = [e.strip() for e in args.experiments.split(",") if e.strip()]
    datasets = [d.strip() for d in args.datasets.split(",") if d.strip()]
    unknown = [e for e in experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    bad_ds = [d for d in datasets if d not in ("gts", "s3d")]
    if bad_ds:
        print(f"unknown datasets: {bad_ds}", file=sys.stderr)
        return 2

    for exp in experiments:
        size_class, per_dataset, header = EXPERIMENTS[exp]
        for dataset in datasets if per_dataset else datasets[:1]:
            suite = get_suite(get_spec(size_class, dataset))
            rows = _compute(exp, suite, dataset, args.queries)
            title = _TITLES[exp].format(ds=dataset.upper())
            print()
            print(format_rows(title, header, rows))
            if not args.no_record:
                suffix = f"_{dataset}" if per_dataset else ""
                record_result(f"bench_{exp}{suffix}", {"rows": rows})
            if args.svg and exp in ("fig6", "fig7", "fig8"):
                from pathlib import Path

                from repro.harness.svgplot import save_figure_svg

                out_dir = Path(args.svg)
                out_dir.mkdir(parents=True, exist_ok=True)
                save_figure_svg(
                    out_dir / f"{exp}_{dataset}.svg",
                    title,
                    {k: v[:3] for k, v in rows.items()},
                    ["io", "decompression", "reconstruction"],
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
