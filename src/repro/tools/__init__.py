"""Operational tools: store integrity checking (fsck) and layout
migration (relayout)."""

from repro.tools.fsck import Issue, check_store
from repro.tools.relayout import RelayoutReport, relayout

__all__ = ["Issue", "RelayoutReport", "check_store", "relayout"]
