"""Relayout: migrate a store to a different MLOC configuration.

The flexible multi-level architecture means the *right* layout depends
on the workload (Section III-A2); when the workload shifts — or the
advisor recommends a different order — an existing store can be
re-encoded without the original array: the store itself can produce
every value and position.

``relayout`` performs that migration: a full-domain, full-precision
read of the source store reconstructs the array (exact for lossless
codecs; within the ISABELA bound for lossy ones, in which case the
migration is flagged as approximate), which is then written through
the writer under the new configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MLOCConfig
from repro.core.query import Query
from repro.core.store import MLOCStore
from repro.core.writer import MLOCWriter, WriteReport
from repro.pfs.simfs import SimulatedPFS

__all__ = ["RelayoutReport", "relayout"]


@dataclass(frozen=True)
class RelayoutReport:
    """Outcome of one store migration."""

    write_report: WriteReport
    #: True when the source codec was lossy, so the migrated values are
    #: the source's approximations rather than the original array.
    approximate: bool
    source_order: str
    target_order: str


def relayout(
    fs: SimulatedPFS,
    source_root: str,
    variable: str,
    target_root: str,
    new_config: MLOCConfig,
    *,
    n_ranks: int = 8,
    write_backend: str = "serial",
    write_workers: int | None = None,
) -> RelayoutReport:
    """Re-encode ``source_root/variable`` under ``new_config``.

    Parameters
    ----------
    fs:
        The simulated PFS holding the source (and receiving the target).
    source_root, variable:
        The store to migrate.
    target_root:
        Root for the migrated store (must differ from the source root
        so a failed migration never damages the original).
    new_config:
        The target layout configuration.
    write_backend, write_workers:
        Write-pipeline execution options (see
        :class:`~repro.core.writer.MLOCWriter`); migrations are
        compression-dominated, so the threaded backend pays off first
        here.  The migrated bytes are identical either way.
    """
    if source_root.rstrip("/") == target_root.rstrip("/"):
        raise ValueError("target_root must differ from source_root")
    source = MLOCStore.open(fs, source_root, variable, n_ranks=n_ranks)
    if new_config.chunk_shape is not None:
        # Validate early: the new chunking must tile the same shape.
        from repro.core.chunking import ChunkGrid

        ChunkGrid(source.shape, new_config.chunk_shape)

    full = source.query(Query(output="values"))
    data = np.empty(source.n_elements, dtype=np.float64)
    data[full.positions] = full.values
    data = data.reshape(source.shape)

    writer = MLOCWriter(
        fs,
        target_root,
        new_config,
        write_backend=write_backend,
        write_workers=write_workers,
    )
    write_report = writer.write(data, variable=variable)

    from repro.compression.base import make_codec

    source_codec = make_codec(
        source.meta.config.codec, **source.meta.config.codec_params
    )
    return RelayoutReport(
        write_report=write_report,
        approximate=not source_codec.lossless,
        source_order=source.meta.config.level_order,
        target_order=new_config.level_order,
    )
