"""fsck: deep integrity checking of an MLOC store.

Walks every structural invariant of the on-disk layout — the contracts
between metadata, block tables, subfiles, codecs, and position indices
— and decodes every block.  Checks, per variable:

* metadata parses, is internally consistent, and its counts cover the
  array exactly;
* each bin's data/index block tables form a contiguous, non-overlapping
  partition of the cell/chunk space, with offsets matching the actual
  subfile bytes;
* every data block decompresses to exactly its recorded raw length;
* every index block decodes to position lists matching the per-chunk
  counts, with strictly increasing in-chunk-range local ids;
* across bins, each chunk's local ids partition ``{0..chunk_size-1}``
  exactly (every element in exactly one bin);
* decoded values actually fall inside their bin's value interval
  (within the lossy codec's error bound for ISABELA stores); for PLoD
  stores the values are first reassembled from all seven byte planes;
* when the hierarchical bitmap index file is present: it parses (CRC,
  version, geometry), its interior levels sum to their children, every
  leaf's WAH cardinality matches its tree node, and its per-(bin, run)
  counts agree with the metadata's chunk counts.

Returns a list of :class:`Issue` records; an empty list means the store
is sound.  Used by the CLI (``python -m repro.cli fsck``) and the test
suite's corruption-injection tests.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.compression.base import ByteCodec, make_codec
from repro.core.chunking import ChunkGrid
from repro.core.executor import _cell_sizes
from repro.core.manifest import (
    Manifest,
    ManifestError,
    load_manifest_at,
    manifest_generations,
    manifest_path,
)
from repro.core.meta import StoreMeta
from repro.index.binindex import decode_position_block
from repro.index.hbi import HBIndex, hbi_path
from repro.plod.bounds import ErrorBoundsTable, peb_path
from repro.pfs.layout import BinFileSet
from repro.pfs.simfs import SimulatedPFS

__all__ = ["Issue", "check_dataset", "check_store"]


@dataclass(frozen=True)
class Issue:
    """One detected inconsistency.

    ``kind`` classifies the failure so callers (the chaos tests, the
    CLI) can match fsck's view against the executor's quarantine
    registry: ``"crc-mismatch"`` is a payload whose stored CRC32 does
    not match its bytes, ``"decode-error"`` a payload that fails to
    decode, and ``"other"`` every structural inconsistency.  For the
    block-level kinds, ``path``/``offset`` name the damaged extent in
    the same coordinates the executor's quarantine keys use.
    Dataset-level checking (:func:`check_dataset`) adds
    ``"manifest-torn"`` (an unreadable manifest generation — the
    footprint of an interrupted commit) and ``"orphaned-member"`` (a
    member on disk that no manifest generation references — the
    footprint of a seal interrupted before its commit).
    """

    severity: str  # "error" | "warning"
    location: str
    message: str
    kind: str = "other"  # "crc-mismatch" | "decode-error" | "other"
    path: str | None = None
    offset: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}:{self.kind}] {self.location}: {self.message}"


def check_store(fs: SimulatedPFS, root: str, variable: str) -> list[Issue]:
    """Run every integrity check on ``root/variable``; see module doc."""
    issues: list[Issue] = []
    var_root = f"{root.rstrip('/')}/{variable}"
    meta_path = f"{var_root}/meta"
    if not fs.exists(meta_path):
        return [Issue("error", meta_path, "metadata file missing")]

    try:
        meta = StoreMeta.from_bytes(bytes(fs.session().open(meta_path).read_all()))
    except Exception as exc:
        return [Issue("error", meta_path, f"metadata unreadable: {exc}")]

    config = meta.config
    grid = ChunkGrid(meta.shape, config.chunk_shape)
    files = BinFileSet(var_root, config.n_bins)
    codec = make_codec(config.codec, **config.codec_params)
    n_chunks = meta.n_chunks
    if n_chunks != grid.n_chunks:
        issues.append(
            Issue(
                "error",
                meta_path,
                f"counts cover {n_chunks} chunks but the grid has {grid.n_chunks}",
            )
        )
        return issues

    n_cells = n_chunks * config.n_groups
    lossy_bound = None
    if config.codec == "isabela":
        lossy_bound = codec.error_rate  # relative to per-window max

    # Per-chunk accumulation of local ids across bins (coverage check).
    chunk_locals: list[list[np.ndarray]] = [[] for _ in range(n_chunks)]

    for b in range(config.n_bins):
        loc = f"bin {b:04d}"
        data_path, index_path = files.data_path(b), files.index_path(b)
        missing = False
        for path in (data_path, index_path):
            if not fs.exists(path):
                issues.append(Issue("error", loc, f"subfile missing: {path}"))
                missing = True
        if missing:
            continue

        issues += _check_table(
            meta.data_blocks[b], n_cells, fs.size(data_path), loc + " data table"
        )
        issues += _check_table(
            meta.index_blocks[b], n_chunks, fs.size(index_path), loc + " index table"
        )

        # Decode every data block.
        session = fs.session()
        handle = session.open(data_path)
        cell_sizes = _cell_sizes(config, meta.counts[b], n_chunks)
        cell_offsets = np.zeros(cell_sizes.size + 1, dtype=np.int64)
        np.cumsum(cell_sizes, out=cell_offsets[1:])
        lo_edge, hi_edge = float(meta.edges[b]), float(meta.edges[b + 1])
        plane_stream = bytearray()  # decoded bytes in cell order (PLoD)
        stream_sound = True
        for row in meta.data_blocks[b]:
            cell_start, cell_end, offset, comp_len, raw_len, crc = (
                int(v) for v in row
            )
            expected_raw = int(cell_offsets[cell_end] - cell_offsets[cell_start])
            if expected_raw != raw_len:
                issues.append(
                    Issue(
                        "error",
                        f"{loc} block cells [{cell_start},{cell_end})",
                        f"recorded raw_len {raw_len} != counts-derived {expected_raw}",
                    )
                )
                stream_sound = False
                continue
            try:
                payload = handle.read(offset, comp_len)
                if zlib.crc32(payload) != crc:
                    issues.append(
                        Issue(
                            "error",
                            f"{loc} block at offset {offset}",
                            "payload CRC mismatch",
                            kind="crc-mismatch",
                            path=data_path,
                            offset=offset,
                        )
                    )
                    stream_sound = False
                    continue
                if isinstance(codec, ByteCodec):
                    raw = codec.decode(payload, raw_len)
                    ok = len(raw) == raw_len
                    if ok:
                        plane_stream.extend(raw)
                else:
                    values = codec.decode(payload, raw_len // 8)
                    ok = values.size == raw_len // 8
                    if ok and values.size:
                        issues += _check_bin_membership(
                            values, b, config.n_bins, lo_edge, hi_edge,
                            lossy_bound, loc,
                        )
            except Exception as exc:
                issues.append(
                    Issue(
                        "error",
                        f"{loc} block at offset {offset}",
                        f"decode failed: {exc}",
                        kind="decode-error",
                        path=data_path,
                        offset=offset,
                    )
                )
                stream_sound = False
                continue
            if not ok:
                issues.append(
                    Issue(
                        "error",
                        f"{loc} block at offset {offset}",
                        "decoded length mismatch",
                    )
                )
                stream_sound = False

        # PLoD stores: reassemble the bin's values from its byte planes
        # and verify bin membership (the strongest cross-plane check).
        if config.plod_enabled and stream_sound:
            issues += _check_plod_bin_values(
                np.frombuffer(bytes(plane_stream), dtype=np.uint8),
                meta,
                b,
                cell_offsets,
                lo_edge,
                hi_edge,
                loc,
            )

        # Decode every index block and collect coverage.
        handle = session.open(index_path)
        for row in meta.index_blocks[b]:
            cpos_start, cpos_end, offset, comp_len, crc = (int(v) for v in row)
            counts = meta.counts[b, cpos_start:cpos_end]
            try:
                payload = handle.read(offset, comp_len)
                if zlib.crc32(payload) != crc:
                    issues.append(
                        Issue(
                            "error",
                            f"{loc} index block [{cpos_start},{cpos_end})",
                            "payload CRC mismatch",
                            kind="crc-mismatch",
                            path=index_path,
                            offset=offset,
                        )
                    )
                    continue
                per_chunk = decode_position_block(payload, counts)
            except Exception as exc:
                issues.append(
                    Issue(
                        "error",
                        f"{loc} index block [{cpos_start},{cpos_end})",
                        f"decode failed: {exc}",
                        kind="decode-error",
                        path=index_path,
                        offset=offset,
                    )
                )
                continue
            for i, local_ids in enumerate(per_chunk):
                cpos = cpos_start + i
                if local_ids.size:
                    if local_ids.min() < 0 or local_ids.max() >= grid.chunk_size:
                        issues.append(
                            Issue(
                                "error",
                                f"{loc} chunk pos {cpos}",
                                "local ids out of chunk range",
                            )
                        )
                    if np.any(np.diff(local_ids) <= 0):
                        issues.append(
                            Issue(
                                "error",
                                f"{loc} chunk pos {cpos}",
                                "local ids not strictly increasing",
                            )
                        )
                chunk_locals[cpos].append(local_ids)

    issues += _check_hbi(fs, var_root, meta, grid)
    issues += _check_peb(fs, var_root, meta)

    # Cross-bin coverage: every chunk partitioned exactly.
    for cpos in range(n_chunks):
        merged = (
            np.concatenate(chunk_locals[cpos])
            if chunk_locals[cpos]
            else np.empty(0, dtype=np.int64)
        )
        if merged.size != grid.chunk_size or (
            merged.size and np.unique(merged).size != grid.chunk_size
        ):
            issues.append(
                Issue(
                    "error",
                    f"chunk pos {cpos}",
                    f"bins cover {np.unique(merged).size}/{grid.chunk_size} "
                    "elements (must partition exactly)",
                )
            )
    return issues


def _check_hbi(
    fs: SimulatedPFS, var_root: str, meta: StoreMeta, grid: ChunkGrid
) -> list[Issue]:
    """Integrity of the optional hierarchical bitmap index file.

    The file is summary data derived from the flat index, so beyond
    parsing (magic/version/CRC) the check cross-validates it against
    the authoritative metadata: same geometry, and per-(bin, run)
    cardinalities equal to the aggregated chunk counts — the invariant
    that makes index-driven pruning answer-preserving.
    """
    path = hbi_path(var_root)
    if not fs.exists(path):
        return []  # optional: stores may predate the hierarchical index
    loc = "hbi"
    try:
        hbi = HBIndex.from_bytes(bytes(fs.session().open(path).read_all()))
    except Exception as exc:
        return [
            Issue(
                "error", loc, f"hierarchical index unreadable: {exc}",
                kind="decode-error", path=path, offset=0,
            )
        ]
    issues: list[Issue] = []
    geometry = (hbi.n_bins, hbi.n_chunks, hbi.chunk_size)
    expected = (meta.config.n_bins, meta.n_chunks, grid.chunk_size)
    if geometry != expected:
        return [
            Issue(
                "error", loc,
                f"geometry {geometry} disagrees with metadata {expected}",
            )
        ]
    try:
        hbi.validate()
    except Exception as exc:
        issues.append(Issue("error", loc, f"internal consistency: {exc}"))
    counts = meta.counts.astype(np.int64)
    padded = np.zeros((hbi.n_bins, hbi.n_runs * hbi.leaf_span), dtype=np.int64)
    padded[:, : hbi.n_chunks] = counts
    expected_runs = padded.reshape(hbi.n_bins, hbi.n_runs, hbi.leaf_span).sum(axis=2)
    if not np.array_equal(expected_runs, hbi.run_counts):
        issues.append(
            Issue("error", loc, "run cardinalities disagree with metadata counts")
        )
    return issues


def _check_peb(fs: SimulatedPFS, var_root: str, meta: StoreMeta) -> list[Issue]:
    """Integrity of the optional per-chunk error-bounds file.

    Like the hierarchical index, the file is derived data: beyond
    parsing (magic/version/CRC) the check cross-validates its geometry
    against the metadata and runs the table's own invariants — bounds
    monotone non-increasing in level, the exact level-7 row zero, and
    mean never exceeding max — which are what make ``query(tol=...)``'s
    accuracy claims provable from the record.
    """
    path = peb_path(var_root)
    if not fs.exists(path):
        return []  # optional: stores may predate error-bounded retrieval
    loc = "peb"
    try:
        table = ErrorBoundsTable.from_bytes(
            bytes(fs.session().open(path).read_all())
        )
    except Exception as exc:
        return [
            Issue(
                "error", loc, f"error-bounds record unreadable: {exc}",
                kind="decode-error", path=path, offset=0,
            )
        ]
    issues: list[Issue] = []
    if table.n_chunks != meta.n_chunks:
        return [
            Issue(
                "error", loc,
                f"covers {table.n_chunks} chunks, metadata has {meta.n_chunks}",
            )
        ]
    try:
        table.validate()
    except Exception as exc:
        issues.append(Issue("error", loc, f"internal consistency: {exc}"))
    if not meta.config.plod_enabled and table.n_chunks:
        issues.append(
            Issue("error", loc, "error bounds present on a non-PLoD layout")
        )
    return issues


def _check_plod_bin_values(
    stream: np.ndarray,
    meta: StoreMeta,
    bin_id: int,
    cell_offsets: np.ndarray,
    lo_edge: float,
    hi_edge: float,
    loc: str,
) -> list[Issue]:
    """Reassemble a PLoD bin's values from its byte planes and check
    that they fall inside the bin interval."""
    from repro.plod.byteplanes import GROUP_WIDTHS, N_GROUPS, assemble_from_groups

    config = meta.config
    n_chunks = meta.n_chunks
    counts = meta.counts[bin_id].astype(np.int64)
    n_elem = int(counts.sum())
    if n_elem == 0:
        return []
    groups: list[np.ndarray] = []
    try:
        for g in range(N_GROUPS):
            if config.group_major:  # cells of group g are contiguous
                lo = int(cell_offsets[g * n_chunks])
                hi = int(cell_offsets[(g + 1) * n_chunks])
                groups.append(stream[lo:hi])
            else:  # V-S-M: gather group-g cells chunk by chunk
                parts = [
                    stream[
                        int(cell_offsets[cpos * N_GROUPS + g]) : int(
                            cell_offsets[cpos * N_GROUPS + g + 1]
                        )
                    ]
                    for cpos in range(n_chunks)
                ]
                groups.append(np.concatenate(parts))
        expected = [n_elem * GROUP_WIDTHS[g] for g in range(N_GROUPS)]
        if [g.size for g in groups] != expected:
            return [Issue("error", loc, "byte-plane stream sizes inconsistent")]
        values = assemble_from_groups(groups, n_elem, N_GROUPS)
    except Exception as exc:
        return [Issue("error", loc, f"byte-plane reassembly failed: {exc}")]
    return _check_bin_membership(
        values, bin_id, config.n_bins, lo_edge, hi_edge, None, loc
    )


def _check_table(table: np.ndarray, n_units: int, file_size: int, loc: str) -> list[Issue]:
    """Contiguity/offset invariants of one block table."""
    issues: list[Issue] = []
    if table.shape[0] == 0:
        return [Issue("error", loc, "empty block table")]
    if int(table[0, 0]) != 0:
        issues.append(Issue("error", loc, f"first block starts at {table[0, 0]}, not 0"))
    if int(table[-1, 1]) != n_units:
        issues.append(
            Issue("error", loc, f"last block ends at {table[-1, 1]}, expected {n_units}")
        )
    if not np.array_equal(table[1:, 0], table[:-1, 1]):
        issues.append(Issue("error", loc, "block unit ranges are not contiguous"))
    if int(table[0, 2]) != 0:
        issues.append(Issue("error", loc, "first block offset is not 0"))
    if not np.array_equal(table[1:, 2], table[:-1, 2] + table[:-1, 3]):
        issues.append(Issue("error", loc, "block offsets do not chain"))
    end = int(table[-1, 2] + table[-1, 3])
    if end != file_size:
        issues.append(
            Issue("error", loc, f"blocks end at byte {end}, file has {file_size}")
        )
    return issues


def _check_bin_membership(
    values: np.ndarray,
    bin_id: int,
    n_bins: int,
    lo_edge: float,
    hi_edge: float,
    lossy_bound: float | None,
    loc: str,
) -> list[Issue]:
    """Values of a full-value block must lie inside their bin interval."""
    lo = -np.inf if bin_id == 0 else lo_edge
    hi = np.inf if bin_id == n_bins - 1 else hi_edge
    slack = 0.0
    if lossy_bound is not None:
        slack = 0.5 * lossy_bound * float(np.abs(values).max())
    bad = np.count_nonzero((values < lo - slack) | (values >= hi + slack))
    if bad:
        return [
            Issue(
                "error",
                loc,
                f"{bad} values outside bin interval [{lo}, {hi}) (+/-{slack:g})",
            )
        ]
    return []


# ----------------------------------------------------------------------
# Dataset-level checking: manifests, sealed members, orphans
# ----------------------------------------------------------------------
def check_dataset(
    fs: SimulatedPFS, root: str, *, deep: bool = False
) -> list[Issue]:
    """Check a manifest-managed dataset root (``repro.core.manifest``).

    Validates the generation chain (every manifest parses, records the
    generation its filename claims, and is append-only with respect to
    its predecessor — a sealed member never disappears or changes),
    then the newest valid generation's member set: each member's
    metadata must exist and hash to the recorded ``meta_crc``, and its
    per-member ``hbi``/``peb`` records (built at seal time) must be
    internally consistent with that metadata.  Store directories that
    no valid generation references are reported as
    ``kind="orphaned-member"`` — the harmless-but-reclaimable
    footprint of an append that crashed before its commit.

    A dataset with no manifest files is not manifest-managed; the
    check returns no issues (use :func:`check_store` per variable).
    ``deep=True`` additionally runs the full :func:`check_store` walk
    on every sealed member.
    """
    root = root.rstrip("/")
    generations = manifest_generations(fs, root)
    if not generations:
        return []
    issues: list[Issue] = []
    valid: dict[int, Manifest] = {}
    for generation in generations:
        path = manifest_path(root, generation)
        try:
            valid[generation] = load_manifest_at(fs, root, generation)
        except ManifestError as exc:
            # The newest generation being torn is the expected footprint
            # of an interrupted commit (the previous one still serves);
            # a torn *interior* generation means history damage.
            severity = "warning" if generation == generations[-1] else "error"
            issues.append(
                Issue(
                    severity,
                    path,
                    f"manifest unreadable: {exc}",
                    kind="manifest-torn",
                    path=path,
                )
            )
    if not valid:
        issues.append(
            Issue(
                "error",
                root,
                "no readable manifest generation",
                kind="manifest-torn",
            )
        )
        return issues

    ordered = sorted(valid)
    for prev_gen, cur_gen in zip(ordered, ordered[1:]):
        prev, cur = valid[prev_gen], valid[cur_gen]
        cur_members = {m.key: m for m in cur.members}
        for member in prev.members:
            loc = manifest_path(root, cur_gen)
            if member.key not in cur_members:
                issues.append(
                    Issue(
                        "error",
                        loc,
                        f"member {member.key!r} sealed at generation "
                        f"{prev_gen} missing from generation {cur_gen}; "
                        "manifests are append-only",
                    )
                )
            elif cur_members[member.key] != member:
                issues.append(
                    Issue(
                        "error",
                        loc,
                        f"member {member.key!r} record changed between "
                        f"generations {prev_gen} and {cur_gen}; sealed "
                        "members are immutable",
                    )
                )

    latest = valid[ordered[-1]]
    for member in latest.members:
        var_root = f"{root}/{member.key}"
        meta_path = f"{var_root}/meta"
        if not fs.exists(meta_path):
            issues.append(
                Issue(
                    "error",
                    meta_path,
                    f"sealed member {member.key!r} has no metadata file",
                )
            )
            continue
        raw = bytes(fs.session().open(meta_path).read_all())
        if zlib.crc32(raw) != member.meta_crc:
            issues.append(
                Issue(
                    "error",
                    meta_path,
                    f"metadata CRC {zlib.crc32(raw):#010x} does not match "
                    f"the sealed manifest record {member.meta_crc:#010x}",
                    kind="crc-mismatch",
                    path=meta_path,
                    offset=0,
                )
            )
            continue
        try:
            meta = StoreMeta.from_bytes(raw)
        except Exception as exc:
            issues.append(
                Issue(
                    "error",
                    meta_path,
                    f"metadata unreadable: {exc}",
                    kind="decode-error",
                    path=meta_path,
                )
            )
            continue
        grid = ChunkGrid(meta.shape, meta.config.chunk_shape)
        issues += [
            Issue(
                i.severity,
                f"{member.key}: {i.location}",
                i.message,
                kind=i.kind,
                path=i.path,
                offset=i.offset,
            )
            for i in _check_hbi(fs, var_root, meta, grid)
            + _check_peb(fs, var_root, meta)
        ]
        if deep:
            issues += check_store(fs, root, member.key)

    sealed_anywhere: set[str] = set()
    for manifest in valid.values():
        sealed_anywhere |= manifest.keys()
    prefix = root + "/"
    on_disk = {
        rest.split("/", 1)[0]
        for path in fs.list_files(prefix)
        for rest in (path[len(prefix) :],)
        if "/" in rest
    }
    for key in sorted(on_disk - sealed_anywhere):
        issues.append(
            Issue(
                "warning",
                f"{root}/{key}",
                "member on disk but in no manifest generation "
                "(interrupted append; reclaimable)",
                kind="orphaned-member",
                path=f"{root}/{key}",
            )
        )
    return issues
