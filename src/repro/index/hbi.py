"""Hierarchical compressed bitmap index (HBI) over (bin, chunk-run)s.

The flat per-bin position index answers "which elements of bin *b*
qualify" only by decoding index blocks; it gives the planner nothing to
prune with and makes multi-variable exchanges ship whole-domain
bitmaps.  Following the hierarchical bitmap indexing idea of
Krčál/Ho/Holub (PAPERS.md), this module adds a tree on top of the
existing WAH machinery:

* **Leaves** — one WAH-compressed bitmap per (bin, chunk-run), where a
  *run* is ``leaf_span`` consecutive chunks in curve order and the
  bitmap's domain is run-local (bit = ``chunk_offset_in_run *
  chunk_size + local_id``).  Run-local domains keep every leaf small,
  make cross-bin OR a same-domain operation in the 63-bit group space
  (:func:`~repro.index.bitmap.wah_expand_groups`), and concatenate
  across runs without overlap (runs partition the chunk space).
* **Interior nodes** — per-level cardinality matrices over the bin
  axis: level 0 is the exact (bin, run) element-count matrix, level
  *k*+1 aggregates ``fanout`` children of level *k*.  A bin-range
  predicate decomposes into O(fanout · log n_bins) covering nodes, so
  range cardinalities — per run and total — resolve from interior
  nodes alone, without touching a single leaf.

The index is built at write time by :class:`HBIBuilder` (streaming, one
run of state, consumed in the writer's serial commit order so the
persisted bytes are identical across write backends) and lazily by
:func:`build_from_store` for stores written before the index existed;
both paths produce byte-identical serializations.  The on-disk record
(``<variable>/hbi``, see FORMAT.md) is versioned and CRC-terminated.

Everything here is *summary* data derived from the authoritative flat
index: queries answered with HBI pruning are bit-identical to the flat
path (DESIGN.md §6), because dropping a (bin, chunk) whose summary
cardinality is zero can never remove a qualifying element.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.index.binindex import decode_position_block_flat
from repro.index.bitmap import (
    _GROUP_BITS,
    Bitmap,
    _groups_to_words,
    groups_to_bitmap,
    wah_cardinality,
    wah_decode,
    wah_expand_groups,
)

__all__ = [
    "DEFAULT_FANOUT",
    "DEFAULT_LEAF_SPAN",
    "HBIndex",
    "HBIBuilder",
    "build_from_store",
    "decode_hierarchical_bitmap",
    "encode_hierarchical_bitmap",
    "hbi_path",
]

#: Chunks per leaf run (curve order).  Pruning granularity: a compound
#: pushdown can drop work only in whole runs at the tree level (exact
#: per-chunk counts refine below it), so smaller spans prune finer at
#: the cost of more leaves.  See docs/tuning.md.
DEFAULT_LEAF_SPAN = 8
#: Tree fanout over the bin axis.
DEFAULT_FANOUT = 4

_MAGIC = b"MLOCHBI\x00"
FORMAT_VERSION = 1


def hbi_path(root: str) -> str:
    """On-disk path of a variable's hierarchical index file."""
    return f"{root.rstrip('/')}/hbi"


def _aggregate_levels(run_counts: np.ndarray, fanout: int) -> list[np.ndarray]:
    """Interior count matrices, bottom-up, until a single root row."""
    levels: list[np.ndarray] = []
    current = run_counts
    while current.shape[0] > 1:
        rows = current.shape[0]
        padded_rows = -(-rows // fanout) * fanout
        if padded_rows != rows:
            padded = np.zeros((padded_rows, current.shape[1]), dtype=np.int64)
            padded[:rows] = current
            current = padded
        current = current.reshape(-1, fanout, current.shape[1]).sum(axis=1)
        levels.append(current)
    return levels


def _encode_sorted_leaf(leaf_bits: np.ndarray, n_groups: int) -> np.ndarray:
    """WAH words of a run-local leaf from its sorted set-bit positions."""
    keys = leaf_bits // _GROUP_BITS
    vals = np.uint64(1) << (leaf_bits % _GROUP_BITS).astype(np.uint64)
    starts = np.concatenate(([0], np.flatnonzero(np.diff(keys)) + 1))
    groups = np.zeros(n_groups, dtype=np.uint64)
    groups[keys[starts]] = np.bitwise_or.reduceat(vals, starts)
    return _groups_to_words(groups)


class HBIndex:
    """The hierarchical bitmap index of one stored variable.

    Construct through :class:`HBIBuilder` (write time),
    :func:`build_from_store` (lazy fallback), or :meth:`from_bytes`
    (persisted form); the constructor itself just wires pre-built
    arrays together.
    """

    def __init__(
        self,
        *,
        leaf_span: int,
        fanout: int,
        n_bins: int,
        n_chunks: int,
        chunk_size: int,
        run_counts: np.ndarray,
        levels: list[np.ndarray],
        leaf_offsets: np.ndarray,
        leaf_words: np.ndarray,
    ) -> None:
        if leaf_span <= 0 or fanout <= 1:
            raise ValueError(
                f"need leaf_span >= 1 and fanout >= 2, got {leaf_span}/{fanout}"
            )
        self.leaf_span = int(leaf_span)
        self.fanout = int(fanout)
        self.n_bins = int(n_bins)
        self.n_chunks = int(n_chunks)
        self.chunk_size = int(chunk_size)
        self.run_counts = np.asarray(run_counts, dtype=np.int64)
        self.levels = [np.asarray(m, dtype=np.int64) for m in levels]
        self.leaf_offsets = np.asarray(leaf_offsets, dtype=np.int64)
        self.leaf_words = np.asarray(leaf_words, dtype=np.uint64)
        self.n_runs = self.run_counts.shape[1]
        self.leaf_nbits = self.leaf_span * self.chunk_size
        self.n_leaf_groups = -(-self.leaf_nbits // _GROUP_BITS)
        #: Interior matrices bottom-up; level 0 is the exact run matrix.
        self._matrices = [self.run_counts] + self.levels
        #: Per-bin element totals (root of the per-bin axis).
        self.bin_totals = self.run_counts.sum(axis=1)

    # ------------------------------------------------------------------
    # Interior-node queries (no leaf decode)
    # ------------------------------------------------------------------
    def range_run_counts(self, bin_lo: int, bin_hi: int) -> tuple[np.ndarray, int]:
        """Per-run element counts of bins ``[bin_lo, bin_hi)``.

        Decomposes the bin range into covering tree nodes — unaligned
        edges are peeled at each level, fully-covered subtrees are
        answered by one interior node — and sums their per-run count
        vectors.  Returns ``(counts, nodes_visited)``; the node count
        is O(fanout · log n_bins), which the tests pin.
        """
        if not (0 <= bin_lo <= bin_hi <= self.n_bins):
            raise ValueError(f"bad bin range [{bin_lo}, {bin_hi}) of {self.n_bins}")
        counts = np.zeros(self.n_runs, dtype=np.int64)
        lo, hi, level, visited = bin_lo, bin_hi, 0, 0
        while lo < hi:
            matrix = self._matrices[level]
            if level + 1 >= len(self._matrices):
                counts += matrix[lo:hi].sum(axis=0)
                visited += hi - lo
                break
            while lo < hi and lo % self.fanout != 0:
                counts += matrix[lo]
                lo += 1
                visited += 1
            while lo < hi and hi % self.fanout != 0:
                hi -= 1
                counts += matrix[hi]
                visited += 1
            lo //= self.fanout
            hi //= self.fanout
            level += 1
        return counts, visited

    def cardinality(self, bin_lo: int, bin_hi: int) -> int:
        """Total element count of bins ``[bin_lo, bin_hi)`` (tree-resolved)."""
        counts, _ = self.range_run_counts(bin_lo, bin_hi)
        return int(counts.sum())

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def leaf(self, bin_id: int, run: int) -> np.ndarray:
        """WAH words of one (bin, run) leaf (empty for an empty leaf)."""
        idx = bin_id * self.n_runs + run
        return self.leaf_words[self.leaf_offsets[idx] : self.leaf_offsets[idx + 1]]

    def range_run_groups(self, bin_lo: int, bin_hi: int, run: int) -> np.ndarray:
        """OR of the leaves of bins ``[bin_lo, bin_hi)`` in one run,
        as dense 63-bit group values (the compressed-domain AND/OR
        representation)."""
        groups = np.zeros(self.n_leaf_groups, dtype=np.uint64)
        for b in range(bin_lo, bin_hi):
            words = self.leaf(b, run)
            if words.size:
                groups |= wah_expand_groups(words)
        return groups

    def _leaf_bits_to_positions(self, run: int, leaf_bits: np.ndarray, grid, curve):
        """Map sorted run-local bit indices to global positions."""
        if leaf_bits.size == 0:
            return np.empty(0, dtype=np.int64)
        cpos = run * self.leaf_span + leaf_bits // self.chunk_size
        local = leaf_bits % self.chunk_size
        u_cpos, counts = np.unique(cpos, return_counts=True)
        chunk_ids = np.asarray(curve.order, dtype=np.int64)[u_cpos]
        return grid.global_positions_batch(chunk_ids, local, counts)

    def range_positions(self, bin_lo: int, bin_hi: int, grid, curve) -> np.ndarray:
        """Sorted global positions of every element of bins
        ``[bin_lo, bin_hi)``, answered from leaves alone.

        Runs whose interior-node count is zero are skipped without any
        leaf access — the hierarchical fast path.
        """
        run_counts, _ = self.range_run_counts(bin_lo, bin_hi)
        parts = []
        for run in np.flatnonzero(run_counts):
            groups = self.range_run_groups(bin_lo, bin_hi, int(run))
            leaf_bits = groups_to_bitmap(groups, self.leaf_nbits).to_positions()
            parts.append(self._leaf_bits_to_positions(int(run), leaf_bits, grid, curve))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def bin_positions(self, bin_id: int, grid, curve) -> np.ndarray:
        """Sorted global positions of one bin's elements."""
        return self.range_positions(bin_id, bin_id + 1, grid, curve)

    def bins_intersecting(self, positions: np.ndarray, grid, curve) -> np.ndarray:
        """Per-bin boolean mask: does the bin hold any of ``positions``?

        The AND-pushdown primitive for masked fetches: each (bin, run)
        leaf is ANDed against the positions' run-local group vector in
        the compressed 63-bit group domain, and interior-node counts
        skip empty cells without touching a leaf.  Exact, not an upper
        bound — leaves record true membership — so dropping the False
        bins from a position-masked value fetch is answer-preserving.
        """
        out = np.zeros(self.n_bins, dtype=bool)
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size == 0:
            return out
        runs, leaf_bits = _positions_to_run_bits(pos, grid, curve, self.leaf_span)
        u_runs, starts = np.unique(runs, return_index=True)
        bounds = np.append(starts, runs.size)
        for i, run in enumerate(u_runs):
            bits = leaf_bits[bounds[i] : bounds[i + 1]]
            groups = np.zeros(self.n_leaf_groups, dtype=np.uint64)
            keys = bits // _GROUP_BITS
            vals = np.uint64(1) << (bits % _GROUP_BITS).astype(np.uint64)
            seg = np.concatenate(([0], np.flatnonzero(np.diff(keys)) + 1))
            groups[keys[seg]] = np.bitwise_or.reduceat(vals, seg)
            candidates = np.flatnonzero(~out & (self.run_counts[:, run] > 0))
            for b in candidates:
                if np.any(wah_expand_groups(self.leaf(b, run)) & groups):
                    out[b] = True
        return out

    # ------------------------------------------------------------------
    # Introspection / integrity
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Structural counters for ``mloc index stats`` and benches."""
        n_leaves = self.n_bins * self.n_runs
        nonempty = int(np.count_nonzero(np.diff(self.leaf_offsets)))
        return {
            "leaf_span": self.leaf_span,
            "fanout": self.fanout,
            "n_bins": self.n_bins,
            "n_chunks": self.n_chunks,
            "n_runs": self.n_runs,
            "n_levels": len(self.levels) + 1,
            "n_leaves": n_leaves,
            "nonempty_leaves": nonempty,
            "interior_nodes": int(sum(m.shape[0] for m in self.levels)) * self.n_runs,
            "leaf_bytes": int(self.leaf_words.nbytes),
            "summary_bytes": int(
                self.run_counts.nbytes + sum(m.nbytes for m in self.levels)
            ),
            "total_elements": int(self.run_counts.sum()),
        }

    def validate(self) -> None:
        """Cross-check the tree against the leaves; raise on mismatch.

        Every interior level must sum to its children and every leaf's
        WAH cardinality must equal its level-0 count — the invariant
        that makes interior-node pruning answer-preserving.
        """
        for level, matrix in enumerate(self._matrices[1:]):
            child = self._matrices[level]
            rows = child.shape[0]
            padded_rows = -(-rows // self.fanout) * self.fanout
            padded = np.zeros((padded_rows, self.n_runs), dtype=np.int64)
            padded[:rows] = child
            expected = padded.reshape(-1, self.fanout, self.n_runs).sum(axis=1)
            if not np.array_equal(expected, matrix):
                raise ValueError(f"interior level {level + 1} disagrees with children")
        if self.leaf_offsets.size != self.n_bins * self.n_runs + 1:
            raise ValueError("leaf offset table has the wrong length")
        for b in range(self.n_bins):
            for r in range(self.n_runs):
                if wah_cardinality(self.leaf(b, r)) != self.run_counts[b, r]:
                    raise ValueError(
                        f"leaf ({b}, {r}) cardinality disagrees with its node count"
                    )

    # ------------------------------------------------------------------
    # Serialization (FORMAT.md: hierarchical index record)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Versioned, CRC-terminated serialization."""
        parts = [
            _MAGIC,
            struct.pack(
                "<IIIqqq",
                FORMAT_VERSION,
                self.leaf_span,
                self.fanout,
                self.n_bins,
                self.n_chunks,
                self.chunk_size,
            ),
            struct.pack("<I", len(self.levels)),
            self.run_counts.astype("<i8").tobytes(),
        ]
        for matrix in self.levels:
            parts.append(struct.pack("<I", matrix.shape[0]))
            parts.append(matrix.astype("<i8").tobytes())
        parts.append(self.leaf_offsets.astype("<i8").tobytes())
        parts.append(self.leaf_words.astype("<u8").tobytes())
        body = b"".join(parts)
        return body + struct.pack("<I", zlib.crc32(body))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HBIndex":
        """Parse a serialized index, verifying magic, version, and CRC."""
        if len(raw) < len(_MAGIC) + 4 or raw[: len(_MAGIC)] != _MAGIC:
            raise ValueError("not a hierarchical bitmap index record")
        body, (crc,) = raw[:-4], struct.unpack("<I", raw[-4:])
        if zlib.crc32(body) != crc:
            raise ValueError("hierarchical index record failed its CRC check")
        off = len(_MAGIC)
        version, leaf_span, fanout, n_bins, n_chunks, chunk_size = struct.unpack_from(
            "<IIIqqq", body, off
        )
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported hierarchical index version {version}")
        off += struct.calcsize("<IIIqqq")
        (n_levels,) = struct.unpack_from("<I", body, off)
        off += 4
        n_runs = -(-n_chunks // leaf_span)

        def take_i64(count: int) -> np.ndarray:
            nonlocal off
            arr = np.frombuffer(body, dtype="<i8", count=count, offset=off)
            off += count * 8
            return arr.astype(np.int64)

        run_counts = take_i64(n_bins * n_runs).reshape(n_bins, n_runs)
        levels = []
        for _ in range(n_levels):
            (rows,) = struct.unpack_from("<I", body, off)
            off += 4
            levels.append(take_i64(rows * n_runs).reshape(rows, n_runs))
        leaf_offsets = take_i64(n_bins * n_runs + 1)
        n_words = int(leaf_offsets[-1])
        leaf_words = np.frombuffer(body, dtype="<u8", count=n_words, offset=off).astype(
            np.uint64
        )
        return cls(
            leaf_span=leaf_span,
            fanout=fanout,
            n_bins=n_bins,
            n_chunks=n_chunks,
            chunk_size=chunk_size,
            run_counts=run_counts,
            levels=levels,
            leaf_offsets=leaf_offsets,
            leaf_words=leaf_words,
        )


class HBIBuilder:
    """Streaming write-time builder: one run of leaf state in memory.

    The writer's ordered commit loop calls :meth:`add_chunk` once per
    curve position, in order, with the same bin-segmented chunk-local
    ids it feeds the flat index streams; the builder accumulates the
    current run's group matrix and WAH-encodes its leaves when the run
    closes.  Because it only ever consumes the deterministic chunk-
    stage output in serial commit order, the finished index bytes are
    identical across write backends and worker counts (DESIGN.md §6).
    """

    def __init__(
        self,
        n_bins: int,
        n_chunks: int,
        chunk_size: int,
        *,
        leaf_span: int = DEFAULT_LEAF_SPAN,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        self.n_bins = int(n_bins)
        self.n_chunks = int(n_chunks)
        self.chunk_size = int(chunk_size)
        self.leaf_span = int(leaf_span)
        self.fanout = int(fanout)
        self.n_runs = -(-self.n_chunks // self.leaf_span)
        self.n_leaf_groups = -(-self.leaf_span * self.chunk_size // _GROUP_BITS)
        self.run_counts = np.zeros((self.n_bins, self.n_runs), dtype=np.int64)
        self._groups = np.zeros((self.n_bins, self.n_leaf_groups), dtype=np.uint64)
        self._leaves: list[list[np.ndarray | None]] = [
            [None] * self.n_runs for _ in range(self.n_bins)
        ]
        self._run = 0
        self._next_cpos = 0

    def add_chunk(self, cpos: int, local_ids: np.ndarray, offsets: np.ndarray) -> None:
        """Fold one chunk's bin-segmented local ids into the current run.

        ``local_ids`` concatenates each bin's strictly-increasing
        chunk-local element ids; ``offsets`` holds the per-bin
        boundaries (the writer's ``per_bin_segments`` output).
        """
        if cpos != self._next_cpos:
            raise ValueError(f"chunks must arrive in order: expected {self._next_cpos}")
        self._next_cpos = cpos + 1
        run, k = divmod(cpos, self.leaf_span)
        if run != self._run:
            self._close_run()
            self._run = run
        per_bin = np.diff(np.asarray(offsets, dtype=np.int64))
        self.run_counts[:, run] += per_bin
        ids = np.asarray(local_ids, dtype=np.int64)
        if ids.size == 0:
            return
        leaf_bits = k * self.chunk_size + ids
        bins = np.repeat(np.arange(self.n_bins, dtype=np.int64), per_bin)
        # Keys are sorted (bin-major, increasing local ids within a
        # bin), so a reduceat per constant-key segment ORs each group's
        # bits in one vectorized pass — no ufunc.at.
        keys = bins * self.n_leaf_groups + leaf_bits // _GROUP_BITS
        vals = np.uint64(1) << (leaf_bits % _GROUP_BITS).astype(np.uint64)
        starts = np.concatenate(([0], np.flatnonzero(np.diff(keys)) + 1))
        flat = self._groups.reshape(-1)
        flat[keys[starts]] |= np.bitwise_or.reduceat(vals, starts)

    def _close_run(self) -> None:
        run = self._run
        for b in range(self.n_bins):
            if self.run_counts[b, run]:
                self._leaves[b][run] = _groups_to_words(self._groups[b])
            else:
                self._leaves[b][run] = np.empty(0, dtype=np.uint64)
        self._groups.fill(0)

    def finish(self) -> HBIndex:
        """Close the final run and assemble the index."""
        if self._next_cpos != self.n_chunks:
            raise ValueError(
                f"saw {self._next_cpos} of {self.n_chunks} chunks before finish"
            )
        if self.n_chunks:
            self._close_run()
        lengths = [
            leaf.size if leaf is not None else 0
            for per_bin in self._leaves
            for leaf in per_bin
        ]
        leaf_offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=leaf_offsets[1:])
        words = [
            leaf
            for per_bin in self._leaves
            for leaf in per_bin
            if leaf is not None and leaf.size
        ]
        leaf_words = (
            np.concatenate(words) if words else np.empty(0, dtype=np.uint64)
        )
        return HBIndex(
            leaf_span=self.leaf_span,
            fanout=self.fanout,
            n_bins=self.n_bins,
            n_chunks=self.n_chunks,
            chunk_size=self.chunk_size,
            run_counts=self.run_counts,
            levels=_aggregate_levels(self.run_counts, self.fanout),
            leaf_offsets=leaf_offsets,
            leaf_words=leaf_words,
        )


def build_from_store(
    store,
    *,
    leaf_span: int = DEFAULT_LEAF_SPAN,
    fanout: int = DEFAULT_FANOUT,
) -> HBIndex:
    """Build the hierarchical index from a store's flat position index.

    The lazy fallback for stores written before the hierarchical index
    existed: reads each bin's index subfile once (outside any query's
    accounting, like the metadata read at open), decodes the chunk-
    local ids, and assembles leaves bin by bin.  Produces bytes
    identical to the write-time :class:`HBIBuilder` for the same store.
    """
    meta = store.meta
    grid = store.grid
    counts = meta.counts.astype(np.int64)
    n_bins, n_chunks = counts.shape
    chunk_size = grid.chunk_size
    n_runs = -(-n_chunks // leaf_span)
    n_leaf_groups = -(-leaf_span * chunk_size // _GROUP_BITS)
    session = store.fs.session()

    lengths: list[int] = []
    words: list[np.ndarray] = []
    for b in range(n_bins):
        raw = bytes(session.open(store.files.index_path(b)).read_all())
        parts = []
        for cs, ce, offset, comp_len, _crc in meta.index_blocks[b]:
            payload = raw[offset : offset + comp_len]
            parts.append(decode_position_block_flat(payload, counts[b, cs:ce]))
        local = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        cpos_rep = np.repeat(np.arange(n_chunks, dtype=np.int64), counts[b])
        leaf_bits = (cpos_rep % leaf_span) * chunk_size + local
        run_rep = cpos_rep // leaf_span
        boundaries = np.searchsorted(run_rep, np.arange(n_runs + 1))
        for r in range(n_runs):
            lo, hi = boundaries[r], boundaries[r + 1]
            if hi == lo:
                lengths.append(0)
                continue
            leaf = _encode_sorted_leaf(leaf_bits[lo:hi], n_leaf_groups)
            lengths.append(leaf.size)
            words.append(leaf)

    run_counts = np.zeros((n_bins, n_runs * leaf_span), dtype=np.int64)
    run_counts[:, :n_chunks] = counts
    run_counts = run_counts.reshape(n_bins, n_runs, leaf_span).sum(axis=2)
    leaf_offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=leaf_offsets[1:])
    return HBIndex(
        leaf_span=leaf_span,
        fanout=fanout,
        n_bins=n_bins,
        n_chunks=n_chunks,
        chunk_size=chunk_size,
        run_counts=run_counts,
        levels=_aggregate_levels(run_counts, fanout),
        leaf_offsets=leaf_offsets,
        leaf_words=(
            np.concatenate(words) if words else np.empty(0, dtype=np.uint64)
        ),
    )


# ----------------------------------------------------------------------
# Hierarchical bitmap exchange encoding (multi-variable access)
# ----------------------------------------------------------------------
_PAYLOAD_HEADER = struct.Struct("<III")  # version, leaf_span, runs present
_RUN_HEADER = struct.Struct("<II")  # run id, word count


def _positions_to_run_bits(
    pos: np.ndarray, grid, curve, leaf_span: int
) -> tuple[np.ndarray, np.ndarray]:
    """Map global positions to sorted (chunk-run, run-local bit) pairs."""
    coords = grid.positions_to_coords(pos)
    chunk_shape = np.array(grid.chunk_shape, dtype=np.int64)
    chunk_strides = np.array(
        [int(np.prod(grid.chunk_shape[d + 1 :])) for d in range(grid.ndims)],
        dtype=np.int64,
    )
    local = (coords % chunk_shape) @ chunk_strides
    cpos = np.asarray(curve.positions_of(grid.chunk_ids(coords // chunk_shape)))
    leaf_bits = (cpos % leaf_span) * grid.chunk_size + local
    runs = cpos // leaf_span
    order = np.lexsort((leaf_bits, runs))
    return runs[order], leaf_bits[order]


def encode_hierarchical_bitmap(
    positions: np.ndarray, grid, curve, leaf_span: int = DEFAULT_LEAF_SPAN
) -> bytes:
    """Encode qualifying positions as a run directory + WAH leaves.

    The multi-variable exchange payload (Section III-D4): instead of
    one WAH bitmap over the whole domain, ship a summary directory of
    the non-empty chunk-runs plus one run-local WAH leaf each.  Empty
    runs cost nothing (the whole-domain form pays a fill word per gap),
    and receivers can prune per run before touching leaf bits.
    """
    pos = np.asarray(positions, dtype=np.int64)
    leaf_nbits = leaf_span * grid.chunk_size
    n_leaf_groups = -(-leaf_nbits // _GROUP_BITS)
    if pos.size == 0:
        return _PAYLOAD_HEADER.pack(1, leaf_span, 0)
    runs, leaf_bits = _positions_to_run_bits(pos, grid, curve, leaf_span)
    u_runs, starts = np.unique(runs, return_index=True)
    bounds = np.append(starts, runs.size)
    headers, blobs = [], []
    for i, run in enumerate(u_runs):
        words = _encode_sorted_leaf(leaf_bits[bounds[i] : bounds[i + 1]], n_leaf_groups)
        headers.append(_RUN_HEADER.pack(int(run), words.size))
        blobs.append(words.astype("<u8").tobytes())
    return b"".join(
        [_PAYLOAD_HEADER.pack(1, leaf_span, len(u_runs))] + headers + blobs
    )


def decode_hierarchical_bitmap(payload: bytes, grid, curve) -> np.ndarray:
    """Inverse of :func:`encode_hierarchical_bitmap`: sorted positions."""
    version, leaf_span, n_runs = _PAYLOAD_HEADER.unpack_from(payload, 0)
    if version != 1:
        raise ValueError(f"unsupported hierarchical payload version {version}")
    chunk_size = grid.chunk_size
    leaf_nbits = leaf_span * chunk_size
    off = _PAYLOAD_HEADER.size
    runs_meta = []
    for _ in range(n_runs):
        runs_meta.append(_RUN_HEADER.unpack_from(payload, off))
        off += _RUN_HEADER.size
    order = np.asarray(curve.order, dtype=np.int64)
    parts = []
    for run, n_words in runs_meta:
        words = np.frombuffer(payload, dtype="<u8", count=n_words, offset=off).astype(
            np.uint64
        )
        off += n_words * 8
        leaf_bits = Bitmap(leaf_nbits, wah_decode(words, leaf_nbits)).to_positions()
        cpos = run * leaf_span + leaf_bits // chunk_size
        local = leaf_bits % chunk_size
        u_cpos, counts = np.unique(cpos, return_counts=True)
        parts.append(grid.global_positions_batch(order[u_cpos], local, counts))
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(parts))
