"""Per-bin position index codec.

MLOC's light-weight index (Section III-A3) records, for every element
placed in a bin, its original spatial position, so that region-only
queries over *aligned* bins are answered from the index alone without
touching (or decompressing) the data.  The index is stored in the bin's
separate index file (Fig. 4) in the same chunk order as the data.

Within one chunk the element positions are strictly increasing (the
writer's stable grouping preserves original order), so each chunk's
positions are delta-encoded with an absolute first value, the deltas of
a run of chunks are concatenated, varint-packed and deflated.  The
resulting index is a small fraction of the data (Table I: 1.6 GB for
8 GB raw), in contrast to FastBit's bitmap index which exceeds it.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.util.varint import varint_decode_array, varint_encode_array

__all__ = [
    "encode_position_block",
    "decode_position_block",
    "decode_position_block_flat",
]


def encode_position_block(positions_per_chunk: list[np.ndarray], level: int = 6) -> bytes:
    """Encode the positions of a run of chunks into one index block.

    Each array must be strictly increasing (positions of one chunk's
    elements within the bin, in original order).  Empty arrays are
    allowed (a chunk may contribute nothing to a bin).
    """
    deltas: list[np.ndarray] = []
    for positions in positions_per_chunk:
        p = np.asarray(positions, dtype=np.int64)
        if p.size == 0:
            continue
        if p.size > 1 and np.any(np.diff(p) <= 0):
            raise ValueError("chunk positions must be strictly increasing")
        if p[0] < 0:
            raise ValueError("positions must be non-negative")
        d = np.empty(p.size, dtype=np.uint64)
        d[0] = p[0]
        d[1:] = np.diff(p).astype(np.uint64)
        deltas.append(d)
    if not deltas:
        return zlib.compress(b"", level)
    stream = varint_encode_array(np.concatenate(deltas))
    return zlib.compress(stream, level)


def decode_position_block_flat(payload: bytes, counts: np.ndarray) -> np.ndarray:
    """Decode an index block into one flat position array.

    The returned int64 array concatenates every chunk's positions in
    block order; chunk boundaries are recovered from ``counts`` (the
    caller slices runs of chunks out with a cumulative-sum offset
    table).  This is the vectorized primitive used by the query
    executor — no per-chunk Python objects are materialized.

    Parameters
    ----------
    payload:
        Bytes produced by :func:`encode_position_block`.
    counts:
        Element count of each chunk in the block, in order (from the
        store metadata).
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    stream = zlib.decompress(payload)
    deltas = varint_decode_array(stream, total).astype(np.int64)
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Per-chunk cumulative sums in one vectorized pass: a chunk's first
    # delta is absolute, so subtracting the running prefix before each
    # chunk start from the global cumsum restores the positions.
    cs = np.cumsum(deltas)
    starts = np.zeros(counts.size, dtype=np.int64)
    starts[1:] = np.cumsum(counts)[:-1]
    prefixes = np.where(starts > 0, cs[starts - 1], 0)
    prefix_stream = np.repeat(prefixes, counts)
    return cs - prefix_stream


def decode_position_block(payload: bytes, counts: np.ndarray) -> list[np.ndarray]:
    """Decode an index block back into per-chunk position arrays.

    Parameters
    ----------
    payload:
        Bytes produced by :func:`encode_position_block`.
    counts:
        Element count of each chunk in the block, in order (from the
        store metadata).

    Returns
    -------
    list of int64 arrays, one per chunk (possibly empty).
    """
    counts = np.asarray(counts, dtype=np.int64)
    positions = decode_position_block_flat(payload, counts)
    out: list[np.ndarray] = []
    cursor = 0
    for c in counts:
        out.append(positions[cursor : cursor + c])
        cursor += int(c)
    return out
