"""Light-weight indexing: per-bin position indices and WAH bitmaps
(Sections III-A3 and III-D4)."""

from repro.index.binindex import decode_position_block, encode_position_block
from repro.index.bitmap import Bitmap, wah_decode, wah_encode, wah_from_positions

__all__ = [
    "Bitmap",
    "decode_position_block",
    "encode_position_block",
    "wah_decode",
    "wah_encode",
    "wah_from_positions",
]
