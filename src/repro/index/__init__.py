"""Light-weight indexing: per-bin position indices, WAH bitmaps, and
the hierarchical compressed bitmap index (Sections III-A3 and III-D4)."""

from repro.index.binindex import decode_position_block, encode_position_block
from repro.index.bitmap import (
    Bitmap,
    wah_cardinality,
    wah_decode,
    wah_encode,
    wah_from_positions,
)
from repro.index.hbi import (
    HBIBuilder,
    HBIndex,
    build_from_store,
    decode_hierarchical_bitmap,
    encode_hierarchical_bitmap,
    hbi_path,
)

__all__ = [
    "Bitmap",
    "HBIBuilder",
    "HBIndex",
    "build_from_store",
    "decode_hierarchical_bitmap",
    "decode_position_block",
    "encode_hierarchical_bitmap",
    "encode_position_block",
    "hbi_path",
    "wah_cardinality",
    "wah_decode",
    "wah_encode",
    "wah_from_positions",
]
