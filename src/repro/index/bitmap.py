"""Bitmaps with word-aligned-hybrid (WAH) compression.

Two consumers in the reproduction:

* MLOC's multi-variable access (Section III-D4): the positions
  qualifying a region-only step are exchanged between ranks as
  *bitmaps* to minimize memory footprint and communication, then used
  as the mask for value retrieval on the other variables.
* The FastBit baseline (Section IV-A2): FastBit's index is a set of
  per-bin bitmaps compressed with the WAH scheme; its large on-disk
  footprint (Table I: 10 GB of index for 8 GB of data) is what makes
  its cold-cache queries slow in the paper's experiments.

The WAH variant here uses 64-bit words over 63-bit groups: a *literal*
word (MSB = 0) carries 63 raw bits; a *fill* word (MSB = 1) carries the
fill bit in bit 62 and a 62-bit run length counted in groups.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Bitmap",
    "groups_to_bitmap",
    "wah_cardinality",
    "wah_decode",
    "wah_encode",
    "wah_expand_groups",
    "wah_from_positions",
]

_GROUP_BITS = 63
_FILL_FLAG = np.uint64(1) << np.uint64(63)
_FILL_ONE = np.uint64(1) << np.uint64(62)
_COUNT_MASK = _FILL_ONE - np.uint64(1)
_ALL_ONES_GROUP = (np.uint64(1) << np.uint64(_GROUP_BITS)) - np.uint64(1)

#: Per-byte popcount lookup table: emptiness and cardinality checks run
#: as one table gather + sum over the uint8 buffer instead of expanding
#: every bit through ``np.unpackbits``.
_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8).reshape(256, 1), axis=1
).sum(axis=1).astype(np.uint8)


class Bitmap:
    """A fixed-length bitmap backed by a little-endian uint8 buffer."""

    def __init__(self, nbits: int, buffer: np.ndarray | None = None) -> None:
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        self.nbits = int(nbits)
        nbytes = (self.nbits + 7) // 8
        if buffer is None:
            self.buffer = np.zeros(nbytes, dtype=np.uint8)
        else:
            buffer = np.asarray(buffer, dtype=np.uint8)
            if buffer.size != nbytes:
                raise ValueError(f"buffer must be {nbytes} bytes, got {buffer.size}")
            self.buffer = buffer.copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_positions(cls, positions: np.ndarray, nbits: int) -> "Bitmap":
        """Bitmap with the given bit positions set."""
        bm = cls(nbits)
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size:
            if pos.min() < 0 or pos.max() >= nbits:
                raise ValueError(f"positions out of range [0, {nbits})")
            np.bitwise_or.at(bm.buffer, pos >> 3, (1 << (pos & 7)).astype(np.uint8))
        return bm

    def to_positions(self) -> np.ndarray:
        """Sorted positions of the set bits."""
        bits = np.unpackbits(self.buffer, bitorder="little")[: self.nbits]
        return np.flatnonzero(bits).astype(np.int64)

    def get(self, positions: np.ndarray) -> np.ndarray:
        """Boolean membership test for an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() >= self.nbits):
            raise ValueError(f"positions out of range [0, {self.nbits})")
        return ((self.buffer[pos >> 3] >> (pos & 7).astype(np.uint8)) & 1).astype(bool)

    def count(self) -> int:
        """Number of set bits (vectorized per-byte popcount).

        The final byte's padding bits (little-endian: its high bits)
        are masked out, so the count is exact even for buffers whose
        padding was dirtied by external writes.
        """
        if self.nbits == 0:
            return 0
        tail_bits = self.nbits % 8
        if tail_bits == 0:
            return int(_POPCOUNT[self.buffer].sum(dtype=np.int64))
        total = int(_POPCOUNT[self.buffer[:-1]].sum(dtype=np.int64))
        last = self.buffer[-1] & np.uint8((1 << tail_bits) - 1)
        return total + int(_POPCOUNT[last])

    @property
    def nbytes(self) -> int:
        return int(self.buffer.nbytes)

    # ------------------------------------------------------------------
    def _check_compat(self, other: "Bitmap") -> None:
        if self.nbits != other.nbits:
            raise ValueError(f"bitmap length mismatch: {self.nbits} vs {other.nbits}")

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check_compat(other)
        return Bitmap(self.nbits, self.buffer | other.buffer)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._check_compat(other)
        return Bitmap(self.nbits, self.buffer & other.buffer)

    def __invert__(self) -> "Bitmap":
        out = Bitmap(self.nbits, ~self.buffer)
        # Clear the padding bits beyond nbits.
        extra = out.buffer.size * 8 - out.nbits
        if extra:
            out.buffer[-1] &= np.uint8(0xFF >> extra)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.nbits == other.nbits and np.array_equal(self.buffer, other.buffer)

    def __repr__(self) -> str:
        return f"Bitmap(nbits={self.nbits}, set={self.count()})"

    # ------------------------------------------------------------------
    def wah_bytes(self) -> bytes:
        """WAH-compressed serialization of this bitmap."""
        return wah_encode(self.buffer, self.nbits).tobytes()

    @classmethod
    def from_wah(cls, payload: bytes, nbits: int) -> "Bitmap":
        words = np.frombuffer(payload, dtype=np.uint64)
        return cls(nbits, wah_decode(words, nbits))


def _group_values(buffer: np.ndarray, nbits: int) -> np.ndarray:
    """Split the bit stream into uint64 values of 63 bits each.

    Vectorized by padding every 63-bit group with a zero MSB and
    viewing the result as little-endian uint64 words.
    """
    bits = np.unpackbits(np.asarray(buffer, dtype=np.uint8), bitorder="little")[:nbits]
    n_groups = (nbits + _GROUP_BITS - 1) // _GROUP_BITS
    padded = np.zeros(n_groups * _GROUP_BITS, dtype=np.uint8)
    padded[:nbits] = bits
    matrix = np.concatenate(
        (padded.reshape(n_groups, _GROUP_BITS), np.zeros((n_groups, 1), dtype=np.uint8)),
        axis=1,
    )
    return np.packbits(matrix.reshape(-1), bitorder="little").view("<u8").copy()


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[s, s+1, ..., s+l-1]`` for each (start, length)."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)


def _groups_to_words(groups: np.ndarray) -> np.ndarray:
    """Run-length encode a sequence of 63-bit group values into WAH words."""
    is_zero = groups == 0
    is_one = groups == _ALL_ONES_GROUP
    kind = np.where(is_zero, 0, np.where(is_one, 1, 2)).astype(np.int8)
    change = np.flatnonzero(np.diff(kind)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [kind.size]))
    run_kind = kind[starts]
    run_len = (ends - starts).astype(np.int64)
    if np.any(run_len[run_kind != 2] > int(_COUNT_MASK)):
        raise ValueError("fill run exceeds the 62-bit count field")

    # Each fill run emits one word; each literal run emits run_len words.
    words_per_run = np.where(run_kind == 2, run_len, 1)
    out = np.empty(int(words_per_run.sum()), dtype=np.uint64)
    out_offsets = np.concatenate(([0], np.cumsum(words_per_run)[:-1]))

    fill_mask = run_kind != 2
    fill_words = _FILL_FLAG | run_len[fill_mask].astype(np.uint64)
    fill_words |= np.where(run_kind[fill_mask] == 1, _FILL_ONE, np.uint64(0))
    out[out_offsets[fill_mask]] = fill_words

    lit_mask = run_kind == 2
    src = _concat_ranges(starts[lit_mask], run_len[lit_mask])
    dst = _concat_ranges(out_offsets[lit_mask], run_len[lit_mask])
    out[dst] = groups[src]
    return out


def wah_encode(buffer: np.ndarray, nbits: int) -> np.ndarray:
    """Compress a little-endian bit buffer into WAH words (vectorized)."""
    if nbits == 0:
        return np.empty(0, dtype=np.uint64)
    return _groups_to_words(_group_values(buffer, nbits))


def wah_from_positions(positions: np.ndarray, nbits: int) -> np.ndarray:
    """WAH words of the bitmap with the given bits set.

    Builds the encoding from the set positions via the (small) dense
    array of 63-bit group values, skipping the full bit buffer — this
    is what makes indexing thousands of sparse precision bins (the
    FastBit baseline) tractable at benchmark scale.
    """
    if nbits == 0:
        return np.empty(0, dtype=np.uint64)
    pos = np.unique(np.asarray(positions, dtype=np.int64))
    if pos.size and (pos[0] < 0 or pos[-1] >= nbits):
        raise ValueError(f"positions out of range [0, {nbits})")
    n_groups = (nbits + _GROUP_BITS - 1) // _GROUP_BITS
    if pos.size == 0:
        return np.array([_FILL_FLAG | np.uint64(n_groups)], dtype=np.uint64)

    group_ids = pos // _GROUP_BITS
    in_group = (pos % _GROUP_BITS).astype(np.uint64)
    groups = np.zeros(n_groups, dtype=np.uint64)
    np.bitwise_or.at(groups, group_ids, np.uint64(1) << in_group)
    return _groups_to_words(groups)


def wah_expand_groups(words: np.ndarray) -> np.ndarray:
    """Expand WAH words into the dense array of 63-bit group values.

    Queries that OR many bin bitmaps (FastBit-style) do so in this
    compact group domain — one ``uint64`` per 63 bits — and expand to a
    bit buffer only once at the end, mirroring how real WAH query
    engines avoid materializing every operand bitmap.
    """
    words = np.asarray(words, dtype=np.uint64)
    is_fill = (words & _FILL_FLAG) != 0
    counts = np.where(is_fill, words & _COUNT_MASK, np.uint64(1)).astype(np.int64)
    fill_values = np.where((words & _FILL_ONE) != 0, _ALL_ONES_GROUP, np.uint64(0))
    values = np.where(is_fill, fill_values, words)
    return np.repeat(values, counts)


def wah_cardinality(words: np.ndarray) -> int:
    """Number of set bits in a WAH encoding, without decoding it.

    One-fill words contribute ``63 * run_length`` bits; literal words
    are popcounted directly through the per-byte table (their MSB is 0
    by construction, so no correction is needed).  The tail group's
    padding bits are zero in every encoding produced by this module —
    a one-fill can only cover all-ones groups — so the returned count
    equals ``Bitmap.count()`` of the decoded bitmap for any ``nbits``.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.size == 0:
        return 0
    is_fill = (words & _FILL_FLAG) != 0
    one_fill = is_fill & ((words & _FILL_ONE) != 0)
    filled = int((words[one_fill] & _COUNT_MASK).sum()) * _GROUP_BITS
    literals = words[~is_fill]
    return filled + int(_POPCOUNT[literals.view(np.uint8)].sum(dtype=np.int64))


def groups_to_bitmap(groups: np.ndarray, nbits: int) -> "Bitmap":
    """Pack dense 63-bit group values back into a :class:`Bitmap`."""
    n_groups = (nbits + _GROUP_BITS - 1) // _GROUP_BITS
    if groups.size != n_groups:
        raise ValueError(f"got {groups.size} groups, expected {n_groups}")
    bits64 = np.unpackbits(
        groups.astype("<u8").view(np.uint8), bitorder="little"
    ).reshape(n_groups, 64)
    bits = bits64[:, :_GROUP_BITS].reshape(-1)[:nbits]
    return Bitmap(nbits, np.packbits(bits, bitorder="little"))


def wah_decode(words: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`wah_encode`; returns the uint8 bit buffer."""
    words = np.asarray(words, dtype=np.uint64)
    is_fill = (words & _FILL_FLAG) != 0
    counts = np.where(is_fill, words & _COUNT_MASK, np.uint64(1)).astype(np.int64)
    fill_values = np.where((words & _FILL_ONE) != 0, _ALL_ONES_GROUP, np.uint64(0))
    values = np.where(is_fill, fill_values, words)
    groups = np.repeat(values, counts)
    n_groups = (nbits + _GROUP_BITS - 1) // _GROUP_BITS
    if groups.size != n_groups:
        raise ValueError(f"decoded {groups.size} groups, expected {n_groups}")
    # Expand each group value to 64 little-endian bits and drop the pad.
    bits64 = np.unpackbits(
        groups.astype("<u8").view(np.uint8), bitorder="little"
    ).reshape(n_groups, 64)
    bits = bits64[:, :_GROUP_BITS].reshape(-1)[:nbits]
    return np.packbits(bits, bitorder="little")
