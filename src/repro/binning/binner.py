"""Bin assignment and aligned-bin classification.

A :class:`BinScheme` wraps a set of bin edges and provides the two
operations MLOC's planner needs:

* ``assign`` — vectorized mapping from values to bin ids (used by the
  writer when scattering chunk elements into bin streams);
* ``bins_overlapping`` — which bins a value constraint touches, and
  which of those are *aligned* (bin interval fully inside the
  constraint), enabling the paper's index-only fast path for
  region-only queries (Section III-D1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinScheme", "per_bin_segments"]


class BinScheme:
    """Half-open value bins ``[edges[i], edges[i+1])``, last bin closed.

    Values below ``edges[0]`` or above ``edges[-1]`` are clamped into
    the first/last bin (boundaries come from a sample, so the full
    dataset can slightly exceed the sampled range).  Because of the
    clamping, the *effective* coverage of the first and last bins is
    unbounded, and they are therefore never classified as aligned
    unless the constraint itself is unbounded on that side.
    """

    def __init__(self, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-D array with at least two entries")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = edges

    @property
    def n_bins(self) -> int:
        return int(self.edges.size - 1)

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin id of every value (vectorized, clamped at the ends)."""
        values = np.asarray(values)
        ids = np.searchsorted(self.edges, values, side="right") - 1
        return np.clip(ids, 0, self.n_bins - 1).astype(np.int32)

    def bin_bounds(self, bin_id: int) -> tuple[float, float]:
        """Nominal ``[lo, hi)`` interval of a bin (ignoring clamping)."""
        if not (0 <= bin_id < self.n_bins):
            raise ValueError(f"bin_id {bin_id} out of range [0, {self.n_bins})")
        return float(self.edges[bin_id]), float(self.edges[bin_id + 1])

    def bins_overlapping(
        self, lo: float, hi: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bins intersecting the closed value constraint ``[lo, hi]``.

        Returns
        -------
        (bin_ids, aligned)
            ``bin_ids`` — sorted ids of the bins that can contain
            qualifying values; ``aligned`` — boolean mask marking bins
            whose entire content is guaranteed to satisfy the
            constraint (no value filtering needed).
        """
        if hi < lo:
            raise ValueError(f"empty value constraint [{lo}, {hi}]")
        first = int(np.clip(np.searchsorted(self.edges, lo, side="right") - 1, 0, self.n_bins - 1))
        last = int(np.clip(np.searchsorted(self.edges, hi, side="right") - 1, 0, self.n_bins - 1))
        # A constraint entirely below/above all edges still clamps into
        # the end bins, which is correct: clamped outliers live there.
        bin_ids = np.arange(first, last + 1, dtype=np.int32)

        lo_edges = self.edges[bin_ids]
        hi_edges = self.edges[bin_ids + 1]
        aligned = (lo_edges >= lo) & (hi_edges <= hi)
        # End bins hold clamped out-of-range values, so their effective
        # coverage is unbounded: only aligned if the constraint is too.
        aligned[bin_ids == 0] &= np.isneginf(lo)
        aligned[bin_ids == self.n_bins - 1] &= np.isposinf(hi)
        return bin_ids, aligned


def per_bin_segments(
    values: np.ndarray, bin_ids: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable-sort elements by bin, returning the grouped layout.

    Parameters
    ----------
    values:
        The element values of one chunk (1-D).
    bin_ids:
        Bin id of each element, as returned by :meth:`BinScheme.assign`.
    n_bins:
        Total number of bins.

    Returns
    -------
    (perm, sorted_values, offsets)
        ``perm`` — stable permutation grouping elements by bin (within
        a bin the original order — i.e. increasing local position — is
        preserved); ``sorted_values = values[perm]``;
        ``offsets`` — length ``n_bins + 1`` prefix offsets such that
        bin ``b``'s elements occupy ``[offsets[b], offsets[b+1])``.
    """
    values = np.asarray(values)
    bin_ids = np.asarray(bin_ids)
    if values.shape != bin_ids.shape or values.ndim != 1:
        raise ValueError("values and bin_ids must be equal-length 1-D arrays")
    perm = np.argsort(bin_ids, kind="stable")
    counts = np.bincount(bin_ids, minlength=n_bins)
    if counts.size > n_bins:
        raise ValueError("bin_ids contains ids >= n_bins")
    offsets = np.zeros(n_bins + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return perm, values[perm], offsets
