"""Bin boundary selection: equal-frequency (MLOC's default) and equal-width.

Section III-B1: MLOC bins elements by value so that value-constrained
queries touch only the bins overlapping the constraint; *equal
frequency* binning is used to balance per-bin access cost.  Following
Section IV-A1, boundaries are computed from a *sample* of the dataset
and then applied to the whole dataset, so each bin holds approximately
(not exactly) the same number of elements.
"""

from __future__ import annotations

import numpy as np

__all__ = ["equal_frequency_boundaries", "equal_width_boundaries"]


def equal_frequency_boundaries(
    sample: np.ndarray, n_bins: int, *, assume_sorted: bool = False
) -> np.ndarray:
    """Quantile-based bin edges estimated from ``sample``.

    Returns ``n_bins + 1`` strictly increasing finite edges; the outer
    edges are the sample min/max.  Values outside the sample range are
    clamped into the first/last bin at assignment time (see
    :class:`~repro.binning.binner.BinScheme`).

    Raises
    ------
    ValueError
        If the sample has fewer distinct values than bins (equal
        frequency binning is then impossible without merging bins).
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    flat = np.asarray(sample, dtype=np.float64).reshape(-1)
    if flat.size == 0:
        raise ValueError("cannot derive boundaries from an empty sample")
    if not np.all(np.isfinite(flat)):
        raise ValueError("sample contains non-finite values")
    data = flat if assume_sorted else np.sort(flat)
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.quantile(data, quantiles, method="linear")
    # Quantiles of heavily repeated values can coincide; nudge duplicate
    # edges apart so every bin is a non-empty half-open interval.
    edges = _deduplicate(edges)
    return edges


def equal_width_boundaries(lo: float, hi: float, n_bins: int) -> np.ndarray:
    """Uniformly spaced edges over ``[lo, hi]``."""
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if not (np.isfinite(lo) and np.isfinite(hi)) or hi <= lo:
        raise ValueError(f"need finite lo < hi, got [{lo}, {hi}]")
    return np.linspace(lo, hi, n_bins + 1)


def _deduplicate(edges: np.ndarray) -> np.ndarray:
    """Make edges strictly increasing by minimal upward nudges."""
    out = edges.copy()
    for i in range(1, out.size):
        if out[i] <= out[i - 1]:
            out[i] = np.nextafter(out[i - 1], np.inf)
    return out
