"""Value-based binning (Section III-B1): equal-frequency bin boundaries,
vectorized bin assignment, and the aligned-bin classification behind
MLOC's index-only fast path for region queries."""

from repro.binning.binner import BinScheme, per_bin_segments
from repro.binning.boundaries import equal_frequency_boundaries, equal_width_boundaries

__all__ = [
    "BinScheme",
    "equal_frequency_boundaries",
    "equal_width_boundaries",
    "per_bin_segments",
]
