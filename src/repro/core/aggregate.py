"""Aggregation push-down: statistics computed inside the query engine.

The paper motivates PLoD with *precision-driven data analytics* — "mean
value analysis", statistics and data-mining kernels that tolerate
reduced precision (Section III-B3: level 2 "is already enough for many
statistic and data mining functions").  Those kernels do not need the
qualifying values shipped to the caller at all: each simulated MPI rank
can reduce its local values and contribute only a tiny partial
aggregate to the gather, exactly as an MPI_Reduce would.

:func:`aggregate_query` runs any single-variable :class:`Query` and
reduces the qualifying values with one of the built-in operators
(count / sum / mean / min / max / histogram), reporting the same
component-time decomposition as a normal query plus the (much smaller)
communication payload of the partial aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import Query
from repro.core.result import ComponentTimes
from repro.core.store import MLOCStore
from repro.parallel.simmpi import SimCommunicator

__all__ = ["AggregateResult", "aggregate_query", "AGGREGATE_OPS"]

AGGREGATE_OPS = ("count", "sum", "mean", "min", "max", "histogram")


@dataclass
class AggregateResult:
    """Outcome of an aggregation push-down."""

    op: str
    #: Scalar result (count/sum/mean/min/max) or ``None`` for histogram.
    value: float | None
    #: Histogram counts and edges (histogram op only).
    histogram: tuple[np.ndarray, np.ndarray] | None
    n_points: int
    times: ComponentTimes
    stats: dict


def aggregate_query(
    store: MLOCStore,
    query: Query,
    op: str,
    *,
    n_bins: int = 100,
    value_range: tuple[float, float] | None = None,
) -> AggregateResult:
    """Reduce the values qualifying ``query`` without returning them.

    Parameters
    ----------
    store:
        The variable to aggregate over.
    query:
        Any value/spatial/PLoD query; ``output`` is forced to
        ``"values"`` (aggregation needs values).
    op:
        One of :data:`AGGREGATE_OPS`.
    n_bins, value_range:
        Histogram parameters (``value_range`` defaults to the store's
        bin-edge span, which the metadata already knows — no extra
        pass over the data).
    """
    if op not in AGGREGATE_OPS:
        raise ValueError(f"op must be one of {AGGREGATE_OPS}, got {op!r}")
    if query.output != "values":
        query = Query(
            value_range=query.value_range,
            region=query.region,
            output="values",
            plod_level=query.plod_level,
            resolution_level=query.resolution_level,
        )

    # Run the full parallel query (per-rank work is identical up to the
    # gather), then replace the result gather with an aggregate reduce:
    # the communication payload becomes one partial per rank.
    result = store.query(query)
    values = result.values
    n_points = int(values.size)

    comm = SimCommunicator(store.executor.n_ranks, store.executor.comm_cost)
    if op == "histogram":
        if value_range is None:
            edges_span = (float(store.meta.edges[0]), float(store.meta.edges[-1]))
        else:
            edges_span = (float(value_range[0]), float(value_range[1]))
        counts, edges = np.histogram(values, bins=n_bins, range=edges_span)
        # Each rank contributes one counts vector; reduce is a sum.
        partials = [counts // comm.size] * comm.size
        comm.allreduce(partials, lambda a, b: a + b)
        agg_value = None
        histogram = (counts, edges)
    else:
        partial = np.zeros(3)  # (count, sum, extreme) per rank
        comm.gather([partial] * comm.size)
        histogram = None
        if op == "count":
            agg_value = float(n_points)
        elif op == "sum":
            agg_value = float(values.sum()) if n_points else 0.0
        elif op == "mean":
            agg_value = float(values.mean()) if n_points else float("nan")
        elif op == "min":
            agg_value = float(values.min()) if n_points else float("nan")
        else:  # max
            agg_value = float(values.max()) if n_points else float("nan")

    # Replace the bulk result-gather communication with the aggregate
    # reduce: the query's comm term was sized by the full value payload,
    # which aggregation push-down precisely avoids.
    times = ComponentTimes(
        io=result.times.io,
        decompression=result.times.decompression,
        reconstruction=result.times.reconstruction,
        communication=comm.comm_seconds,
    )
    stats = dict(result.stats)
    stats["gather_bytes_avoided"] = n_points * 8 + n_points * 8  # values+positions
    return AggregateResult(
        op=op,
        value=agg_value,
        histogram=histogram,
        n_points=n_points,
        times=times,
        stats=stats,
    )
