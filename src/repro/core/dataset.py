"""MLOCDataset: a multi-variable, multi-timestep facade.

The paper's data model is multi-variate, spatio-temporal simulation
output: several physical variables on a shared grid, one snapshot per
simulation timestep.  ``MLOCDataset`` manages that catalog over one
dataset root on the simulated PFS — each (variable, timestep) pair is
an independent MLOC store (its own bin subfiles and metadata), which is
exactly how the framework composes: queries on one snapshot never touch
another's files, and multi-variable access joins stores that share the
grid.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MLOCConfig
from repro.core.multivar import MultiVarResult, multi_variable_query
from repro.core.store import MLOCStore
from repro.core.writer import MLOCWriter, WriteReport
from repro.pfs.simfs import SimulatedPFS

__all__ = ["MLOCDataset"]


class MLOCDataset:
    """Catalog of MLOC-encoded variables/timesteps under one root."""

    def __init__(
        self,
        fs: SimulatedPFS,
        root: str,
        config: MLOCConfig,
        *,
        n_ranks: int = 8,
        write_backend: str = "serial",
        write_workers: int | None = None,
    ) -> None:
        self.fs = fs
        self.root = root.rstrip("/")
        self.config = config
        self.n_ranks = n_ranks
        self._writer = MLOCWriter(
            fs,
            self.root,
            config,
            write_backend=write_backend,
            write_workers=write_workers,
        )
        self._stores: dict[str, MLOCStore] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(variable: str, timestep: int | None) -> str:
        if "@" in variable or "/" in variable:
            raise ValueError(
                f"variable name must not contain '@' or '/': {variable!r}"
            )
        return variable if timestep is None else f"{variable}@{timestep:06d}"

    def write(
        self, data: np.ndarray, variable: str, timestep: int | None = None
    ) -> WriteReport:
        """Encode one variable snapshot through the MLOC pipeline."""
        key = self._key(variable, timestep)
        report = self._writer.write(data, variable=key)
        self._stores.pop(key, None)  # invalidate any cached open store
        return report

    def store(self, variable: str, timestep: int | None = None) -> MLOCStore:
        """Open (and cache) the store of one variable snapshot."""
        key = self._key(variable, timestep)
        if key not in self._stores:
            self._stores[key] = MLOCStore.open(
                self.fs, self.root, key, n_ranks=self.n_ranks
            )
        return self._stores[key]

    # ------------------------------------------------------------------
    def variables(self) -> list[str]:
        """All (variable[@timestep]) keys present under the root."""
        prefix = self.root + "/"
        keys = set()
        for path in self.fs.list_files(prefix):
            rest = path[len(prefix) :]
            if "/" in rest:
                keys.add(rest.split("/", 1)[0])
        return sorted(keys)

    def timesteps(self, variable: str) -> list[int]:
        """Timesteps stored for ``variable`` (empty for static vars)."""
        out = []
        for key in self.variables():
            if key.startswith(variable + "@"):
                out.append(int(key.split("@", 1)[1]))
        return sorted(out)

    def total_bytes(self) -> int:
        """Total storage under the dataset root."""
        return self.fs.total_bytes(self.root + "/")

    # ------------------------------------------------------------------
    def multi_variable_query(
        self,
        select_variable: str,
        fetch_variables: list[str],
        value_range: tuple[float, float],
        *,
        timestep: int | None = None,
        region: tuple[tuple[int, int], ...] | None = None,
        plod_level: int = 7,
    ) -> MultiVarResult:
        """Section III-D4 access across this dataset's variables."""
        select = self.store(select_variable, timestep)
        fetch = [self.store(v, timestep) for v in fetch_variables]
        result = multi_variable_query(
            select,
            fetch,
            value_range,
            region=region,
            plod_level=plod_level,
        )
        # Stores are keyed by "variable@timestep"; present results under
        # the caller's plain variable names.
        result.values = {
            name: result.values[store.variable]
            for name, store in zip(fetch_variables, fetch)
        }
        return result
