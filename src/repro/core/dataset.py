"""MLOCDataset: a multi-variable, multi-timestep facade.

The paper's data model is multi-variate, spatio-temporal simulation
output: several physical variables on a shared grid, one snapshot per
simulation timestep.  ``MLOCDataset`` manages that catalog over one
dataset root on the simulated PFS — each (variable, timestep) pair is
an independent MLOC store (its own bin subfiles and metadata), which is
exactly how the framework composes: queries on one snapshot never touch
another's files, and multi-variable access joins stores that share the
grid.

Two write paths coexist:

``write()``
    The original sealed-batch path: encode one member, no catalog
    record beyond the files themselves.
``append()``
    The in-situ ingest path (ROADMAP item 4b): encode one member
    through the same three-stage writer pipeline, then commit it with
    an atomic manifest bump (``repro.core.manifest``).  Readers pin a
    :class:`DatasetSnapshot` — generation ``G`` sees exactly the
    members sealed at ``G``, bit-identical no matter how many appends
    land mid-query — and call :meth:`DatasetSnapshot.refresh` to
    surface newer generations.

Open member handles are registered per ``(key, meta_crc)``: two
snapshots of the same sealed member share one :class:`MLOCStore` (one
``PlanContext``, one plan LRU), while a rewritten member gets a fresh
handle and a fresh cache generation, so stale planning tables or
decoded blocks can never serve a newer layout.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.config import MLOCConfig
from repro.core.manifest import (
    Manifest,
    ManifestError,
    ManifestMember,
    commit_manifest,
    load_manifest,
    load_manifest_at,
)
from repro.core.meta import StoreMeta
from repro.core.multivar import MultiVarResult, multi_variable_query
from repro.core.query import Query
from repro.core.result import QueryResult
from repro.core.sharded import ShardedMLOCStore
from repro.core.store import MLOCStore
from repro.core.writer import MLOCWriter, WriteReport
from repro.pfs.blockcache import BlockCache
from repro.pfs.simfs import SimulatedPFS

__all__ = ["DatasetSnapshot", "MLOCDataset"]


class MLOCDataset:
    """Catalog of MLOC-encoded variables/timesteps under one root."""

    def __init__(
        self,
        fs: SimulatedPFS,
        root: str,
        config: MLOCConfig,
        *,
        n_ranks: int = 8,
        write_backend: str = "serial",
        write_workers: int | None = None,
        cache_bytes: int = 0,
        store_options: dict | None = None,
    ) -> None:
        self.fs = fs
        self.root = root.rstrip("/")
        self.config = config
        self.n_ranks = n_ranks
        self._writer = MLOCWriter(
            fs,
            self.root,
            config,
            write_backend=write_backend,
            write_workers=write_workers,
        )
        #: One decoded-block cache shared by every member handle this
        #: dataset opens; entries are keyed by each member's sealed
        #: generation (its ``meta_crc``), so a rewrite can never serve
        #: stale blocks.
        self.cache = BlockCache(cache_bytes) if cache_bytes > 0 else None
        self._store_options = dict(store_options or {})
        #: Open member handles, keyed ``(key, meta_crc)``.
        self._handles: dict[tuple[str, int], MLOCStore] = {}
        self._manifest: Manifest | None = None
        self._generations_seen: set[int] = set()
        self.snapshot_refreshes = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(variable: str, timestep: int | None) -> str:
        if "@" in variable or "/" in variable:
            raise ValueError(
                f"variable name must not contain '@' or '/': {variable!r}"
            )
        return variable if timestep is None else f"{variable}@{timestep:06d}"

    def write(
        self, data: np.ndarray, variable: str, timestep: int | None = None
    ) -> WriteReport:
        """Encode one variable snapshot through the MLOC pipeline."""
        key = self._key(variable, timestep)
        report = self._writer.write(data, variable=key)
        self._drop_handles(key)  # invalidate any cached open store
        return report

    def append(
        self, data: np.ndarray, variable: str, timestep: int | None = None
    ) -> WriteReport:
        """Seal one new member and commit an atomic manifest bump.

        The member's subfiles (bins, metadata, per-member ``hbi``/
        ``peb``) are written first through the ordinary three-stage
        pipeline, then ``manifest.g<N+1>`` is committed in one write.
        A crash before the commit leaves only orphaned files that no
        generation references (``fsck --dataset`` reports them); a torn
        commit leaves an unreadable manifest that readers skip — either
        way generation ``N`` stays fully readable.
        """
        key = self._key(variable, timestep)
        current = load_manifest(self.fs, self.root)
        if current.member(key) is not None:
            raise ManifestError(
                f"member {key!r} already sealed in generation "
                f"{current.generation}"
            )
        report = self._writer.write(data, variable=key)
        member = ManifestMember(
            key=key,
            timestep=timestep,
            sealed_generation=current.generation + 1,
            meta_crc=report.meta_crc,
            total_bytes=report.total_bytes,
        )
        manifest = current.with_member(member)
        commit_manifest(self.fs, self.root, manifest)
        self._manifest = manifest
        self._generations_seen.add(manifest.generation)
        self._drop_handles(key)
        return report

    # ------------------------------------------------------------------
    def _drop_handles(self, key: str) -> None:
        """Forget open handles of ``key`` (after a rewrite/seal)."""
        for reg in [r for r in self._handles if r[0] == key]:
            stale = self._handles.pop(reg)
            if self.cache is not None:
                self.cache.invalidate_generation(stale.generation)

    def _open_member(
        self, key: str, expect_crc: int | None = None, **overrides
    ) -> MLOCStore:
        """Open ``key``, optionally pinned to a sealed ``meta_crc``.

        Handles opened with the dataset's default options are shared
        through the ``(key, meta_crc)`` registry — the same sealed
        member reached through any number of snapshots reuses one
        ``PlanContext`` and plan LRU.  Option overrides bypass the
        registry (a differently configured handle is a different view).
        """
        meta_path = f"{self.root}/{key}/meta"
        raw = bytes(self.fs.session().open(meta_path).read_all())
        crc = zlib.crc32(raw)
        if expect_crc is not None and crc != expect_crc:
            raise ManifestError(
                f"member {key!r}: on-disk metadata (crc {crc:#010x}) does "
                f"not match its sealed manifest record ({expect_crc:#010x})"
            )
        reg = (key, crc)
        if not overrides and reg in self._handles:
            return self._handles[reg]
        meta = StoreMeta.from_bytes(raw)
        options = {"n_ranks": self.n_ranks, **self._store_options, **overrides}
        if (
            self.cache is not None
            and "cache" not in options
            and not options.get("cache_bytes")
        ):
            options["cache"] = self.cache
        store = MLOCStore(
            self.fs, f"{self.root}/{key}", meta, generation=crc, **options
        )
        if not overrides:
            self._handles[reg] = store
        return store

    def store(self, variable: str, timestep: int | None = None) -> MLOCStore:
        """Open (and cache) the store of one variable snapshot."""
        return self._open_member(self._key(variable, timestep))

    # ------------------------------------------------------------------
    @property
    def manifest(self) -> Manifest:
        """The latest manifest generation this handle has observed."""
        if self._manifest is None:
            self._manifest = load_manifest(self.fs, self.root)
            self._generations_seen.add(self._manifest.generation)
        return self._manifest

    @property
    def generation(self) -> int:
        return self.manifest.generation

    def snapshot(self, generation: int | None = None) -> "DatasetSnapshot":
        """Pin a snapshot: the member set of exactly one generation.

        Default is the newest committed generation on disk; passing
        ``generation`` re-opens a specific one (the fresh-open view the
        snapshot-isolation property tests bit-compare against).
        """
        if generation is None:
            manifest = load_manifest(self.fs, self.root)
            self._manifest = manifest
        else:
            manifest = load_manifest_at(self.fs, self.root, generation)
        self._generations_seen.add(manifest.generation)
        return DatasetSnapshot(self, manifest)

    def runtime_stats(self) -> dict:
        """Lifecycle counters of this catalog handle."""
        return {
            "generation": self.generation,
            "generations_seen": len(self._generations_seen),
            "snapshot_refreshes": self.snapshot_refreshes,
            "open_handles": len(self._handles),
        }

    # ------------------------------------------------------------------
    def variables(self) -> list[str]:
        """All (variable[@timestep]) keys present under the root."""
        prefix = self.root + "/"
        keys = set()
        for path in self.fs.list_files(prefix):
            rest = path[len(prefix) :]
            if "/" in rest:
                keys.add(rest.split("/", 1)[0])
        return sorted(keys)

    def timesteps(self, variable: str) -> list[int]:
        """Timesteps stored for ``variable`` (empty for static vars)."""
        out = []
        for key in self.variables():
            if key.startswith(variable + "@"):
                out.append(int(key.split("@", 1)[1]))
        return sorted(out)

    def total_bytes(self) -> int:
        """Total storage under the dataset root."""
        return self.fs.total_bytes(self.root + "/")

    # ------------------------------------------------------------------
    def multi_variable_query(
        self,
        select_variable: str,
        fetch_variables: list[str],
        value_range: tuple[float, float],
        *,
        timestep: int | None = None,
        region: tuple[tuple[int, int], ...] | None = None,
        plod_level: int = 7,
    ) -> MultiVarResult:
        """Section III-D4 access across this dataset's variables."""
        select = self.store(select_variable, timestep)
        fetch = [self.store(v, timestep) for v in fetch_variables]
        result = multi_variable_query(
            select,
            fetch,
            value_range,
            region=region,
            plod_level=plod_level,
        )
        # Stores are keyed by "variable@timestep"; present results under
        # the caller's plain variable names.
        result.values = {
            name: result.values[store.variable]
            for name, store in zip(fetch_variables, fetch)
        }
        return result


class DatasetSnapshot:
    """An immutable pin of one manifest generation.

    Every accessor resolves against the pinned member set only: a
    member sealed by a later generation does not exist here (store
    lookups raise ``KeyError``), and because sealed members never
    change, every query through this snapshot is bit-identical to the
    same query against a fresh open pinned at the same generation —
    regardless of concurrent appends.  ``refresh()`` returns a *new*
    snapshot at the newest committed generation; this one stays valid.
    """

    def __init__(self, dataset: MLOCDataset, manifest: Manifest) -> None:
        self._dataset = dataset
        self.manifest = manifest
        self._stores: dict[str, MLOCStore] = {}

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self.manifest.generation

    def members(self) -> tuple[ManifestMember, ...]:
        return self.manifest.members

    def variables(self) -> list[str]:
        return sorted({m.variable for m in self.manifest.members})

    def timesteps(self, variable: str) -> list[int]:
        return sorted(
            m.timestep
            for m in self.manifest.members
            if m.variable == variable and m.timestep is not None
        )

    def has(self, variable: str, timestep: int | None = None) -> bool:
        key = MLOCDataset._key(variable, timestep)
        return self.manifest.member(key) is not None

    def member(
        self, variable: str, timestep: int | None = None
    ) -> ManifestMember:
        key = MLOCDataset._key(variable, timestep)
        member = self.manifest.member(key)
        if member is None:
            raise KeyError(
                f"member {key!r} is not sealed in generation "
                f"{self.generation}"
            )
        return member

    # ------------------------------------------------------------------
    def store(
        self, variable: str, timestep: int | None = None, **options
    ) -> MLOCStore:
        """Open one sealed member, pinned to its recorded ``meta_crc``."""
        member = self.member(variable, timestep)
        if not options and member.key in self._stores:
            return self._stores[member.key]
        store = self._dataset._open_member(
            member.key, expect_crc=member.meta_crc, **options
        )
        if not options:
            self._stores[member.key] = store
        return store

    def sharded_store(
        self,
        variable: str,
        timestep: int | None = None,
        *,
        n_shards: int = 2,
        **options,
    ) -> ShardedMLOCStore:
        """Open one sealed member as bin-range shards (same pinning)."""
        member = self.member(variable, timestep)
        dataset = self._dataset
        meta_path = f"{dataset.root}/{member.key}/meta"
        raw = bytes(dataset.fs.session().open(meta_path).read_all())
        if zlib.crc32(raw) != member.meta_crc:
            raise ManifestError(
                f"member {member.key!r}: on-disk metadata does not match "
                f"its sealed manifest record"
            )
        opts = {"n_ranks": dataset.n_ranks, **dataset._store_options, **options}
        if (
            dataset.cache is not None
            and "cache" not in opts
            and not opts.get("cache_bytes")
        ):
            opts["cache"] = dataset.cache
        return ShardedMLOCStore(
            dataset.fs,
            f"{dataset.root}/{member.key}",
            StoreMeta.from_bytes(raw),
            n_shards=n_shards,
            generation=member.meta_crc,
            **opts,
        )

    def refresh(self) -> "DatasetSnapshot":
        """A new snapshot pinned at the newest committed generation."""
        self._dataset.snapshot_refreshes += 1
        return self._dataset.snapshot()

    # ------------------------------------------------------------------
    def query_series(
        self,
        variable: str,
        query: Query,
        timesteps: list[int] | None = None,
    ) -> dict[int, QueryResult]:
        """Run one query across this snapshot's timesteps of a variable.

        Cross-member planning is the union of per-member plans: each
        sealed member carries its own ``hbi``/``peb`` records built at
        its seal, so no whole-dataset index exists (or is ever rebuilt
        on append) — the planner prunes within each member
        independently.
        """
        if timesteps is None:
            timesteps = self.timesteps(variable)
        out: dict[int, QueryResult] = {}
        for t in timesteps:
            out[t] = self.store(variable, t).query(query)
        return out
