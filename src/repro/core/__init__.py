"""MLOC core: configuration, multi-level writer, store, queries.

The primary public API of the reproduction:

* :func:`mloc_col` / :func:`mloc_iso` / :func:`mloc_isa` build the three
  paper configurations; :class:`MLOCConfig` is fully general.
* :class:`MLOCWriter` encodes arrays through the multi-level layout
  pipeline onto a simulated PFS.
* :class:`MLOCStore` answers :class:`Query` objects (VC / SC /
  multiresolution) and, with :func:`multi_variable_query`,
  multi-variable accesses.
"""

from repro.core.advisor import (
    AdvisorReport,
    QueryClass,
    WorkloadProfile,
    recommend_level_order,
)
from repro.core.aggregate import AGGREGATE_OPS, AggregateResult, aggregate_query
from repro.core.chunking import ChunkGrid, normalize_region, region_size
from repro.core.compound import CompoundResult, VariableConstraint, compound_query
from repro.core.config import (
    EXEC_BACKENDS,
    LEVEL_ORDERS,
    WRITE_BACKENDS,
    ExecutionConfig,
    MLOCConfig,
    mloc_col,
    mloc_isa,
    mloc_iso,
)
from repro.core.dataset import DatasetSnapshot, MLOCDataset
from repro.core.engine.session import RefinementSession
from repro.core.manifest import (
    Manifest,
    ManifestError,
    ManifestMember,
    load_manifest,
    load_manifest_at,
    manifest_path,
)
from repro.core.errors import DegradedResultError
from repro.core.executor import QueryExecutor
from repro.core.meta import StoreMeta
from repro.core.multivar import MultiVarResult, multi_variable_query
from repro.core.planner import PlanCache, PlanContext, QueryPlan, plan_query
from repro.core.query import Query
from repro.core.result import BatchResult, ComponentTimes, QueryResult
from repro.core.sharded import ShardedMLOCStore
from repro.core.staging import InSituStager, StagingOverflow, StagingReport
from repro.core.store import MLOCStore, StorageReport
from repro.core.writer import MLOCWriter, WriteReport

__all__ = [
    "AGGREGATE_OPS",
    "AdvisorReport",
    "AggregateResult",
    "BatchResult",
    "ChunkGrid",
    "CompoundResult",
    "ComponentTimes",
    "DegradedResultError",
    "EXEC_BACKENDS",
    "ExecutionConfig",
    "InSituStager",
    "LEVEL_ORDERS",
    "DatasetSnapshot",
    "MLOCConfig",
    "MLOCDataset",
    "MLOCStore",
    "MLOCWriter",
    "Manifest",
    "ManifestError",
    "ManifestMember",
    "MultiVarResult",
    "Query",
    "load_manifest",
    "load_manifest_at",
    "manifest_path",
    "QueryClass",
    "QueryExecutor",
    "PlanCache",
    "PlanContext",
    "QueryPlan",
    "QueryResult",
    "RefinementSession",
    "ShardedMLOCStore",
    "StagingOverflow",
    "StagingReport",
    "StorageReport",
    "StoreMeta",
    "VariableConstraint",
    "WRITE_BACKENDS",
    "WorkloadProfile",
    "WriteReport",
    "aggregate_query",
    "compound_query",
    "mloc_col",
    "mloc_isa",
    "mloc_iso",
    "multi_variable_query",
    "normalize_region",
    "plan_query",
    "recommend_level_order",
    "region_size",
]
