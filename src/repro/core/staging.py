"""In-situ staging pipeline (Section I, contribution 4; Section VI).

The paper positions MLOC's encode path as a *data processing pipeline*
that plugs into staging frameworks (DataStager, PreDatA): as the
simulation produces each timestep, staging nodes run the layout
optimization and compression *in situ* before anything touches the
parallel file system, so the extra up-front cost is hidden inside the
output path.

``InSituStager`` models that integration point: the simulation pushes
``(variable, timestep, array)`` snapshots; the stager encodes each
through the MLOC pipeline onto the PFS and accounts an encode-cost
ledger — raw bytes absorbed, bytes written, wall encode seconds, and
the modeled drain time of the *raw* data for comparison, which is what
makes the paper's "accept extra up-front cost to speed up the whole
discovery cycle" trade-off quantifiable.

A bounded in-memory staging buffer models the staging nodes' RAM:
pushes that would exceed it raise ``StagingOverflow`` (the simulation
would block), so tests can exercise backpressure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import MLOCDataset

__all__ = ["InSituStager", "StagingReport", "StagingOverflow"]


class StagingOverflow(RuntimeError):
    """The staging buffer cannot absorb the pushed snapshot."""


@dataclass
class StagingReport:
    """Cumulative ledger of everything the stager processed."""

    snapshots: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    encode_seconds: float = 0.0
    #: Simulated seconds the same raw bytes would need to drain to the
    #: PFS uncompressed/unorganized (the do-nothing alternative).
    raw_drain_seconds: float = 0.0
    #: Manifest generations committed (``use_manifest`` stagers only).
    generations_committed: int = 0

    @property
    def compression_ratio(self) -> float:
        return self.stored_bytes / self.raw_bytes if self.raw_bytes else 0.0

    @property
    def encode_throughput(self) -> float:
        """Raw bytes absorbed per wall second of encoding."""
        return self.raw_bytes / self.encode_seconds if self.encode_seconds else 0.0


class InSituStager:
    """Streaming encode front-end over an :class:`MLOCDataset`."""

    def __init__(
        self,
        dataset: MLOCDataset,
        *,
        buffer_bytes: int = 1 << 30,
        use_manifest: bool = False,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError(f"buffer_bytes must be positive, got {buffer_bytes}")
        self.dataset = dataset
        self.buffer_bytes = buffer_bytes
        #: When set, each drained snapshot is sealed through
        #: :meth:`MLOCDataset.append` — an atomic manifest bump per
        #: timestep, so analysts can pin snapshots and query mid-run.
        self.use_manifest = use_manifest
        self.report = StagingReport()
        self._pending: list[tuple[str, int, np.ndarray]] = []
        self._pending_bytes = 0

    # ------------------------------------------------------------------
    def push(self, variable: str, timestep: int, data: np.ndarray) -> None:
        """Accept one snapshot into the staging buffer."""
        data = np.ascontiguousarray(data, dtype=np.float64)
        if self._pending_bytes + data.nbytes > self.buffer_bytes:
            raise StagingOverflow(
                f"staging buffer full: {self._pending_bytes} + {data.nbytes} "
                f"> {self.buffer_bytes} bytes; call drain() first"
            )
        self._pending.append((variable, timestep, data))
        self._pending_bytes += data.nbytes

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def drain(self) -> StagingReport:
        """Encode every buffered snapshot onto the PFS."""
        model = self.dataset.fs.cost_model
        for variable, timestep, data in self._pending:
            started = time.perf_counter()
            if self.use_manifest:
                write_report = self.dataset.append(data, variable, timestep)
                self.report.generations_committed += 1
            else:
                write_report = self.dataset.write(data, variable, timestep)
            elapsed = time.perf_counter() - started
            self.report.snapshots += 1
            self.report.raw_bytes += data.nbytes
            self.report.stored_bytes += write_report.total_bytes
            self.report.encode_seconds += elapsed
            self.report.raw_drain_seconds += (
                model.scaled_bytes(data.nbytes) / model.client_bandwidth
            )
        self._pending.clear()
        self._pending_bytes = 0
        return self.report

    def process(self, variable: str, timestep: int, data: np.ndarray) -> StagingReport:
        """Push + drain one snapshot (the common synchronous pattern)."""
        self.push(variable, timestep, data)
        return self.drain()
