"""Parallel query execution (Section III-D, Fig. 5).

The executor turns a :class:`~repro.core.planner.QueryPlan` into the
bulk-synchronous parallel program the paper describes:

1. the planned (bin, chunk) blocks are assigned to simulated MPI ranks
   in column order (each rank touches the fewest bin files);
2. each rank opens its bin subfiles through its own PFS session, reads
   exactly the index/data compression blocks covering its cells,
   decompresses them, reconstructs positions and values, and filters
   against the constraints;
3. the root gathers per-rank results through the simulated
   communicator (modeled communication time).

Response time = simulated parallel I/O (max-loaded OST / node link +
max-rank overhead) + max-rank decompression + max-rank reconstruction +
communication.  Decompression is modeled as ``scaled_raw_bytes /
codec.decode_throughput`` (calibrated at paper-scale block sizes, see
:class:`repro.compression.base.ByteCodec`); reconstruction is measured
CPU scaled by the cost model's ``cpu_scale`` (DESIGN.md §5).  Aligned
bins under region-only output never touch the data subfiles — the
index-only fast path of Section III-D1.

All per-chunk work inside a rank is batched per bin: cell payloads are
sliced out of decoded blocks as contiguous *runs* of consecutive cells
and reassembled with single vectorized operations, so measured CPU
reflects per-byte work rather than Python per-chunk overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import make_codec
from repro.core.chunking import ChunkGrid
from repro.core.meta import StoreMeta
from repro.core.planner import QueryPlan
from repro.core.query import Query
from repro.core.result import ComponentTimes, QueryResult
from repro.index.binindex import decode_position_block
from repro.index.bitmap import Bitmap
from repro.parallel.scheduler import (
    BlockRef,
    column_order_assignment,
    round_robin_assignment,
)
from repro.parallel.simmpi import CommCostModel, SimCommunicator
from repro.pfs.layout import BinFileSet, aggregate_parallel_time
from repro.pfs.simfs import PFSSession, SimulatedPFS
from repro.plod.byteplanes import GROUP_WIDTHS, assemble_from_groups
from repro.sfc.linearize import CurveOrder
from repro.util.timing import TimerRegistry

__all__ = ["QueryExecutor", "RankOutput", "INDEX_DECODE_THROUGHPUT"]

#: Modeled decode rate of the per-bin position index (delta + varint +
#: deflate), bytes of reconstructed positions (8 B each) per second,
#: calibrated at paper-scale block sizes like the codec throughputs.
INDEX_DECODE_THROUGHPUT = 240e6

#: Modeled rate of gathering cells out of decoded blocks and
#: reassembling PLoD byte planes, bytes of raw data per second —
#: memcpy-class work, calibrated like the codec throughputs.
ASSEMBLY_THROUGHPUT = 600e6

_SCHEDULERS = {
    "column": column_order_assignment,
    "round-robin": round_robin_assignment,
}


@dataclass
class RankOutput:
    """What one simulated rank produced before the gather."""

    positions: np.ndarray
    values: np.ndarray | None
    timers: TimerRegistry
    session: PFSSession
    #: Raw bytes this rank decompressed from data blocks.
    data_raw_bytes: int = 0
    #: Bytes of position payload (8 B/position) this rank decoded.
    index_raw_bytes: int = 0

    def modeled_decompression(self, codec, byte_scale: float) -> float:
        """Modeled decompression seconds for this rank (DESIGN.md §5):
        codec decode + index decode + cell-gather/PLoD-assembly, all
        modeled from the bytes processed (measured wall/CPU time of the
        scaled-down blocks would amplify per-call overhead by the
        magnification factor)."""
        return (
            self.data_raw_bytes * byte_scale / codec.decode_throughput
            + self.index_raw_bytes * byte_scale / INDEX_DECODE_THROUGHPUT
            + self.data_raw_bytes * byte_scale / ASSEMBLY_THROUGHPUT
        )


class QueryExecutor:
    """Executes planned queries over one stored variable."""

    def __init__(
        self,
        fs: SimulatedPFS,
        files: BinFileSet,
        meta: StoreMeta,
        grid: ChunkGrid,
        curve: CurveOrder,
        *,
        n_ranks: int = 8,
        scheduler: str = "column",
        comm_cost: CommCostModel | None = None,
    ) -> None:
        if scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {sorted(_SCHEDULERS)}, got {scheduler!r}"
            )
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.fs = fs
        self.files = files
        self.meta = meta
        self.grid = grid
        self.curve = curve
        self.n_ranks = n_ranks
        self.scheduler = scheduler
        if comm_cost is None:
            # Scale collective payload costs with the dataset
            # magnification so communication stays commensurate with
            # the paper-equivalent I/O seconds (DESIGN.md §5).
            base = CommCostModel()
            comm_cost = CommCostModel(
                latency=base.latency,
                byte_time=base.byte_time * fs.cost_model.byte_scale,
            )
        self.comm_cost = comm_cost
        self._codec = make_codec(meta.config.codec, **meta.config.codec_params)

    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None = None,
    ) -> QueryResult:
        """Run the parallel access program for one planned query."""
        blocks = plan.block_refs()
        assignment = _SCHEDULERS[self.scheduler](blocks, self.n_ranks)

        rank_outputs = [
            self._run_rank(rank_blocks, query, plan, position_filter)
            for rank_blocks in assignment
        ]

        comm = SimCommunicator(self.n_ranks, self.comm_cost)
        gathered = comm.gather([r.positions for r in rank_outputs])
        positions = (
            np.concatenate(gathered) if gathered else np.empty(0, dtype=np.int64)
        )
        values: np.ndarray | None = None
        if query.wants_values:
            gathered_v = comm.gather(
                [r.values if r.values is not None else np.empty(0) for r in rank_outputs]
            )
            values = np.concatenate(gathered_v)

        order = np.argsort(positions, kind="stable")
        positions = positions[order]
        if values is not None:
            values = values[order]

        sessions = [r.session for r in rank_outputs]
        cpu_scale = self.fs.cost_model.effective_cpu_scale
        byte_scale = self.fs.cost_model.byte_scale
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, sessions),
            decompression=max(
                (r.modeled_decompression(self._codec, byte_scale) for r in rank_outputs),
                default=0.0,
            ),
            reconstruction=cpu_scale
            * max((r.timers.elapsed("reconstruction") for r in rank_outputs), default=0.0),
            communication=comm.comm_seconds,
        )
        stats = {
            "n_ranks": self.n_ranks,
            "bins_accessed": int(plan.bin_ids.size),
            "aligned_bins": int(plan.aligned.sum()),
            "chunks_accessed": int(plan.cpos.size),
            "blocks_planned": len(blocks),
            "bytes_read": int(sum(s.stats.bytes_read for s in sessions)),
            "files_opened": int(sum(s.stats.opens for s in sessions)),
            "seeks": int(sum(s.stats.seeks for s in sessions)),
            "n_results": int(positions.size),
        }
        return QueryResult(positions=positions, values=values, times=times, stats=stats)

    # ------------------------------------------------------------------
    def _run_rank(
        self,
        rank_blocks: list[BlockRef],
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None,
    ) -> RankOutput:
        timers = TimerRegistry()
        session = self.fs.session()
        out_positions: list[np.ndarray] = []
        out_values: list[np.ndarray] = []
        raw_counters = {"data": 0, "index": 0}

        # Group this rank's blocks by bin (they arrive bin-major).
        by_bin: dict[int, list[BlockRef]] = {}
        for ref in rank_blocks:
            by_bin.setdefault(ref.bin_id, []).append(ref)

        for bin_id, refs in by_bin.items():
            refs.sort(key=lambda r: r.chunk_pos)
            cpos = np.array([r.chunk_pos for r in refs], dtype=np.int64)
            chunk_ids = np.array([r.chunk_id for r in refs], dtype=np.int64)
            aligned = plan.is_aligned(bin_id)
            need_values = (
                query.wants_values or not aligned or position_filter is not None
            )

            positions, counts = self._read_positions(
                session, bin_id, cpos, chunk_ids, timers, raw_counters
            )
            values: np.ndarray | None = None
            if need_values:
                values = self._read_values(
                    session, bin_id, cpos, query.plod_level, timers, raw_counters
                )

            with timers["reconstruction"]:
                mask: np.ndarray | None = None
                if query.value_range is not None and not aligned:
                    lo, hi = query.value_range
                    mask = (values >= lo) & (values <= hi)
                if plan.region is not None:
                    interior = plan.interior_of(cpos)
                    if not interior.all():
                        # Only elements of boundary chunks need the
                        # coordinate test; interior chunks pass whole.
                        in_region = np.ones(positions.size, dtype=bool)
                        boundary = ~np.repeat(interior, counts)
                        in_region[boundary] = self.grid.positions_in_region(
                            positions[boundary], plan.region
                        )
                        mask = in_region if mask is None else (mask & in_region)
                if position_filter is not None:
                    hit = position_filter.get(positions)
                    mask = hit if mask is None else (mask & hit)
                if mask is not None:
                    positions = positions[mask]
                    if values is not None:
                        values = values[mask]
                out_positions.append(positions)
                if query.wants_values:
                    out_values.append(values)

        positions = (
            np.concatenate(out_positions) if out_positions else np.empty(0, dtype=np.int64)
        )
        values = None
        if query.wants_values:
            values = (
                np.concatenate(out_values) if out_values else np.empty(0, dtype=np.float64)
            )
        return RankOutput(
            positions=positions,
            values=values,
            timers=timers,
            session=session,
            data_raw_bytes=raw_counters["data"],
            index_raw_bytes=raw_counters["index"],
        )

    # ------------------------------------------------------------------
    def _read_positions(
        self,
        session: PFSSession,
        bin_id: int,
        cpos: np.ndarray,
        chunk_ids: np.ndarray,
        timers: TimerRegistry,
        raw_counters: dict[str, int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read+decode the index blocks covering ``cpos``.

        Returns the concatenated global positions (in ``cpos`` order)
        and the per-chunk element counts.
        """
        table = self.meta.index_blocks[bin_id]
        bin_counts = self.meta.counts[bin_id]
        handle = session.open(self.files.index_path(bin_id))
        local_parts: list[np.ndarray] = []
        for row_idx in _covering_rows(table[:, 0], cpos):
            cpos_start, cpos_end, offset, comp_len = (
                int(v) for v in table[row_idx][:4]
            )
            payload = handle.read(offset, comp_len)
            wanted = cpos[(cpos >= cpos_start) & (cpos < cpos_end)]
            per_chunk = decode_position_block(payload, bin_counts[cpos_start:cpos_end])
            raw_counters["index"] += int(bin_counts[cpos_start:cpos_end].sum()) * 8
            with timers["reconstruction"]:
                local_parts.extend(per_chunk[int(cp) - cpos_start] for cp in wanted)
        with timers["reconstruction"]:
            counts = bin_counts[cpos].astype(np.int64)
            local_ids = (
                np.concatenate(local_parts) if local_parts else np.empty(0, dtype=np.int64)
            )
            positions = self.grid.global_positions_batch(chunk_ids, local_ids, counts)
        return positions, counts

    def _read_values(
        self,
        session: PFSSession,
        bin_id: int,
        cpos: np.ndarray,
        plod_level: int,
        timers: TimerRegistry,
        raw_counters: dict[str, int],
    ) -> np.ndarray:
        """Read+decode the data blocks covering the needed cells.

        Returns the (possibly PLoD-approximate) values of all requested
        chunks concatenated in ``cpos`` order.
        """
        config = self.meta.config
        n_chunks = self.meta.n_chunks
        counts = self.meta.counts[bin_id].astype(np.int64)
        table = self.meta.data_blocks[bin_id]
        handle = session.open(self.files.data_path(bin_id))
        n_elem = int(counts[cpos].sum())
        if n_elem == 0:
            return np.empty(0, dtype=np.float64)

        n_groups = min(plod_level, config.n_groups) if config.plod_enabled else 1
        cell_sizes = _cell_sizes(config, counts, n_chunks)
        cell_offsets = np.zeros(cell_sizes.size + 1, dtype=np.int64)
        np.cumsum(cell_sizes, out=cell_offsets[1:])
        row_starts = table[:, 0]

        # The cells needed, grouped per byte group (so each group's
        # payload concatenates contiguously in cpos order).
        if config.plod_enabled:
            if config.group_major:  # V-M-S: cell = g * n_chunks + cpos
                cells_per_group = [g * n_chunks + cpos for g in range(n_groups)]
            else:  # V-S-M: cell = cpos * 7 + g
                cells_per_group = [
                    cpos * config.n_groups + g for g in range(n_groups)
                ]
        else:
            cells_per_group = [cpos]

        # Read and decode each covering compression block exactly once.
        all_cells = np.unique(np.concatenate(cells_per_group))
        decoded: dict[int, np.ndarray] = {}
        for row_idx in _covering_rows(row_starts, all_cells):
            cell_start, cell_end, offset, comp_len, raw_len = (
                int(v) for v in table[row_idx][:5]
            )
            payload = handle.read(offset, comp_len)
            raw_counters["data"] += raw_len
            if config.plod_enabled:
                raw = self._codec.decode(payload, raw_len)
                decoded[row_idx] = np.frombuffer(raw, dtype=np.uint8)
            else:
                decoded[row_idx] = self._codec.decode(payload, raw_len // 8)

        # Cell gathering + PLoD byte-plane assembly belong to the
        # *decompression* component: they are part of recovering values
        # from the stored representation and scale with the bytes
        # fetched, whereas the paper's "reconstruction" (filtering +
        # final assembly of results) is independent of the PLoD level
        # (Fig. 8's flat reconstruction line).
        with timers["assembly"]:
            group_payloads = [
                self._gather_cells(
                    decoded,
                    row_starts,
                    cell_offsets,
                    cells,
                    as_float=not config.plod_enabled,
                )
                for cells in cells_per_group
            ]
            if config.plod_enabled:
                return assemble_from_groups(group_payloads, n_elem, n_groups)
            return group_payloads[0]

    def _gather_cells(
        self,
        decoded: dict[int, np.ndarray],
        row_starts: np.ndarray,
        cell_offsets: np.ndarray,
        cells: np.ndarray,
        as_float: bool,
    ) -> np.ndarray:
        """Concatenate the payloads of ``cells`` (ascending) out of the
        decoded blocks, slicing maximal runs of consecutive cells."""
        rows = np.searchsorted(row_starts, cells, side="right") - 1
        breaks = np.flatnonzero((np.diff(cells) != 1) | (np.diff(rows) != 0)) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [cells.size]))
        parts: list[np.ndarray] = []
        for s, e in zip(starts, ends):
            row_idx = int(rows[s])
            buf = decoded[row_idx]
            block_base = int(cell_offsets[row_starts[row_idx]])
            lo = int(cell_offsets[cells[s]]) - block_base
            hi = int(cell_offsets[cells[e - 1] + 1]) - block_base
            parts.append(buf[lo // 8 : hi // 8] if as_float else buf[lo:hi])
        if not parts:
            return np.empty(0, dtype=np.float64 if as_float else np.uint8)
        return np.concatenate(parts)


def _cell_sizes(config, counts: np.ndarray, n_chunks: int) -> np.ndarray:
    """Byte size of every cell of a bin, in file cell order."""
    counts = counts.astype(np.int64)
    if not config.plod_enabled:
        return counts * 8
    widths = np.array(GROUP_WIDTHS, dtype=np.int64)
    if config.group_major:  # cell = g * n_chunks + cpos
        return (widths[:, None] * counts[None, :]).reshape(-1)
    # cell = cpos * n_groups + g
    return (counts[:, None] * widths[None, :]).reshape(-1)


def _covering_rows(row_starts: np.ndarray, cells: np.ndarray) -> list[int]:
    """Indices of the block-table rows containing the given cells."""
    if cells.size == 0 or row_starts.size == 0:
        return []
    rows = np.searchsorted(row_starts, cells, side="right") - 1
    return sorted(set(int(r) for r in rows))
