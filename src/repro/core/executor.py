"""Compatibility façade over the staged query engine.

The monolithic ``QueryExecutor`` was decomposed into the layered
engine of :mod:`repro.core.engine` (Plan → IOScheduler → Decode →
Assemble; see ``DESIGN.md`` §engine).  This module keeps the public
import surface stable: ``QueryExecutor`` *is*
:class:`~repro.core.engine.stages.QueryEngine`, with identical
constructor signature and bit-identical behavior at ``coalesce_gap=0``
(pinned by ``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

from repro.core.engine.stages import (
    ASSEMBLY_THROUGHPUT as ASSEMBLY_THROUGHPUT,
    BACKENDS,
    INDEX_DECODE_THROUGHPUT,
    QueryEngine,
    RankOutput,
)
from repro.core.planner import cell_sizes, covering_rows

__all__ = ["QueryExecutor", "RankOutput", "BACKENDS", "INDEX_DECODE_THROUGHPUT"]

QueryExecutor = QueryEngine

# Internal helpers historically imported from this module; the
# implementations live in the planner now.
_cell_sizes = cell_sizes
_covering_rows = covering_rows
