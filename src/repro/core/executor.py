"""Parallel query execution (Section III-D, Fig. 5).

The executor turns a :class:`~repro.core.planner.QueryPlan` into the
bulk-synchronous parallel program the paper describes:

1. the planned (bin, chunk) blocks are assigned to simulated MPI ranks
   in column order (each rank touches the fewest bin files);
2. each rank opens its bin subfiles through its own PFS session, reads
   exactly the index/data compression blocks covering its cells,
   decompresses them, reconstructs positions and values, and filters
   against the constraints;
3. the root gathers per-rank results through the simulated
   communicator (modeled communication time).

Response time = simulated parallel I/O (max-loaded OST / node link +
max-rank overhead) + max-rank decompression + max-rank reconstruction +
communication.  Decompression is modeled as ``scaled_raw_bytes /
codec.decode_throughput`` (calibrated at paper-scale block sizes, see
:class:`repro.compression.base.ByteCodec`); reconstruction is measured
CPU scaled by the cost model's ``cpu_scale`` (DESIGN.md §5).  Aligned
bins under region-only output never touch the data subfiles — the
index-only fast path of Section III-D1.

Execution is phased so the simulated-time model stays deterministic
while the real CPU work parallelizes:

* **plan phase** (deterministic rank order): every rank walks its
  blocks, charges simulated I/O to its own PFS session, and enqueues
  one *decode job* per distinct compression block.  Jobs are
  deduplicated through a :class:`~repro.core.executor._BlockFetcher`,
  which consults the shared decoded-block LRU
  (:class:`repro.pfs.blockcache.BlockCache`) when one is configured —
  a hit skips both the simulated read and the modeled decode seconds;
* **decode phase**: the pending jobs run either inline (``serial``
  backend) or on a :class:`~concurrent.futures.ThreadPoolExecutor`
  (``threads`` backend) — zlib/NumPy decodes release the GIL, so this
  is true parallelism on the dominant real CPU cost.  Job *accounting*
  was already fixed in the plan phase, so both backends produce
  bit-identical results and identical simulated seconds;
* **finish phase** (deterministic rank order): positions and values
  are gathered out of the decoded blocks as contiguous runs with
  single vectorized operations, filtered, and gathered through the
  simulated communicator.  This phase is measured CPU
  (``time.process_time``) and therefore deliberately not threaded.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.compression.base import make_codec
from repro.core.chunking import ChunkGrid
from repro.core.errors import DegradedResultError
from repro.core.meta import StoreMeta
from repro.core.planner import PlanContext, QueryPlan, cell_sizes
from repro.core.query import Query
from repro.core.result import ComponentTimes, QueryResult
from repro.index.binindex import decode_position_block_flat
from repro.index.bitmap import Bitmap
from repro.parallel.scheduler import (
    BlockList,
    column_order_assignment,
    round_robin_assignment,
)
from repro.parallel.simmpi import CommCostModel, SimCommunicator
from repro.pfs.blockcache import BlockCache
from repro.pfs.faults import TransientIOError
from repro.pfs.layout import BinFileSet, aggregate_parallel_time
from repro.pfs.simfs import PFSSession, SimulatedPFS
from repro.plod.byteplanes import assemble_from_groups, assemble_from_groups_degraded
from repro.sfc.linearize import CurveOrder
from repro.util.timing import TimerRegistry

__all__ = ["QueryExecutor", "RankOutput", "BACKENDS", "INDEX_DECODE_THROUGHPUT"]

#: Modeled decode rate of the per-bin position index (delta + varint +
#: deflate), bytes of reconstructed positions (8 B each) per second,
#: calibrated at paper-scale block sizes like the codec throughputs.
INDEX_DECODE_THROUGHPUT = 240e6

#: Modeled rate of gathering cells out of decoded blocks and
#: reassembling PLoD byte planes, bytes of raw data per second —
#: memcpy-class work, calibrated like the codec throughputs.
ASSEMBLY_THROUGHPUT = 600e6

#: Real-execution backends for the decode phase.
BACKENDS = ("serial", "threads")

_SCHEDULERS = {
    "column": column_order_assignment,
    "round-robin": round_robin_assignment,
}


@dataclass
class RankOutput:
    """What one simulated rank produced before the gather."""

    positions: np.ndarray
    values: np.ndarray | None
    timers: TimerRegistry
    session: PFSSession
    #: Raw bytes this rank decompressed from data blocks.
    data_raw_bytes: int = 0
    #: Bytes of position payload (8 B/position) this rank decoded.
    index_raw_bytes: int = 0

    def modeled_decompression(self, codec, byte_scale: float) -> float:
        """Modeled decompression seconds for this rank (DESIGN.md §5):
        codec decode + index decode + cell-gather/PLoD-assembly, all
        modeled from the bytes processed (measured wall/CPU time of the
        scaled-down blocks would amplify per-call overhead by the
        magnification factor)."""
        return (
            self.data_raw_bytes * byte_scale / codec.decode_throughput
            + self.index_raw_bytes * byte_scale / INDEX_DECODE_THROUGHPUT
            + self.data_raw_bytes * byte_scale / ASSEMBLY_THROUGHPUT
        )


class _DecodeJob:
    """One deferred block decode; ``result`` is set by :meth:`run`."""

    __slots__ = ("_fn", "result", "done")

    def __init__(self, fn: Callable[[], object] | None = None, result: object = None):
        self._fn = fn
        self.result = result
        self.done = fn is None

    def run(self) -> None:
        if not self.done:
            self.result = self._fn()
            self._fn = None
            self.done = True


def _job_lost(job: _DecodeJob) -> bool:
    """Whether the job marks a quarantined (unreadable) block.

    Convention: a job that is already done with a ``None`` result never
    decoded anything — its verified read exhausted retries.  Decoders
    never legitimately return ``None``.
    """
    return job.done and job.result is None


@dataclass
class _FaultContext:
    """Per-query fault accounting, filled by the verified read path."""

    crc_failures: int = 0
    io_retries: int = 0
    degraded_points: int = 0
    dropped_points: int = 0
    #: (path, offset) of quarantined blocks this query touched.
    quarantined: set = field(default_factory=set)
    #: Global chunk ids whose points were (partially) lost.
    partial_chunks: set = field(default_factory=set)


class _HandleOpener:
    """Session file handle, opened lazily unless seed-faithful ``eager``.

    Without caching every planned block is read, so the handle is opened
    immediately (charging the open exactly where the pre-cache executor
    did).  With caching, the open is deferred to the first actual read:
    if every block of the file is served from the cache, the rank never
    touches the file and pays no metadata operation.
    """

    __slots__ = ("_session", "_path", "_handle")

    def __init__(self, session: PFSSession, path: str, eager: bool):
        self._session = session
        self._path = path
        self._handle = session.open(path) if eager else None

    def get(self):
        if self._handle is None:
            self._handle = self._session.open(self._path)
        return self._handle


class _BlockFetcher:
    """Per-query (or per-batch) read/decode coordinator.

    Deduplicates decode work across ranks — and, when shared by
    :meth:`~repro.core.store.MLOCStore.query_many`, across the queries
    of a batch — and fronts the store's decoded-block LRU.  All calls
    happen in the deterministic plan phase, so which rank pays for a
    block's I/O and modeled decode time never depends on backend or
    thread timing: the first requester in rank order pays, later
    requesters record a hit.
    """

    def __init__(self, cache: BlockCache | None, generation: int, shared: bool = False):
        self.cache = cache
        self.generation = generation
        self.shared = shared
        self._jobs: dict[tuple, _DecodeJob] = {}
        self._pending: list[tuple[tuple | None, _DecodeJob]] = []
        self.hits = 0
        self.misses = 0
        self.lost = 0
        self.hit_raw_bytes = 0
        self.miss_raw_bytes = 0

    @property
    def caching(self) -> bool:
        """Whether block identity is tracked (LRU and/or batch dedup)."""
        return self.cache is not None or self.shared

    def pending_count(self) -> int:
        """Decode jobs enqueued by the plan phase but not yet run."""
        return len(self._pending)

    def request(
        self,
        key: tuple,
        read_payload: Callable[[], bytes],
        decode: Callable[[bytes], object],
        raw_bytes: int,
    ) -> tuple[_DecodeJob, bool]:
        """Return a job whose result is the decoded block, plus hit flag.

        On a miss, ``read_payload`` runs immediately (charging simulated
        I/O to the requesting rank's session) and the decode is deferred
        to the decode phase.  On a hit nothing is charged.

        ``read_payload`` returning ``None`` means the block could not
        be read intact (verification exhausted its retries): the caller
        receives a *lost* job (done, ``result is None``).  Lost jobs
        are never decoded, never cached, and never deduplicated — a
        later request re-runs ``read_payload``, which answers from the
        executor's quarantine registry without touching the PFS.  A
        cached decode, by contrast, still wins over a quarantine entry:
        it was CRC-verified when it entered the cache.
        """
        if self.caching:
            job = self._jobs.get(key)
            if job is not None:
                self.hits += 1
                self.hit_raw_bytes += raw_bytes
                return job, True
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    job = _DecodeJob(result=cached)
                    self._jobs[key] = job
                    self.hits += 1
                    self.hit_raw_bytes += raw_bytes
                    return job, True
        payload = read_payload()
        if payload is None:
            self.lost += 1
            return _DecodeJob(result=None), False
        job = _DecodeJob(fn=lambda: decode(payload))
        self.misses += 1
        self.miss_raw_bytes += raw_bytes
        if self.caching:
            self._jobs[key] = job
            self._pending.append((key, job))
        else:
            self._pending.append((None, job))
        return job, False

    def run(self, pool: ThreadPoolExecutor | None) -> int:
        """Execute pending decode jobs; returns how many ran.

        Cache insertion happens afterwards in plan order (never from the
        worker threads), so LRU/eviction state — and therefore later
        queries' hit patterns — is backend-independent.
        """
        pending, self._pending = self._pending, []
        if pool is None:
            for _, job in pending:
                job.run()
        else:
            list(pool.map(lambda item: item[1].run(), pending))
        if self.cache is not None:
            for key, job in pending:
                if key is not None:
                    self.cache.put(key, job.result)
        return len(pending)


@dataclass
class _ValueWork:
    """Planned data-block work of one (rank, bin): jobs + cell geometry."""

    n_elem: int
    n_groups: int = 1
    cells_per_group: list[np.ndarray] = field(default_factory=list)
    cell_offsets: np.ndarray | None = None
    row_starts: np.ndarray | None = None
    jobs: dict[int, _DecodeJob] = field(default_factory=dict)
    #: Per-cpos mask of chunks whose points are unrecoverable (base
    #: byte-plane or full-value block quarantined); ``None`` if none.
    fatal_mask: np.ndarray | None = None
    #: Per-cpos effective PLoD level (< ``n_groups`` where refinement
    #: blocks were quarantined); ``None`` if no precision was lost.
    cell_levels: np.ndarray | None = None
    #: (path, offset) of the first quarantined block behind
    #: ``fatal_mask``, for the structured error.
    fatal_block: tuple[str, int] | None = None


@dataclass
class _BinWork:
    """Planned work of one (rank, bin)."""

    bin_id: int
    cpos: np.ndarray
    chunk_ids: np.ndarray
    aligned: bool
    need_values: bool
    #: (cpos_start, cpos_end, job -> flat positions) per index block.
    index_parts: list[tuple[int, int, _DecodeJob]]
    value_work: _ValueWork | None


@dataclass
class _RankWork:
    """One rank's planned work plus its accounting context."""

    session: PFSSession
    timers: TimerRegistry
    raw: dict[str, int]
    bins: list[_BinWork]


class QueryExecutor:
    """Executes planned queries over one stored variable.

    Parameters
    ----------
    backend:
        ``"serial"`` runs decode jobs inline; ``"threads"`` runs them on
        a thread pool (zlib/NumPy release the GIL).  Both produce
        bit-identical results and identical simulated seconds — the
        backend only changes real wall-clock time.
    n_threads:
        Thread-pool width for the ``"threads"`` backend (default: CPU
        count).
    cache:
        Optional shared :class:`~repro.pfs.blockcache.BlockCache` of
        decoded blocks; hits skip simulated I/O and modeled decode time.
    generation:
        Fingerprint of the store metadata, namespacing cache keys so a
        rewritten-and-reopened store never serves stale blocks.
    context:
        Optional shared :class:`~repro.core.planner.PlanContext` with
        the precomputed per-bin planning tables; built from the
        metadata when omitted (one-off executors).
    max_read_retries:
        How many times a failed block read (transient I/O error or CRC
        mismatch) is retried before the block is quarantined.
    read_backoff:
        Base of the exponential retry backoff, in *simulated* seconds:
        retry ``k`` stalls ``read_backoff * 2**(k-1)`` on the reading
        rank's clock before re-reading.
    allow_partial:
        When a quarantined block makes part of the answer
        unrecoverable (index block, PLoD base plane, or full-value
        data block), ``False`` (default) raises
        :class:`~repro.core.errors.DegradedResultError`; ``True``
        drops the affected points and reports their chunks in
        ``stats["partial_chunks"]``.  Refinement byte-plane loss never
        raises — affected points degrade to the deepest intact level
        and are counted in ``stats["degraded_points"]``.
    """

    def __init__(
        self,
        fs: SimulatedPFS,
        files: BinFileSet,
        meta: StoreMeta,
        grid: ChunkGrid,
        curve: CurveOrder,
        *,
        n_ranks: int = 8,
        scheduler: str = "column",
        comm_cost: CommCostModel | None = None,
        backend: str = "serial",
        n_threads: int | None = None,
        cache: BlockCache | None = None,
        generation: int = 0,
        context: PlanContext | None = None,
        max_read_retries: int = 2,
        read_backoff: float = 0.005,
        allow_partial: bool = False,
    ) -> None:
        if scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {sorted(_SCHEDULERS)}, got {scheduler!r}"
            )
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if n_threads is not None and n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        if max_read_retries < 0:
            raise ValueError(
                f"max_read_retries must be >= 0, got {max_read_retries}"
            )
        if read_backoff < 0:
            raise ValueError(f"read_backoff must be >= 0, got {read_backoff}")
        self.fs = fs
        self.files = files
        self.meta = meta
        self.grid = grid
        self.curve = curve
        self.n_ranks = n_ranks
        self.scheduler = scheduler
        self.backend = backend
        self.n_threads = n_threads
        self.cache = cache
        self.generation = generation
        self.max_read_retries = max_read_retries
        self.read_backoff = read_backoff
        self.allow_partial = allow_partial
        #: Blocks whose verified read exhausted its retries, as
        #: (path, offset) -> reason.  Persists across queries: a
        #: quarantined block is never re-read (its damage is sticky as
        #: far as this executor could tell), it is answered by the
        #: degradation policy instead.
        self.quarantine: dict[tuple[str, int], str] = {}
        self.context = (
            context if context is not None else PlanContext.for_store(meta, grid, curve)
        )
        if comm_cost is None:
            # Scale collective payload costs with the dataset
            # magnification so communication stays commensurate with
            # the paper-equivalent I/O seconds (DESIGN.md §5).
            base = CommCostModel()
            comm_cost = CommCostModel(
                latency=base.latency,
                byte_time=base.byte_time * fs.cost_model.byte_scale,
            )
        self.comm_cost = comm_cost
        self._codec = make_codec(meta.config.codec, **meta.config.codec_params)

    # ------------------------------------------------------------------
    def new_fetcher(self, shared: bool = False) -> _BlockFetcher:
        """A fetcher for one query (or, with ``shared=True``, a batch)."""
        return _BlockFetcher(self.cache, self.generation, shared=shared)

    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None = None,
        fetcher: _BlockFetcher | None = None,
    ) -> QueryResult:
        """Run the parallel access program for one planned query."""
        if fetcher is None:
            fetcher = self.new_fetcher()
        hits0, misses0 = fetcher.hits, fetcher.misses
        hit_raw0 = fetcher.hit_raw_bytes
        fctx = _FaultContext()

        blocks = plan.block_list()
        assignment = _SCHEDULERS[self.scheduler](blocks, self.n_ranks)

        # Plan phase: deterministic rank order, charges all simulated I/O
        # and fixes which rank pays each block's modeled decode time.
        rank_works = [
            self._plan_rank(rank_blocks, query, plan, position_filter, fetcher, fctx)
            for rank_blocks in assignment
        ]
        # Decode phase: the only concurrent part (threads backend).
        blocks_decoded = self._run_decodes(fetcher)
        # Finish phase: measured CPU, deterministic rank order.
        rank_outputs = [
            self._finish_rank(work, query, plan, position_filter, fctx)
            for work in rank_works
        ]

        comm = SimCommunicator(self.n_ranks, self.comm_cost)
        gathered = comm.gather([r.positions for r in rank_outputs])
        positions = (
            np.concatenate(gathered) if gathered else np.empty(0, dtype=np.int64)
        )
        values: np.ndarray | None = None
        if query.wants_values:
            gathered_v = comm.gather(
                [r.values if r.values is not None else np.empty(0) for r in rank_outputs]
            )
            values = np.concatenate(gathered_v)

        order = np.argsort(positions, kind="stable")
        positions = positions[order]
        if values is not None:
            values = values[order]

        sessions = [r.session for r in rank_outputs]
        cpu_scale = self.fs.cost_model.effective_cpu_scale
        byte_scale = self.fs.cost_model.byte_scale
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, sessions),
            decompression=max(
                (r.modeled_decompression(self._codec, byte_scale) for r in rank_outputs),
                default=0.0,
            ),
            reconstruction=cpu_scale
            * max((r.timers.elapsed("reconstruction") for r in rank_outputs), default=0.0),
            communication=comm.comm_seconds,
        )
        stats = {
            "n_ranks": self.n_ranks,
            "backend": self.backend,
            "bins_accessed": int(plan.bin_ids.size),
            "aligned_bins": int(plan.aligned.sum()),
            "chunks_accessed": int(plan.cpos.size),
            "blocks_planned": len(blocks),
            "blocks_decoded": blocks_decoded,
            "cache_hits": fetcher.hits - hits0,
            "cache_misses": fetcher.misses - misses0,
            "cache_hit_raw_bytes": fetcher.hit_raw_bytes - hit_raw0,
            "bytes_read": int(sum(s.stats.bytes_read for s in sessions)),
            "files_opened": int(sum(s.stats.opens for s in sessions)),
            "seeks": int(sum(s.stats.seeks for s in sessions)),
            "stall_seconds": float(sum(s.stats.stall_seconds for s in sessions)),
            "crc_failures": fctx.crc_failures,
            "io_retries": fctx.io_retries,
            "degraded_points": fctx.degraded_points,
            "dropped_points": fctx.dropped_points,
            "quarantined_blocks": len(fctx.quarantined),
            "partial_chunks": sorted(fctx.partial_chunks),
            "n_results": int(positions.size),
        }
        return QueryResult(positions=positions, values=values, times=times, stats=stats)

    # ------------------------------------------------------------------
    def _run_decodes(self, fetcher: _BlockFetcher) -> int:
        """Run the decode phase on the configured backend.

        A pool is only spun up when it can actually overlap work: with
        one effective worker (or fewer than two pending jobs) the
        threaded backend decodes inline, avoiding pure dispatch
        overhead on single-core machines.
        """
        n_pending = fetcher.pending_count()
        workers = min(self.n_threads or os.cpu_count() or 1, n_pending)
        if self.backend == "threads" and workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return fetcher.run(pool)
        return fetcher.run(None)

    # ------------------------------------------------------------------
    def _verified_read(
        self,
        session: PFSSession,
        opener: _HandleOpener,
        path: str,
        offset: int,
        comp_len: int,
        crc: int,
        fctx: _FaultContext,
    ) -> bytes | None:
        """Read one block, verify its CRC, retry, or quarantine it.

        Every data/index block read goes through here: the payload's
        ``zlib.crc32`` is checked against the block table before any
        decode (the store-wide rule: no decoded bytes reach a result
        without a CRC check or an explicit degradation record).
        Transient I/O errors and CRC mismatches are retried up to
        ``max_read_retries`` times with exponential backoff charged to
        the rank's *simulated* clock; a block that exhausts its retries
        is quarantined for the executor's lifetime and reported as
        ``None`` (a lost block) to the degradation policy.
        """
        key = (path, offset)
        if key in self.quarantine:
            fctx.quarantined.add(key)
            return None
        reason = "unreadable"
        for attempt in range(self.max_read_retries + 1):
            if attempt:
                fctx.io_retries += 1
                session.stats.stall_seconds += self.read_backoff * 2 ** (attempt - 1)
            try:
                payload = opener.get().read(offset, comp_len)
            except TransientIOError:
                reason = "transient I/O errors"
                continue
            if len(payload) == comp_len and zlib.crc32(payload) == int(crc):
                return payload
            fctx.crc_failures += 1
            reason = (
                f"short read ({len(payload)}/{comp_len} bytes)"
                if len(payload) != comp_len
                else "CRC mismatch"
            )
        self.quarantine[key] = (
            f"{reason} after {self.max_read_retries + 1} attempts"
        )
        fctx.quarantined.add(key)
        return None

    # ------------------------------------------------------------------
    def _plan_rank(
        self,
        rank_blocks: BlockList,
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None,
        fetcher: _BlockFetcher,
        fctx: _FaultContext,
    ) -> _RankWork:
        """Charge one rank's simulated I/O and enqueue its decode jobs."""
        timers = TimerRegistry()
        session = self.fs.session()
        raw = {"data": 0, "index": 0}
        bins: list[_BinWork] = []

        # The rank's blocks arrive bin-major and cpos-sorted within each
        # bin, so each bin is one contiguous segment of the arrays.
        for bin_id, cpos, chunk_ids in rank_blocks.bin_segments():
            aligned = plan.is_aligned(bin_id)
            counts64 = self.context.counts64[bin_id]
            index_parts, lost_index = self._plan_positions(
                session, bin_id, cpos, fetcher, raw, fctx
            )
            if lost_index:
                # A lost index block loses the membership of every chunk
                # it covered: those chunks leave the answer entirely.
                lost_mask = np.zeros(cpos.size, dtype=bool)
                for cpos_start, cpos_end, _ in lost_index:
                    lost_mask |= (cpos >= cpos_start) & (cpos < cpos_end)
                lost_ids = chunk_ids[lost_mask]
                if not self.allow_partial:
                    raise DegradedResultError(
                        kind="index",
                        path=self.files.index_path(bin_id),
                        offset=lost_index[0][2],
                        bin_id=bin_id,
                        chunk_ids=tuple(int(c) for c in lost_ids),
                    )
                fctx.partial_chunks.update(int(c) for c in lost_ids)
                fctx.dropped_points += int(counts64[cpos[lost_mask]].sum())
                cpos = cpos[~lost_mask]
                chunk_ids = chunk_ids[~lost_mask]
            need_values = (
                query.wants_values or not aligned or position_filter is not None
            )
            value_work = None
            if need_values:
                value_work = self._plan_values(
                    session, bin_id, cpos, query.plod_level, fetcher, raw, fctx
                )
                if value_work.fatal_mask is not None:
                    lost_ids = chunk_ids[value_work.fatal_mask]
                    if not self.allow_partial:
                        path, offset = value_work.fatal_block
                        raise DegradedResultError(
                            kind="data-base"
                            if self.meta.config.plod_enabled
                            else "data",
                            path=path,
                            offset=offset,
                            bin_id=bin_id,
                            chunk_ids=tuple(int(c) for c in lost_ids),
                        )
                    fctx.partial_chunks.update(int(c) for c in lost_ids)
                    fctx.dropped_points += int(
                        counts64[cpos[value_work.fatal_mask]].sum()
                    )
            bins.append(
                _BinWork(
                    bin_id=bin_id,
                    cpos=cpos,
                    chunk_ids=chunk_ids,
                    aligned=aligned,
                    need_values=need_values,
                    index_parts=index_parts,
                    value_work=value_work,
                )
            )
        return _RankWork(session=session, timers=timers, raw=raw, bins=bins)

    def _plan_positions(
        self,
        session: PFSSession,
        bin_id: int,
        cpos: np.ndarray,
        fetcher: _BlockFetcher,
        raw: dict[str, int],
        fctx: _FaultContext,
    ) -> tuple[list[tuple[int, int, _DecodeJob]], list[tuple[int, int, int]]]:
        """Request the index blocks covering ``cpos``.

        Returns the decodable parts plus the lost (quarantined) blocks
        as ``(cpos_start, cpos_end, offset)`` triples.
        """
        table = self.meta.index_blocks[bin_id]
        bin_counts = self.context.counts64[bin_id]
        path = self.files.index_path(bin_id)
        opener = _HandleOpener(session, path, eager=not fetcher.caching)
        parts: list[tuple[int, int, _DecodeJob]] = []
        lost: list[tuple[int, int, int]] = []
        for row_idx in _covering_rows(self.context.index_row_starts[bin_id], cpos):
            cpos_start, cpos_end, offset, comp_len = (
                int(v) for v in table[row_idx][:4]
            )
            crc = int(table[row_idx][4])
            counts_slice = bin_counts[cpos_start:cpos_end]
            raw_bytes = int(counts_slice.sum()) * 8
            job, hit = fetcher.request(
                (fetcher.generation, path, offset),
                lambda offset=offset, comp_len=comp_len, crc=crc: self._verified_read(
                    session, opener, path, offset, comp_len, crc, fctx
                ),
                lambda payload, counts_slice=counts_slice: decode_position_block_flat(
                    payload, counts_slice
                ),
                raw_bytes,
            )
            if _job_lost(job):
                lost.append((cpos_start, cpos_end, offset))
                continue
            if not hit:
                raw["index"] += raw_bytes
            parts.append((cpos_start, cpos_end, job))
        return parts, lost

    def _plan_values(
        self,
        session: PFSSession,
        bin_id: int,
        cpos: np.ndarray,
        plod_level: int,
        fetcher: _BlockFetcher,
        raw: dict[str, int],
        fctx: _FaultContext,
    ) -> _ValueWork:
        """Request the data blocks covering the needed cells."""
        config = self.meta.config
        n_chunks = self.meta.n_chunks
        counts = self.context.counts64[bin_id]
        table = self.meta.data_blocks[bin_id]
        path = self.files.data_path(bin_id)
        opener = _HandleOpener(session, path, eager=not fetcher.caching)
        n_elem = int(counts[cpos].sum())
        if n_elem == 0:
            return _ValueWork(n_elem=0)

        n_groups = min(plod_level, config.n_groups) if config.plod_enabled else 1
        cell_offsets = self.context.cell_offsets[bin_id]
        row_starts = self.context.data_row_starts[bin_id]

        # The cells needed, grouped per byte group (so each group's
        # payload concatenates contiguously in cpos order).
        if config.plod_enabled:
            if config.group_major:  # V-M-S: cell = g * n_chunks + cpos
                cells_per_group = [g * n_chunks + cpos for g in range(n_groups)]
            else:  # V-S-M: cell = cpos * 7 + g
                cells_per_group = [
                    cpos * config.n_groups + g for g in range(n_groups)
                ]
        else:
            cells_per_group = [cpos]

        # Request each covering compression block exactly once.
        all_cells = np.unique(np.concatenate(cells_per_group))
        jobs: dict[int, _DecodeJob] = {}
        lost_rows: list[int] = []
        codec = self._codec
        for row_idx in _covering_rows(row_starts, all_cells):
            offset, comp_len, raw_len = (int(v) for v in table[row_idx][2:5])
            crc = int(table[row_idx][5])
            if config.plod_enabled:
                decode = lambda payload, raw_len=raw_len: np.frombuffer(  # noqa: E731
                    codec.decode(payload, raw_len), dtype=np.uint8
                )
            else:
                decode = lambda payload, raw_len=raw_len: codec.decode(  # noqa: E731
                    payload, raw_len // 8
                )
            job, hit = fetcher.request(
                (fetcher.generation, path, offset),
                lambda offset=offset, comp_len=comp_len, crc=crc: self._verified_read(
                    session, opener, path, offset, comp_len, crc, fctx
                ),
                decode,
                raw_len,
            )
            jobs[row_idx] = job
            if _job_lost(job):
                lost_rows.append(row_idx)
            elif not hit:
                raw["data"] += raw_len

        vw = _ValueWork(
            n_elem=n_elem,
            n_groups=n_groups,
            cells_per_group=cells_per_group,
            cell_offsets=cell_offsets,
            row_starts=row_starts,
            jobs=jobs,
        )
        if lost_rows:
            self._classify_data_loss(vw, cpos, lost_rows, table, path)
        return vw

    def _classify_data_loss(
        self,
        vw: _ValueWork,
        cpos: np.ndarray,
        lost_rows: list[int],
        table: np.ndarray,
        path: str,
    ) -> None:
        """Map quarantined data blocks onto the degradation policy.

        For each quarantined block, the cells it covered are
        intersected with each requested byte group: group-0 cells (the
        PLoD base plane, or the whole value when PLoD is off) make the
        chunk's points unrecoverable (``fatal_mask``); cells of a
        refinement group ``g >= 1`` only cap the affected chunk's
        effective level at ``g`` (``cell_levels``) — the dummy-fill
        reconstruction applies from there down.
        """
        row_starts = vw.row_starts
        # End cell (exclusive) of each block row; the table is
        # contiguous, so the last row ends at the bin's total cells.
        row_ends = np.append(row_starts[1:], vw.cell_offsets.size - 1)
        levels = np.full(cpos.size, vw.n_groups, dtype=np.int64)
        fatal = np.zeros(cpos.size, dtype=bool)
        fatal_row: int | None = None
        for g, cells in enumerate(vw.cells_per_group):
            hit = np.zeros(cpos.size, dtype=bool)
            for row_idx in lost_rows:
                row_hit = (cells >= row_starts[row_idx]) & (cells < row_ends[row_idx])
                if g == 0 and fatal_row is None and row_hit.any():
                    fatal_row = row_idx
                hit |= row_hit
            if not hit.any():
                continue
            if g == 0:
                fatal |= hit
            else:
                levels[hit] = np.minimum(levels[hit], g)
        if fatal.any():
            vw.fatal_mask = fatal
            vw.fatal_block = (path, int(table[fatal_row][2]))
        if (levels < vw.n_groups).any():
            vw.cell_levels = levels

    # ------------------------------------------------------------------
    def _finish_rank(
        self,
        work: _RankWork,
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None,
        fctx: _FaultContext,
    ) -> RankOutput:
        """Gather, filter and assemble one rank's results (measured CPU)."""
        timers = work.timers
        out_positions: list[np.ndarray] = []
        out_values: list[np.ndarray] = []

        for bw in work.bins:
            positions, counts = self._gather_positions(bw, timers)
            values: np.ndarray | None = None
            if bw.need_values:
                values = self._assemble_values(bw, timers)

            with timers["reconstruction"]:
                vw = bw.value_work
                mask: np.ndarray | None = None
                if query.value_range is not None and not bw.aligned:
                    lo, hi = query.value_range
                    mask = (values >= lo) & (values <= hi)
                if plan.region is not None:
                    interior = plan.interior_of(bw.cpos)
                    if not interior.all():
                        # Only elements of boundary chunks need the
                        # coordinate test; interior chunks pass whole.
                        in_region = np.ones(positions.size, dtype=bool)
                        boundary = ~np.repeat(interior, counts)
                        in_region[boundary] = self.grid.positions_in_region(
                            positions[boundary], plan.region
                        )
                        mask = in_region if mask is None else (mask & in_region)
                if position_filter is not None:
                    hit = position_filter.get(positions)
                    mask = hit if mask is None else (mask & hit)
                if vw is not None and vw.fatal_mask is not None:
                    # Points of unrecoverable chunks leave the answer
                    # (allow_partial — otherwise the plan phase raised).
                    keep = ~np.repeat(vw.fatal_mask, counts)
                    mask = keep if mask is None else (mask & keep)
                if vw is not None and vw.cell_levels is not None:
                    # Count degraded points that actually reach the
                    # result (dummy-filled below the requested level).
                    deg = np.repeat(vw.cell_levels < vw.n_groups, counts)
                    if mask is not None:
                        deg = deg & mask
                    fctx.degraded_points += int(deg.sum())
                if mask is not None:
                    positions = positions[mask]
                    if values is not None:
                        values = values[mask]
                out_positions.append(positions)
                if query.wants_values:
                    out_values.append(values)

        positions = (
            np.concatenate(out_positions) if out_positions else np.empty(0, dtype=np.int64)
        )
        values = None
        if query.wants_values:
            values = (
                np.concatenate(out_values) if out_values else np.empty(0, dtype=np.float64)
            )
        return RankOutput(
            positions=positions,
            values=values,
            timers=timers,
            session=work.session,
            data_raw_bytes=work.raw["data"],
            index_raw_bytes=work.raw["index"],
        )

    def _gather_positions(
        self, bw: _BinWork, timers: TimerRegistry
    ) -> tuple[np.ndarray, np.ndarray]:
        """Slice the wanted chunks out of the decoded index blocks.

        Returns the concatenated global positions (in ``cpos`` order)
        and the per-chunk element counts.  Wanted chunks are gathered as
        maximal runs of consecutive chunk positions — one slice per run
        instead of one Python-level slice per chunk.
        """
        bin_counts = self.context.counts64[bw.bin_id]
        # Cumulative element counts over the whole bin: the offset of a
        # chunk inside a decoded block is pos_offsets[cpos] minus the
        # block's base (precomputed once per store, DESIGN.md §7).
        pos_offsets = self.context.pos_offsets[bw.bin_id]
        with timers["reconstruction"]:
            local_parts: list[np.ndarray] = []
            for cpos_start, cpos_end, job in bw.index_parts:
                flat = job.result
                base = int(pos_offsets[cpos_start])
                lo = int(np.searchsorted(bw.cpos, cpos_start, side="left"))
                hi = int(np.searchsorted(bw.cpos, cpos_end, side="left"))
                wanted = bw.cpos[lo:hi]
                if wanted.size == 0:
                    continue
                breaks = np.flatnonzero(np.diff(wanted) != 1) + 1
                starts = np.concatenate(([0], breaks))
                ends = np.concatenate((breaks, [wanted.size]))
                for s, e in zip(starts, ends):
                    local_parts.append(
                        flat[
                            int(pos_offsets[wanted[s]]) - base :
                            int(pos_offsets[wanted[e - 1] + 1]) - base
                        ]
                    )
            counts = bin_counts[bw.cpos]
            local_ids = (
                np.concatenate(local_parts)
                if local_parts
                else np.empty(0, dtype=np.int64)
            )
            positions = self.grid.global_positions_batch(bw.chunk_ids, local_ids, counts)
        return positions, counts

    def _assemble_values(self, bw: _BinWork, timers: TimerRegistry) -> np.ndarray:
        """Gather cells from decoded data blocks and assemble values.

        Cell gathering + PLoD byte-plane assembly belong to the
        *decompression* component: they are part of recovering values
        from the stored representation and scale with the bytes
        fetched, whereas the paper's "reconstruction" (filtering +
        final assembly of results) is independent of the PLoD level
        (Fig. 8's flat reconstruction line).
        """
        vw = bw.value_work
        config = self.meta.config
        if vw is None or vw.n_elem == 0:
            return np.empty(0, dtype=np.float64)
        decoded = {row_idx: job.result for row_idx, job in vw.jobs.items()}
        with timers["assembly"]:
            group_payloads = [
                self._gather_cells(
                    decoded,
                    vw.row_starts,
                    vw.cell_offsets,
                    cells,
                    as_float=not config.plod_enabled,
                )
                for cells in vw.cells_per_group
            ]
            if config.plod_enabled:
                if vw.cell_levels is not None:
                    counts = self.context.counts64[bw.bin_id][bw.cpos]
                    point_levels = np.repeat(
                        np.maximum(vw.cell_levels, 1), counts
                    )
                    return assemble_from_groups_degraded(
                        group_payloads, vw.n_elem, vw.n_groups, point_levels
                    )
                return assemble_from_groups(group_payloads, vw.n_elem, vw.n_groups)
            return group_payloads[0]

    def _gather_cells(
        self,
        decoded: dict[int, np.ndarray],
        row_starts: np.ndarray,
        cell_offsets: np.ndarray,
        cells: np.ndarray,
        as_float: bool,
    ) -> np.ndarray:
        """Concatenate the payloads of ``cells`` (ascending) out of the
        decoded blocks, slicing maximal runs of consecutive cells.

        A ``None`` entry in ``decoded`` is a quarantined block: its
        cells are zero-filled placeholders, later either dropped
        (fatal loss) or overwritten by the dummy-fill reconstruction
        (refinement loss) — they never reach a result as-is.
        """
        rows = np.searchsorted(row_starts, cells, side="right") - 1
        breaks = np.flatnonzero((np.diff(cells) != 1) | (np.diff(rows) != 0)) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [cells.size]))
        parts: list[np.ndarray] = []
        for s, e in zip(starts, ends):
            row_idx = int(rows[s])
            buf = decoded[row_idx]
            block_base = int(cell_offsets[row_starts[row_idx]])
            lo = int(cell_offsets[cells[s]]) - block_base
            hi = int(cell_offsets[cells[e - 1] + 1]) - block_base
            if buf is None:
                parts.append(
                    np.zeros(
                        (hi - lo) // 8 if as_float else hi - lo,
                        dtype=np.float64 if as_float else np.uint8,
                    )
                )
            else:
                parts.append(buf[lo // 8 : hi // 8] if as_float else buf[lo:hi])
        if not parts:
            return np.empty(0, dtype=np.float64 if as_float else np.uint8)
        return np.concatenate(parts)


# Cell-size computation lives in the planner (PlanContext precomputes
# per-bin cumsums at store open); the name is kept for importers.
_cell_sizes = cell_sizes


def _covering_rows(row_starts: np.ndarray, cells: np.ndarray) -> list[int]:
    """Indices of the block-table rows containing the given cells."""
    if cells.size == 0 or row_starts.size == 0:
        return []
    rows = np.searchsorted(row_starts, cells, side="right") - 1
    return np.unique(rows).tolist()
