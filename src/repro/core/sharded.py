"""ShardedMLOCStore: bin-range scale-out over independent stores.

One :class:`~repro.core.store.MLOCStore` serves a variable through a
single executor.  For datasets past what one store instance should
own (the 512 GB harness configurations), this module partitions the
*bin axis* across ``n_shards`` independent store handles: shard ``s``
owns the contiguous bin range ``[bounds[s], bounds[s+1])`` — the
shard-level extension of the column-order rule (each executor touches
the fewest bin subfiles, and a narrow value-range query touches the
fewest shards).  Ranges are cut by
:func:`~repro.parallel.scheduler.weighted_bin_partition` over per-bin
stored bytes, so shards carry near-equal data volumes.

Sharding is **metadata-level only**: the on-disk layout (subfiles,
block tables, metadata — FORMAT.md) is byte-identical to the
unsharded store; a shard is an ordinary store handle whose queries
are narrowed to its bin range.  Consequently any store can be opened
with any shard count, and reads scatter/gather:

* **scatter** — the query is planned once against the shared
  :class:`~repro.core.planner.PlanContext`, then the plan is narrowed
  per shard by bin mask.  The narrowed plans exactly partition the
  planned work (every (bin, chunk) block lands in exactly one shard),
  and shards whose range contains no planned bin are skipped.
* **gather** — every stored element belongs to exactly one bin, hence
  one shard, so concatenating shard results and sorting by position
  reproduces the unsharded answer bit-for-bit (positions are unique;
  pinned by ``tests/test_sharded_store.py``).

Shards are notionally concurrent store servers: merged component
times take the per-component **max** over shards (the slowest shard
gates the answer), which is what produces the near-linear simulated
scaling of the harness' per-shard scaling rows.  Stats are merged
through the canonical :data:`~repro.core.result.SUMMED_STAT_KEYS`
registry.  Decode work of every shard lands on the same persistent
process pool under ``backend="processes"`` (one warm pool per width,
:func:`~repro.parallel.procpool.get_pool`).
"""

from __future__ import annotations

import numpy as np

from repro.core.planner import QueryPlan
from repro.core.query import Query
from repro.core.result import (
    BatchResult,
    ComponentTimes,
    QueryResult,
    aggregate_stats,
)
from repro.core.store import MLOCStore, StorageReport, stamp_tol_stats
from repro.index.bitmap import Bitmap
from repro.parallel.scheduler import weighted_bin_partition
from repro.pfs.simfs import SimulatedPFS

__all__ = ["ShardedMLOCStore"]


def _max_times(times: list[ComponentTimes]) -> ComponentTimes:
    """Component-wise max: concurrent shards, slowest gates each phase."""
    return ComponentTimes(
        io=max((t.io for t in times), default=0.0),
        decompression=max((t.decompression for t in times), default=0.0),
        reconstruction=max((t.reconstruction for t in times), default=0.0),
        communication=max((t.communication for t in times), default=0.0),
    )


class ShardedMLOCStore:
    """Scatter/gather façade over per-bin-range :class:`MLOCStore` shards.

    Opens ``n_shards`` independent store handles over one written
    variable, all sharing a single metadata object and planning
    context (the per-bin tables are built exactly once).  Every
    keyword accepted by :meth:`MLOCStore.open` — backend, worker
    count, caching, fault-tolerance knobs — applies per shard;
    ``n_ranks`` is each shard's rank count, so total simulated
    parallelism is ``n_shards * n_ranks``.
    """

    def __init__(
        self,
        fs: SimulatedPFS,
        root: str,
        meta,
        *,
        n_shards: int = 2,
        **store_options,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.fs = fs
        self.root = root.rstrip("/")
        self.meta = meta
        self.n_shards = n_shards
        # First shard builds the shared context; the rest reuse it.
        first = MLOCStore(fs, self.root, meta, **store_options)
        store_options = dict(store_options)
        store_options["context"] = first.context
        store_options.pop("cache_bytes", None)  # already materialized
        store_options["cache"] = first.cache
        self.shards = [first] + [
            MLOCStore(fs, self.root, meta, **store_options)
            for _ in range(n_shards - 1)
        ]
        self.context = first.context
        #: Bin-range boundaries; shard ``s`` owns ``[b[s], b[s+1])``.
        self.shard_bounds = weighted_bin_partition(
            self._bin_weights(), n_shards
        )

    @classmethod
    def open(
        cls,
        fs: SimulatedPFS,
        root: str,
        variable: str = "var",
        *,
        n_shards: int = 2,
        **store_options,
    ) -> "ShardedMLOCStore":
        """Open ``root/variable`` as ``n_shards`` bin-range shards."""
        probe = MLOCStore.open(fs, root, variable)
        return cls(
            fs, probe.root, probe.meta, n_shards=n_shards, **store_options
        )

    # ------------------------------------------------------------------
    def _bin_weights(self) -> np.ndarray:
        """Stored bytes per bin (data + index payloads) — the partition
        weight, so shards balance compressed volume, not bin count."""
        n_bins = self.meta.config.n_bins
        weights = np.zeros(n_bins, dtype=np.float64)
        for b in range(n_bins):
            data = self.meta.data_blocks[b]
            index = self.meta.index_blocks[b]
            weights[b] = (
                float(data[:, 3].sum()) if data.size else 0.0
            ) + (float(index[:, 3].sum()) if index.size else 0.0)
        return weights

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.meta.shape

    @property
    def n_elements(self) -> int:
        return self.shards[0].n_elements

    @property
    def variable(self) -> str:
        return self.meta.variable

    def shard_of_bin(self, bin_id: int) -> int:
        """Which shard owns ``bin_id``."""
        if not (0 <= bin_id < self.meta.config.n_bins):
            raise ValueError(f"bin {bin_id} out of range")
        return int(
            np.searchsorted(self.shard_bounds, bin_id, side="right") - 1
        )

    def shard_weights(self) -> np.ndarray:
        """Stored bytes owned by each shard (the balance diagnostic)."""
        weights = self._bin_weights()
        return np.array(
            [
                float(weights[self.shard_bounds[s] : self.shard_bounds[s + 1]].sum())
                for s in range(self.n_shards)
            ]
        )

    # ------------------------------------------------------------------
    def _narrow(self, plan: QueryPlan, shard: int) -> QueryPlan | None:
        """The sub-plan of ``plan`` restricted to one shard's bin range.

        Returns ``None`` when no planned bin falls in the range.  The
        chunk columns are kept whole: chunk selection is the spatial
        half of the plan and is bin-independent, so the narrowed
        block lists (bins x chunks) exactly partition the original.
        """
        lo, hi = int(self.shard_bounds[shard]), int(self.shard_bounds[shard + 1])
        mask = (plan.bin_ids >= lo) & (plan.bin_ids < hi)
        if not mask.any():
            return None
        return QueryPlan(
            bin_ids=plan.bin_ids[mask],
            aligned=plan.aligned[mask],
            cpos=plan.cpos,
            chunk_ids=plan.chunk_ids,
            interior=plan.interior,
            region=plan.region,
        )

    def _scatter_gather(
        self,
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None = None,
        fetcher=None,
        chunk_levels: np.ndarray | None = None,
    ) -> QueryResult:
        """Execute the narrowed sub-plans and merge shard results.

        A shared ``fetcher`` is passed to every shard's executor:
        cache keys are ``(generation, path, offset)`` and shard bin
        ranges are disjoint, so one fetcher dedups across the whole
        scatter (and, when the broker shares it further, across
        queries) without shards ever colliding on a key.
        """
        shard_results: list[QueryResult] = []
        shards_hit = 0
        for s, store in enumerate(self.shards):
            sub = self._narrow(plan, s)
            if sub is None:
                continue
            shards_hit += 1
            shard_results.append(
                store.executor.execute(
                    query,
                    sub,
                    position_filter=position_filter,
                    fetcher=fetcher,
                    chunk_levels=chunk_levels,
                )
            )

        if shard_results:
            positions = np.concatenate([r.positions for r in shard_results])
            order = np.argsort(positions, kind="stable")
            positions = positions[order]
            values = None
            if query.wants_values:
                values = np.concatenate([r.values for r in shard_results])[order]
        else:
            positions = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=np.float64) if query.wants_values else None

        stats = aggregate_stats(r.stats for r in shard_results)
        stats["n_shards"] = self.n_shards
        stats["shards_hit"] = shards_hit
        stats["n_ranks"] = self.n_shards * self.shards[0].executor.n_ranks
        stats["backend"] = self.shards[0].executor.backend
        stats["n_results"] = int(positions.size)
        # Plan-derived counters the per-shard sum would misstate: every
        # shard repeats the whole chunk column (summing overcounts
        # chunks by shards_hit), and the flat store emits these per
        # query, so the session-parity contract stamps the union-plan
        # values here instead of dropping them.
        stats["bins_accessed"] = int(plan.bin_ids.size)
        stats["aligned_bins"] = int(plan.aligned.sum())
        stats["chunks_accessed"] = int(plan.cpos.size)
        backends = {r.stats.get("decode_backend") for r in shard_results}
        if len(backends) == 1:
            stats["decode_backend"] = backends.pop()
        elif backends:  # "auto" may resolve differently per shard
            stats["decode_backend"] = "mixed"
        stats["quarantined_blocks"] = len(self.quarantined_blocks)
        return QueryResult(
            positions=positions,
            values=values,
            times=_max_times([r.times for r in shard_results]),
            stats=stats,
        )

    def plan(self, query: Query) -> tuple[QueryPlan, dict[str, int]]:
        """Plan ``query`` once against the shared context."""
        return self.shards[0]._plan(query)

    def estimated_raw_bytes(self, query: Query, plan: QueryPlan) -> int:
        """Estimated raw decode bytes of a planned query (admission cost).

        Like the flat store, error-bounded queries are costed at their
        per-chunk levels — the broker admits what will be read.
        """
        return self.shards[0].executor.estimated_raw_bytes(
            query, plan, chunk_levels=self.resolve_levels(query)
        )

    # ------------------------------------------------------------------
    # Error-bounded retrieval: the bounds table describes the whole
    # variable (bins partition values, not chunks), so every shard
    # shares the first shard's peb/level resolution.
    @property
    def peb(self):
        """The per-chunk PLoD error-bounds table (whole-variable)."""
        return self.shards[0].peb

    def resolve_levels(self, query: Query) -> np.ndarray | None:
        """Per-chunk PLoD levels meeting the query's error bound."""
        return self.shards[0].resolve_levels(query)

    def _tol_params(self, query: Query) -> tuple[float, str] | None:
        return self.shards[0]._tol_params(query)

    @property
    def _primary_executor(self):
        return self.shards[0].executor

    @property
    def quarantined_blocks(self) -> dict[tuple[str, int], str]:
        """Union of the per-shard quarantine registries.

        Shard bin ranges are disjoint, so a block extent can only be
        quarantined by the shard that owns its bin — the union is a
        plain merge.
        """
        merged: dict[tuple[str, int], str] = {}
        for shard in self.shards:
            merged.update(shard.executor.quarantine)
        return merged

    @property
    def cache(self):
        """The decoded-block cache all shards share."""
        return self.shards[0].cache

    def new_fetcher(self, shared: bool = False):
        """A block fetcher usable across every shard's executor.

        Fetcher keys are ``(generation, path, offset)``; every shard is
        opened on the same metadata (same generation) and shard bin
        ranges are disjoint, so one fetcher serves the whole scatter.
        """
        return self.shards[0].executor.new_fetcher(shared=shared)

    def _stamp_tol_stats(
        self,
        query: Query,
        plan: QueryPlan,
        levels: np.ndarray,
        result: QueryResult,
        *,
        enforce: bool = True,
    ) -> None:
        stamp_tol_stats(self, query, plan, levels, result, enforce=enforce)

    def execute_planned(
        self,
        query: Query,
        plan: QueryPlan,
        *,
        position_filter: Bitmap | None = None,
        fetcher=None,
        chunk_levels: np.ndarray | None = None,
    ) -> QueryResult:
        """Execute an already-planned query across the shards.

        The refinement session drives its steps through this entry so
        flat and sharded stores expose one execution surface.
        """
        return self._scatter_gather(
            query,
            plan,
            position_filter,
            fetcher=fetcher,
            chunk_levels=chunk_levels,
        )

    def query(
        self,
        query: Query,
        position_filter: Bitmap | None = None,
        *,
        fetcher=None,
        planned: tuple[QueryPlan, dict[str, int]] | None = None,
    ) -> QueryResult:
        """Plan once, scatter narrowed sub-plans, gather shard results."""
        plan, plan_stats = self.plan(query) if planned is None else planned
        levels = self.resolve_levels(query)
        result = self._scatter_gather(
            query, plan, position_filter, fetcher=fetcher, chunk_levels=levels
        )
        result.stats.update(plan_stats)
        if levels is not None:
            self._stamp_tol_stats(query, plan, levels, result)
        return result

    def query_many(self, queries: list[Query]) -> BatchResult:
        """Run a batch; per-query scatter/gather, batch-level aggregate."""
        results = [self.query(q) for q in queries]
        times = ComponentTimes()
        for r in results:
            times = times + r.times
        stats = aggregate_stats(r.stats for r in results)
        stats["n_queries"] = len(results)
        stats["n_shards"] = self.n_shards
        stats["quarantined_blocks"] = sum(
            len(s.executor.quarantine) for s in self.shards
        )
        return BatchResult(results=results, times=times, stats=stats)

    def open_session(self, query: Query):
        """Open a progressive refinement session over the shards.

        Sessions drive their steps through :meth:`plan` /
        :meth:`execute_planned` with one shared fetcher, so the sharded
        session holds planes and refines exactly like the flat store's
        (parity pinned by ``tests/test_sharded_store.py``).
        """
        from repro.core.engine.session import RefinementSession

        return RefinementSession(self, query)

    # ------------------------------------------------------------------
    def storage_report(self) -> StorageReport:
        """On-disk footprint (sharding adds no bytes: metadata-level only)."""
        return self.shards[0].storage_report()

    def runtime_stats(self) -> dict:
        """Open-state counters, aggregated across shards.

        Shaped like :meth:`MLOCStore.runtime_stats` so consumers (the
        CLI ``stats`` subcommand, the broker) handle flat and sharded
        stores uniformly.  Shards share one planning context and one
        block cache, so those structures are reported exactly once;
        the per-shard quarantine registries are unioned (the same
        block extent can only be quarantined by the shard that owns
        its bin).  The shard map rides alongside, and the unaggregated
        per-shard handles stay available under ``"shards"``.
        """
        first = self.shards[0].runtime_stats()
        out: dict = {
            "n_ranks": self.n_shards * self.shards[0].executor.n_ranks,
            "backend": first["backend"],
            "coalesce_gap": first["coalesce_gap"],
            "readahead": first["readahead"],
        }
        if "plan_cache" in first:  # shared context: one cache for all shards
            out["plan_cache"] = first["plan_cache"]
        if "block_cache" in first:  # shared cache object
            out["block_cache"] = first["block_cache"]
        quarantine: dict[str, str] = {}
        for shard in self.shards:
            quarantine.update(shard.runtime_stats()["quarantine"])
        out["quarantine"] = dict(sorted(quarantine.items()))
        out["n_shards"] = self.n_shards
        out["shard_bounds"] = [int(b) for b in self.shard_bounds]
        out["shard_weights"] = [float(w) for w in self.shard_weights()]
        out["shards"] = [s.runtime_stats() for s in self.shards]
        return out
