"""On-disk metadata of an MLOC dataset.

The metadata is everything the store needs besides the bin files
themselves: the layout configuration, the bin edges, the per-bin
per-chunk element counts (in curve order), and the block tables mapping
cell ranges to byte extents in the data/index subfiles.  It is written
to the dataset's ``meta`` file and is small relative to the data (the
heavyweight position information lives in the per-bin index files,
which are read and charged per query).

Block tables are plain int64 arrays for compactness:

* data blocks: rows of ``(cell_start, cell_end, offset, comp_len,
  raw_len, crc32)`` where cells are bin-local in the configured
  nesting order and ``crc32`` covers the compressed payload;
* index blocks: rows of ``(cpos_start, cpos_end, offset, comp_len,
  crc32)`` where ``cpos`` is the chunk's position in curve order.
"""

from __future__ import annotations

import io
import pickle
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MLOCConfig

__all__ = ["StoreMeta", "DATA_BLOCK_FIELDS", "INDEX_BLOCK_FIELDS"]

DATA_BLOCK_FIELDS = ("cell_start", "cell_end", "offset", "comp_len", "raw_len", "crc32")
INDEX_BLOCK_FIELDS = ("cpos_start", "cpos_end", "offset", "comp_len", "crc32")

_FORMAT_VERSION = 1


@dataclass
class StoreMeta:
    """Complete metadata of one stored variable."""

    variable: str
    shape: tuple[int, ...]
    config: MLOCConfig
    edges: np.ndarray
    #: Element counts per (bin, chunk-in-curve-order), uint32.
    counts: np.ndarray
    #: Per-bin data block tables, each ``(n_blocks, 6)`` int64.
    data_blocks: list[np.ndarray] = field(default_factory=list)
    #: Per-bin index block tables, each ``(n_blocks, 5)`` int64.
    index_blocks: list[np.ndarray] = field(default_factory=list)

    def validate(self) -> None:
        n_bins = self.config.n_bins
        if self.edges.shape != (n_bins + 1,):
            raise ValueError(
                f"edges shape {self.edges.shape} != ({n_bins + 1},)"
            )
        if self.counts.ndim != 2 or self.counts.shape[0] != n_bins:
            raise ValueError(f"counts shape {self.counts.shape} invalid for {n_bins} bins")
        if len(self.data_blocks) != n_bins or len(self.index_blocks) != n_bins:
            raise ValueError("block tables must have one entry per bin")
        n_elements = int(np.prod(self.shape))
        if int(self.counts.sum()) != n_elements:
            raise ValueError(
                f"counts sum {int(self.counts.sum())} != element count {n_elements}"
            )

    @property
    def n_chunks(self) -> int:
        return int(self.counts.shape[1])

    def fingerprint(self) -> int:
        """CRC32 of the serialized metadata.

        The store **generation**: manifests record it per sealed
        member, and the block/plan caches key on it, so state cached
        under one layout of the same paths can never serve a
        rewritten store.
        """
        return zlib.crc32(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Serialize (pickle protocol 4; a trusted research format)."""
        payload = {
            "version": _FORMAT_VERSION,
            "variable": self.variable,
            "shape": tuple(self.shape),
            "config": self.config,
            "edges": self.edges,
            "counts": self.counts,
            "data_blocks": self.data_blocks,
            "index_blocks": self.index_blocks,
        }
        buf = io.BytesIO()
        pickle.dump(payload, buf, protocol=4)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "StoreMeta":
        payload = pickle.loads(raw)
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported metadata version {version!r}")
        meta = cls(
            variable=payload["variable"],
            shape=tuple(payload["shape"]),
            config=payload["config"],
            edges=payload["edges"],
            counts=payload["counts"],
            data_blocks=payload["data_blocks"],
            index_blocks=payload["index_blocks"],
        )
        meta.validate()
        return meta
