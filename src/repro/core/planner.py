"""Query planning: bin selection, aligned-bin classification, chunk
selection, and the block work-list (Section III-D).

Given a query, the planner decides — entirely from in-memory metadata,
without touching data — which value bins must be visited (and which of
those are *aligned*, i.e. guaranteed to contain only qualifying values),
which chunks intersect the spatial constraint (and which lie fully
inside it, needing no position filtering), and materializes the
per-(bin, chunk) work items handed to the scheduler.

The planning phase is an end-to-end array pipeline: the work-list is a
columnar :class:`~repro.parallel.scheduler.BlockList` (no per-block
Python objects), chunk interiority is one vectorized kernel, and the
per-query constants — per-bin cell-offset tables, int64 count views,
block-table row starts — are precomputed once per store in a
:class:`PlanContext`, which also fronts an optional :class:`PlanCache`
LRU so repeated query shapes skip planning entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.binning.binner import BinScheme
from repro.core.chunking import ChunkGrid, normalize_region
from repro.core.query import Query
from repro.parallel.scheduler import BlockList, BlockRef
from repro.plod.byteplanes import GROUP_WIDTHS
from repro.sfc.hierarchical import level_prefix_counts
from repro.sfc.linearize import CurveOrder

if TYPE_CHECKING:
    from repro.core.meta import StoreMeta

__all__ = [
    "QueryPlan",
    "PlanCache",
    "PlanContext",
    "plan_query",
    "cell_sizes",
    "covering_rows",
]


@dataclass
class QueryPlan:
    """The planner's decisions for one query.

    Plans may be shared through a :class:`PlanCache`; treat instances
    handed out by :meth:`PlanContext.plan` as immutable.
    """

    #: Ids of the bins that can contain qualifying values, sorted.
    bin_ids: np.ndarray
    #: Per selected bin: True if its whole content satisfies the VC.
    aligned: np.ndarray
    #: Curve positions of the chunks to visit, sorted.
    cpos: np.ndarray
    #: Row-major chunk ids aligned with ``cpos``.
    chunk_ids: np.ndarray
    #: Per chunk: True if it lies entirely inside the region (no SC filter).
    interior: np.ndarray
    #: Normalized region or None.
    region: tuple[tuple[int, int], ...] | None

    def is_aligned(self, bin_id: int) -> bool:
        idx = int(np.searchsorted(self.bin_ids, bin_id))
        if idx >= self.bin_ids.size or self.bin_ids[idx] != bin_id:
            raise ValueError(f"bin {bin_id} is not part of this plan")
        return bool(self.aligned[idx])

    def chunk_is_interior(self, cpos: int) -> bool:
        idx = int(np.searchsorted(self.cpos, cpos))
        if idx >= self.cpos.size or self.cpos[idx] != cpos:
            raise ValueError(f"chunk position {cpos} is not part of this plan")
        return bool(self.interior[idx])

    def interior_of(self, cpos: np.ndarray) -> np.ndarray:
        """Vectorized interior flags for an array of chunk positions."""
        cpos = np.asarray(cpos, dtype=np.int64)
        if self.cpos.size == 0:
            if cpos.size:
                raise ValueError(
                    f"chunk positions {cpos.tolist()} are not part of this plan"
                )
            return np.empty(0, dtype=bool)
        idx = np.searchsorted(self.cpos, cpos)
        clipped = np.minimum(idx, self.cpos.size - 1)
        unknown = self.cpos[clipped] != cpos
        if unknown.any():
            raise ValueError(
                f"chunk positions {cpos[unknown].tolist()} are not part of this plan"
            )
        return self.interior[clipped]

    def block_list(self) -> BlockList:
        """The (bin, chunk) work items as a columnar array work-list.

        Bins and chunk positions are each sorted ascending, so the
        repeat/tile product is already bin-major ordered — exactly the
        order the column scheduler wants.
        """
        n_chunks = self.cpos.size
        n_bins = self.bin_ids.size
        return BlockList(
            bin_ids=np.repeat(self.bin_ids.astype(np.int64), n_chunks),
            cpos=np.tile(self.cpos, n_bins),
            chunk_ids=np.tile(self.chunk_ids, n_bins),
        )

    def block_refs(self) -> list[BlockRef]:
        """The work items as objects (tools/tests; hot paths use
        :meth:`block_list`)."""
        return self.block_list().to_refs()

    def narrow(self, keep: np.ndarray) -> int:
        """Drop the chunks where ``keep`` is False, in place.

        Only valid on caller-owned plans (:meth:`PlanContext.
        plan_uncached`) — plans served by the cache are shared and must
        not be mutated.  Keeping a subsequence preserves the sorted
        order the ``searchsorted`` lookups rely on.  Returns the number
        of chunks dropped.
        """
        dropped = int(self.cpos.size - np.count_nonzero(keep))
        if dropped:
            self.cpos = self.cpos[keep]
            self.chunk_ids = self.chunk_ids[keep]
            self.interior = self.interior[keep]
        return dropped

    def narrow_bins(self, keep: np.ndarray) -> int:
        """Drop the bins where ``keep`` is False, in place.

        The bin-axis counterpart of :meth:`narrow`, with the same
        caller-owned-plan contract.  Returns the number of bins
        dropped.
        """
        dropped = int(self.bin_ids.size - np.count_nonzero(keep))
        if dropped:
            self.bin_ids = self.bin_ids[keep]
            self.aligned = self.aligned[keep]
        return dropped

    @property
    def n_blocks(self) -> int:
        return int(self.bin_ids.size) * int(self.cpos.size)


def cell_sizes(config, counts: np.ndarray, n_chunks: int) -> np.ndarray:
    """Byte size of every cell of a bin, in file cell order."""
    counts = counts.astype(np.int64)
    if not config.plod_enabled:
        return counts * 8
    widths = np.array(GROUP_WIDTHS, dtype=np.int64)
    if config.group_major:  # cell = g * n_chunks + cpos
        return (widths[:, None] * counts[None, :]).reshape(-1)
    # cell = cpos * n_groups + g
    return (counts[:, None] * widths[None, :]).reshape(-1)


class PlanCache:
    """Small LRU of query plans keyed by a query fingerprint.

    Planning is deterministic, so serving a cached plan can never
    change results — it only skips the planning work.  Cached plans
    are shared between queries and must not be mutated.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"plan cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[tuple, QueryPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: tuple) -> QueryPlan | None:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: tuple, plan: QueryPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)


class PlanContext:
    """Store-resident planning context, built once per opened store.

    Precomputes everything per-query planning and rank-work assembly
    would otherwise rebuild from the raw metadata on every call:

    * ``counts64`` — the per-(bin, chunk) element counts as int64;
    * ``pos_offsets`` — per bin, the cumulative element count over
      chunk positions (prefix sums used to slice decoded index blocks);
    * ``cell_offsets`` — per bin, the cumulative byte offset of every
      layout cell (prefix sums over :func:`cell_sizes`);
    * ``index_row_starts`` / ``data_row_starts`` — the first column of
      each bin's block tables, contiguous for ``searchsorted``;
    * the hierarchical-curve level prefix table, when applicable.

    With ``plan_cache > 0`` the context also keeps a :class:`PlanCache`
    so repeated query shapes — the hot case for a serving workload —
    skip planning entirely.
    """

    def __init__(
        self,
        grid: ChunkGrid,
        curve: CurveOrder,
        scheme: BinScheme | None = None,
        meta: "StoreMeta | None" = None,
        *,
        hierarchical: bool = False,
        plan_cache: int = 0,
    ) -> None:
        if plan_cache < 0:
            raise ValueError(f"plan_cache must be >= 0, got {plan_cache}")
        self.grid = grid
        self.curve = curve
        self.scheme = scheme
        self.hierarchical = hierarchical
        self.level_prefixes = (
            level_prefix_counts(grid.grid_shape) if hierarchical else None
        )
        self.cache = PlanCache(plan_cache) if plan_cache > 0 else None
        self.counts64: np.ndarray | None = None
        self.pos_offsets: np.ndarray | None = None
        #: Per-bin element totals (``counts.sum(axis=1)``), hoisted here
        #: so selectivity estimation never rebuilds them per call.
        self.bin_totals: np.ndarray | None = None
        self.cell_offsets: list[np.ndarray] = []
        self.index_row_starts: list[np.ndarray] = []
        self.data_row_starts: list[np.ndarray] = []
        if meta is not None:
            self.counts64 = meta.counts.astype(np.int64)
            self.bin_totals = self.counts64.sum(axis=1)
            n_bins, n_chunks = self.counts64.shape
            self.pos_offsets = np.zeros((n_bins, n_chunks + 1), dtype=np.int64)
            np.cumsum(self.counts64, axis=1, out=self.pos_offsets[:, 1:])
            for bin_id in range(n_bins):
                sizes = cell_sizes(meta.config, self.counts64[bin_id], n_chunks)
                offsets = np.zeros(sizes.size + 1, dtype=np.int64)
                np.cumsum(sizes, out=offsets[1:])
                self.cell_offsets.append(offsets)
                self.index_row_starts.append(
                    np.ascontiguousarray(meta.index_blocks[bin_id][:, 0])
                )
                self.data_row_starts.append(
                    np.ascontiguousarray(meta.data_blocks[bin_id][:, 0])
                )

    @classmethod
    def for_store(
        cls,
        meta: "StoreMeta",
        grid: ChunkGrid,
        curve: CurveOrder,
        scheme: BinScheme | None = None,
        *,
        plan_cache: int = 0,
    ) -> "PlanContext":
        return cls(
            grid,
            curve,
            scheme,
            meta,
            hierarchical=meta.config.curve == "hierarchical",
            plan_cache=plan_cache,
        )

    # ------------------------------------------------------------------
    def fingerprint(self, query: Query) -> tuple:
        """Cache key: everything a plan (or its execution shape) can
        depend on — value range, normalized region, levels, output."""
        region = (
            None
            if query.region is None
            else normalize_region(query.region, self.grid.shape)
        )
        return (
            query.value_range,
            region,
            query.plod_level,
            query.resolution_level,
            query.output,
            query.tol,
            query.tol_metric,
        )

    def plan(self, query: Query) -> QueryPlan:
        """Plan a query, through the LRU when one is configured.

        The returned plan may be shared with other queries — treat it
        as immutable (use :meth:`plan_uncached` for a private copy).
        """
        if self.cache is None:
            return self.plan_uncached(query)
        key = self.fingerprint(query)
        plan = self.cache.get(key)
        if plan is None:
            plan = self.plan_uncached(query)
            self.cache.put(key, plan)
        return plan

    def plan_uncached(self, query: Query) -> QueryPlan:
        """Always plan from scratch; the result is caller-owned."""
        if self.scheme is None:
            raise ValueError("PlanContext was built without a bin scheme")
        return plan_query(
            self.grid,
            self.curve,
            self.scheme,
            query,
            hierarchical=self.hierarchical,
            prefixes=self.level_prefixes,
        )

    def prune_plan(self, plan: QueryPlan, hbi) -> int:
        """Drop plan chunks the hierarchical index proves empty.

        Two-stage refinement over a caller-owned plan: interior tree
        nodes first rule out whole chunk-runs whose cardinality over
        the plan's bin range is zero (no per-chunk work at all), then
        the exact per-chunk counts narrow the surviving runs.  A chunk
        holding zero elements of the selected bins contributes no
        positions and no values, so dropping it cannot change the
        answer — pruned plans stay bit-identical to unpruned ones
        (DESIGN.md §6).  Returns the number of chunks dropped.
        """
        if plan.bin_ids.size == 0 or plan.cpos.size == 0:
            return 0
        bins = plan.bin_ids.astype(np.int64)
        bin_lo, bin_hi = int(bins[0]), int(bins[-1]) + 1
        run_totals, _ = hbi.range_run_counts(bin_lo, bin_hi)
        keep = run_totals[plan.cpos // hbi.leaf_span] > 0
        survivors = np.flatnonzero(keep)
        if survivors.size:
            sub = plan.cpos[survivors]
            if bin_hi - bin_lo == bins.size:  # contiguous bin range
                exact = self.counts64[bin_lo:bin_hi, sub].sum(axis=0)
            else:
                exact = self.counts64[bins][:, sub].sum(axis=0)
            keep[survivors[exact == 0]] = False
        return plan.narrow(keep)


def plan_query(
    grid: ChunkGrid,
    curve: CurveOrder,
    scheme: BinScheme,
    query: Query,
    *,
    hierarchical: bool = False,
    prefixes: np.ndarray | None = None,
) -> QueryPlan:
    """Plan a query against one stored variable.

    Parameters
    ----------
    grid, curve, scheme:
        The store's geometry, chunk ordering, and bin scheme.
    query:
        The access request.
    hierarchical:
        Whether the store uses the hierarchical (subset-multiresolution)
        curve; required for ``query.resolution_level``.
    prefixes:
        Optional precomputed hierarchical level prefix table (from a
        :class:`PlanContext`); derived from the grid when omitted.
    """
    # --- Value constraint -> bins -------------------------------------
    if query.value_range is not None:
        lo, hi = query.value_range
        bin_ids, aligned = scheme.bins_overlapping(float(lo), float(hi))
    else:
        # No VC: every bin participates and no value filtering is
        # needed anywhere, which is exactly the "aligned" property.
        bin_ids = np.arange(scheme.n_bins, dtype=np.int32)
        aligned = np.ones(scheme.n_bins, dtype=bool)

    # --- Spatial constraint -> chunks ----------------------------------
    if query.region is not None:
        region = normalize_region(query.region, grid.shape)
        chunk_ids = grid.chunks_overlapping(region)
        interior = grid.chunks_within_region(chunk_ids, region)
    else:
        region = None
        chunk_ids = np.arange(grid.n_chunks, dtype=np.int64)
        interior = np.ones(grid.n_chunks, dtype=bool)

    cpos = curve.positions_of(chunk_ids)

    # --- Subset-based multiresolution ----------------------------------
    if query.resolution_level is not None:
        if not hierarchical:
            raise ValueError(
                "resolution_level requires a store written with the "
                "'hierarchical' curve (subset-based multiresolution)"
            )
        if prefixes is None:
            prefixes = level_prefix_counts(grid.grid_shape)
        level = min(query.resolution_level, prefixes.size - 1)
        keep = cpos < prefixes[level]
        cpos, chunk_ids, interior = cpos[keep], chunk_ids[keep], interior[keep]

    order = np.argsort(cpos)
    return QueryPlan(
        bin_ids=bin_ids,
        aligned=aligned,
        cpos=cpos[order],
        chunk_ids=chunk_ids[order],
        interior=interior[order],
        region=region,
    )


def covering_rows(row_starts: np.ndarray, cells: np.ndarray) -> list[int]:
    """Indices of the block-table rows containing the given cells.

    ``row_starts`` is a block table's per-row first-cell column (sorted
    ascending); ``cells`` must be sorted ascending.  Used by the engine
    to turn a set of needed layout cells into the distinct compression
    blocks that must be fetched.
    """
    if cells.size == 0 or row_starts.size == 0:
        return []
    rows = np.searchsorted(row_starts, cells, side="right") - 1
    return np.unique(rows).tolist()
