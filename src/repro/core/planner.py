"""Query planning: bin selection, aligned-bin classification, chunk
selection, and the block work-list (Section III-D).

Given a query, the planner decides — entirely from in-memory metadata,
without touching data — which value bins must be visited (and which of
those are *aligned*, i.e. guaranteed to contain only qualifying values),
which chunks intersect the spatial constraint (and which lie fully
inside it, needing no position filtering), and materializes the
per-(bin, chunk) work items handed to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.binning.binner import BinScheme
from repro.core.chunking import ChunkGrid, normalize_region
from repro.core.query import Query
from repro.parallel.scheduler import BlockRef
from repro.sfc.hierarchical import level_prefix_counts
from repro.sfc.linearize import CurveOrder

__all__ = ["QueryPlan", "plan_query"]


@dataclass
class QueryPlan:
    """The planner's decisions for one query."""

    #: Ids of the bins that can contain qualifying values, sorted.
    bin_ids: np.ndarray
    #: Per selected bin: True if its whole content satisfies the VC.
    aligned: np.ndarray
    #: Curve positions of the chunks to visit, sorted.
    cpos: np.ndarray
    #: Row-major chunk ids aligned with ``cpos``.
    chunk_ids: np.ndarray
    #: Per chunk: True if it lies entirely inside the region (no SC filter).
    interior: np.ndarray
    #: Normalized region or None.
    region: tuple[tuple[int, int], ...] | None

    def is_aligned(self, bin_id: int) -> bool:
        idx = np.searchsorted(self.bin_ids, bin_id)
        return bool(self.aligned[idx])

    def chunk_is_interior(self, cpos: int) -> bool:
        idx = np.searchsorted(self.cpos, cpos)
        return bool(self.interior[idx])

    def interior_of(self, cpos: np.ndarray) -> np.ndarray:
        """Vectorized interior flags for an array of chunk positions."""
        idx = np.searchsorted(self.cpos, np.asarray(cpos, dtype=np.int64))
        return self.interior[idx]

    def block_refs(self) -> list[BlockRef]:
        """Materialize the (bin, chunk) work items for the scheduler."""
        refs: list[BlockRef] = []
        for b in self.bin_ids:
            for cp, cid in zip(self.cpos, self.chunk_ids):
                refs.append(BlockRef(int(b), int(cp), int(cid)))
        return refs

    @property
    def n_blocks(self) -> int:
        return int(self.bin_ids.size) * int(self.cpos.size)


def plan_query(
    grid: ChunkGrid,
    curve: CurveOrder,
    scheme: BinScheme,
    query: Query,
    *,
    hierarchical: bool = False,
) -> QueryPlan:
    """Plan a query against one stored variable.

    Parameters
    ----------
    grid, curve, scheme:
        The store's geometry, chunk ordering, and bin scheme.
    query:
        The access request.
    hierarchical:
        Whether the store uses the hierarchical (subset-multiresolution)
        curve; required for ``query.resolution_level``.
    """
    # --- Value constraint -> bins -------------------------------------
    if query.value_range is not None:
        lo, hi = query.value_range
        bin_ids, aligned = scheme.bins_overlapping(float(lo), float(hi))
    else:
        # No VC: every bin participates and no value filtering is
        # needed anywhere, which is exactly the "aligned" property.
        bin_ids = np.arange(scheme.n_bins, dtype=np.int32)
        aligned = np.ones(scheme.n_bins, dtype=bool)

    # --- Spatial constraint -> chunks ----------------------------------
    if query.region is not None:
        region = normalize_region(query.region, grid.shape)
        chunk_ids = grid.chunks_overlapping(region)
        interior = np.array(
            [grid.chunk_within_region(int(cid), region) for cid in chunk_ids],
            dtype=bool,
        )
    else:
        region = None
        chunk_ids = np.arange(grid.n_chunks, dtype=np.int64)
        interior = np.ones(grid.n_chunks, dtype=bool)

    cpos = curve.positions_of(chunk_ids)

    # --- Subset-based multiresolution ----------------------------------
    if query.resolution_level is not None:
        if not hierarchical:
            raise ValueError(
                "resolution_level requires a store written with the "
                "'hierarchical' curve (subset-based multiresolution)"
            )
        prefixes = level_prefix_counts(grid.grid_shape)
        level = min(query.resolution_level, prefixes.size - 1)
        keep = cpos < prefixes[level]
        cpos, chunk_ids, interior = cpos[keep], chunk_ids[keep], interior[keep]

    order = np.argsort(cpos)
    return QueryPlan(
        bin_ids=bin_ids,
        aligned=aligned,
        cpos=cpos[order],
        chunk_ids=chunk_ids[order],
        interior=interior[order],
        region=region,
    )
