"""Multi-variable access (Section III-D4).

"What are the temperature values within New York where the humidity is
above 90%?" decomposes into a region-only access on the *selecting*
variable followed by value retrieval on the *fetched* variables at the
qualifying positions.  The spatial index produced by the first step is
represented as a WAH-compressible bitmap to minimize the memory
footprint and the communication cost of synchronizing it across ranks
before the second step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import Query
from repro.core.result import ComponentTimes, QueryResult
from repro.core.store import MLOCStore
from repro.index.bitmap import Bitmap
from repro.index.hbi import encode_hierarchical_bitmap
from repro.parallel.simmpi import SimCommunicator

__all__ = ["MultiVarResult", "multi_variable_query"]


@dataclass
class MultiVarResult:
    """Combined outcome of a multi-variable access."""

    #: Positions qualifying the selection constraint (and region).
    positions: np.ndarray
    #: Per fetched variable name: values at those positions.
    values: dict[str, np.ndarray]
    #: End-to-end component times (selection + exchange + retrievals).
    times: ComponentTimes
    #: The region-only selection result, for inspection.
    selection: QueryResult
    #: Bytes of the exchanged selection payload — the whole-domain WAH
    #: bitmap, or the hierarchical run-directory + leaves form when the
    #: selecting store has ``use_hbi`` (what the allreduce was charged).
    exchange_bytes: int = 0
    #: The whole-domain WAH size, always recorded for comparison.
    flat_exchange_bytes: int = 0


def multi_variable_query(
    select_store: MLOCStore,
    fetch_stores: list[MLOCStore],
    value_range: tuple[float, float],
    *,
    region: tuple[tuple[int, int], ...] | None = None,
    plod_level: int = 7,
) -> MultiVarResult:
    """Run a multi-variable access across stores sharing one grid.

    Parameters
    ----------
    select_store:
        Variable carrying the value constraint (region-only step).
    fetch_stores:
        Variables whose values are retrieved at qualifying positions.
    value_range:
        The VC applied to the selecting variable.
    region:
        Optional SC applied to every step.
    plod_level:
        PLoD level for the retrieval steps (on PLoD-enabled stores).
    """
    for other in fetch_stores:
        if other.shape != select_store.shape:
            raise ValueError(
                f"grid mismatch: {other.variable} has shape {other.shape}, "
                f"selector has {select_store.shape}"
            )

    selection = select_store.query(
        Query(value_range=value_range, region=region, output="positions")
    )

    # Synchronize the qualifying positions as a bitmap across ranks
    # (allreduce-OR).  The modeled payload is the whole-domain
    # WAH-compressed form — or, when the selecting store carries the
    # hierarchical index, the hierarchical encoding (a directory of
    # non-empty chunk-runs plus one run-local WAH leaf each): empty
    # runs cost nothing and receivers can prune per run before touching
    # leaf bits, at a few directory bytes per non-empty run.  The
    # exchanged *set* is identical either way (the codec is lossless),
    # so retrievals are unaffected.
    bitmap = Bitmap.from_positions(selection.positions, select_store.n_elements)
    flat_payload = bitmap.wah_bytes()
    if select_store.use_hbi:
        wah_payload = encode_hierarchical_bitmap(
            selection.positions,
            select_store.grid,
            select_store.curve,
            select_store.hbi.leaf_span,
        )
    else:
        wah_payload = flat_payload
    comm = SimCommunicator(select_store.executor.n_ranks, select_store.executor.comm_cost)
    comm.allreduce([wah_payload] * comm.size, lambda a, b: a)

    times = selection.times + ComponentTimes(communication=comm.comm_seconds)
    values: dict[str, np.ndarray] = {}
    for other in fetch_stores:
        fetched = other.fetch_positions(bitmap, region=region, plod_level=plod_level)
        if not np.array_equal(fetched.positions, selection.positions):
            raise AssertionError(
                "retrieved positions diverge from the selection bitmap"
            )
        values[other.variable] = fetched.values
        times = times + fetched.times

    return MultiVarResult(
        positions=selection.positions,
        values=values,
        times=times,
        selection=selection,
        exchange_bytes=len(wah_payload),
        flat_exchange_bytes=len(flat_payload),
    )
