"""Level-order advisor: pick the layout for an expected workload.

Section III-A2: "there exists a priority order of different queries
based on the frequency they are executed ... MLOC allows each level to
be placed in a hierarchical order and switched based on the priorities
of optimizations."  Climate-style workloads (spatially-dominated) want
S early; fusion-style workloads (value-threshold-dominated) want V
emphasis; heavy reduced-precision analytics want M contiguity (V-M-S);
full-precision retrieval prefers V-S-M (Table VII).

The advisor makes that choice *empirically*: it encodes a small sample
of the data under every candidate order, replays a representative
workload against each trial store under the cost model, and ranks the
orders by profile-weighted mean response time.  Because the trial
stores run the identical machinery as production stores, the ranking
inherits whatever block-size/bin-count regime the caller configures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from typing import TYPE_CHECKING

from repro.core.config import MLOCConfig
from repro.core.query import Query
from repro.core.store import MLOCStore
from repro.core.writer import MLOCWriter
from repro.pfs.costmodel import PFSCostModel
from repro.pfs.simfs import SimulatedPFS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.workloads import WorkloadGenerator

__all__ = ["QueryClass", "WorkloadProfile", "AdvisorReport", "recommend_level_order"]


@dataclass(frozen=True)
class QueryClass:
    """One class of accesses in the expected workload.

    Attributes
    ----------
    pattern:
        ``"region"`` (value-constrained, region-only), ``"value"``
        (spatially-constrained retrieval), or ``"combined"``.
    selectivity:
        Value or region selectivity of the class (fraction).
    plod_level:
        Precision the class needs (7 = full).
    """

    pattern: str
    selectivity: float = 0.01
    plod_level: int = 7

    def __post_init__(self) -> None:
        if self.pattern not in ("region", "value", "combined"):
            raise ValueError(
                f"pattern must be region|value|combined, got {self.pattern!r}"
            )
        if not (0 < self.selectivity <= 1):
            raise ValueError(f"selectivity must be in (0, 1], got {self.selectivity}")


@dataclass(frozen=True)
class WorkloadProfile:
    """Query classes with their relative execution frequencies."""

    classes: tuple[tuple[QueryClass, float], ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("profile needs at least one query class")
        if any(w <= 0 for _, w in self.classes):
            raise ValueError("class weights must be positive")

    @classmethod
    def fusion_like(cls) -> "WorkloadProfile":
        """Threshold hunting: region queries dominate (Section III-A2)."""
        return cls(
            (
                (QueryClass("region", 0.01), 0.7),
                (QueryClass("value", 0.01), 0.2),
                (QueryClass("value", 0.01, plod_level=2), 0.1),
            )
        )

    @classmethod
    def climate_like(cls) -> "WorkloadProfile":
        """Spatial exploration: value queries dominate."""
        return cls(
            (
                (QueryClass("value", 0.01), 0.7),
                (QueryClass("region", 0.01), 0.3),
            )
        )

    @classmethod
    def analytics_like(cls) -> "WorkloadProfile":
        """Reduced-precision statistics dominate: PLoD-heavy."""
        return cls(
            (
                (QueryClass("value", 0.05, plod_level=2), 0.7),
                (QueryClass("value", 0.01), 0.2),
                (QueryClass("region", 0.01), 0.1),
            )
        )


@dataclass
class AdvisorReport:
    """Ranked candidate orders with their profile-weighted costs."""

    recommended: str
    #: order -> profile-weighted mean response seconds.
    scores: dict[str, float]
    #: order -> per-class mean response seconds, same class order as
    #: the profile.
    per_class: dict[str, list[float]] = field(default_factory=dict)

    def ranking(self) -> list[str]:
        return sorted(self.scores, key=self.scores.get)


def recommend_level_order(
    data: np.ndarray,
    profile: WorkloadProfile,
    base_config: MLOCConfig,
    *,
    candidates: tuple[str, ...] = ("VMS", "VSM"),
    cost_model: PFSCostModel | None = None,
    n_queries: int = 5,
    n_ranks: int = 8,
    seed: int = 0,
) -> AdvisorReport:
    """Rank candidate level orders for ``data`` under ``profile``.

    ``data`` should be a representative sample (a timestep, or a
    spatial subarray at production chunking); the trial stores are
    built in a scratch simulated PFS with the caller's cost model.
    """
    # Imported lazily: repro.harness's package __init__ imports
    # repro.core, so a module-level import here would be circular.
    from repro.harness.workloads import WorkloadGenerator

    if not candidates:
        raise ValueError("at least one candidate order required")
    fs = SimulatedPFS(cost_model if cost_model is not None else PFSCostModel())
    workload = WorkloadGenerator.for_data(data, seed=seed)

    stores: dict[str, MLOCStore] = {}
    for order in candidates:
        config = replace(base_config, level_order=order)
        MLOCWriter(fs, f"/advisor/{order}", config).write(data, variable="trial")
        stores[order] = MLOCStore.open(fs, f"/advisor/{order}", "trial", n_ranks=n_ranks)

    scores: dict[str, float] = {}
    per_class: dict[str, list[float]] = {}
    for order, store in stores.items():
        class_means: list[float] = []
        weighted = 0.0
        total_weight = 0.0
        for qclass, weight in profile.classes:
            queries = _make_queries(workload, qclass, n_queries)
            total = 0.0
            for query in queries:
                fs.clear_cache()
                total += store.query(query).times.total
            mean = total / len(queries)
            class_means.append(mean)
            weighted += weight * mean
            total_weight += weight
        scores[order] = weighted / total_weight
        per_class[order] = class_means

    recommended = min(scores, key=scores.get)
    return AdvisorReport(recommended=recommended, scores=scores, per_class=per_class)


def _make_queries(
    workload: "WorkloadGenerator", qclass: QueryClass, n: int
) -> list[Query]:
    if qclass.pattern == "region":
        return [
            Query(value_range=vc, output="positions")
            for vc in workload.value_constraints(qclass.selectivity, n)
        ]
    if qclass.pattern == "value":
        return [
            Query(region=rc, output="values", plod_level=qclass.plod_level)
            for rc in workload.region_constraints(qclass.selectivity, n)
        ]
    # combined: both constraints drawn at the class selectivity.
    vcs = workload.value_constraints(qclass.selectivity, n)
    rcs = workload.region_constraints(max(qclass.selectivity * 10, 0.05), n)
    return [
        Query(value_range=vc, region=rc, output="values", plod_level=qclass.plod_level)
        for vc, rc in zip(vcs, rcs)
    ]
