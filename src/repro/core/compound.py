"""Compound multivariate constraints (Section II's general case).

The paper's multi-variable pattern "may involve two or more variables":
*what are the temperature values within New York, where the humidity is
above 90% — and the pressure below a front threshold?*  The general
form is a conjunction of per-variable value constraints (each possibly
a union of ranges) plus one spatial constraint, selecting positions at
which any number of output variables are retrieved.

Evaluation strategy, following Section III-D4's bitmap machinery:

1. for each constrained variable, run a region-only access per value
   range and OR the resulting position bitmaps (union of ranges);
2. AND the per-variable bitmaps (conjunction) — each AND is a modeled
   allreduce of WAH payloads across the ranks;
3. fetch each output variable at the surviving positions via
   :meth:`MLOCStore.fetch_positions`.

Variables are evaluated most-selective-first when selectivity hints
are available from the bin metadata, so later region-only steps can be
skipped entirely once the running intersection is empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query import Query
from repro.core.result import ComponentTimes, QueryResult, aggregate_stats
from repro.core.store import MLOCStore
from repro.index.bitmap import Bitmap
from repro.parallel.simmpi import SimCommunicator

__all__ = ["VariableConstraint", "CompoundResult", "compound_query"]


@dataclass(frozen=True)
class VariableConstraint:
    """A (possibly multi-range) value constraint on one variable."""

    variable: str
    ranges: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError(f"{self.variable}: at least one value range required")
        for lo, hi in self.ranges:
            if hi < lo:
                raise ValueError(f"{self.variable}: empty range [{lo}, {hi}]")

    @classmethod
    def between(cls, variable: str, lo: float, hi: float) -> "VariableConstraint":
        return cls(variable, ((lo, hi),))

    @classmethod
    def above(cls, variable: str, lo: float) -> "VariableConstraint":
        return cls(variable, ((lo, np.inf),))

    @classmethod
    def below(cls, variable: str, hi: float) -> "VariableConstraint":
        return cls(variable, ((-np.inf, hi),))


@dataclass
class CompoundResult:
    """Outcome of a compound multivariate access."""

    positions: np.ndarray
    values: dict[str, np.ndarray]
    times: ComponentTimes
    #: Per constrained variable: the region-only selection result(s).
    #: With hierarchical-index pushdown these reflect the *pruned*
    #: work (later variables only scan chunks the running intersection
    #: still touches); the final ``positions``/``values`` are
    #: bit-identical either way.
    selections: dict[str, list[QueryResult]] = field(default_factory=dict)
    #: Aggregated execution counters over every selection and fetch
    #: step (the canonical SUMMED_STAT_KEYS registry).
    stats: dict = field(default_factory=dict)

    @property
    def n_results(self) -> int:
        return int(self.positions.size)


def _estimated_selectivity(store: MLOCStore, ranges) -> float:
    """Fraction of elements the constraint can select, from bin counts.

    Uses only in-memory summaries: the per-bin totals hoisted into the
    store's :class:`~repro.core.planner.PlanContext`, or — when the
    hierarchical index is enabled — its interior-node cardinalities
    (same exact values, resolved from O(log n_bins) tree nodes instead
    of a per-bin sum).  An upper bound on the true selectivity, good
    enough to order the evaluation most-selective-first.
    """
    totals = store.context.bin_totals
    total = float(totals.sum())
    if not total:
        return 1.0
    # Merge each range's (contiguous) overlapping-bin span so a union
    # of overlapping ranges never double-counts a bin.
    spans = []
    for lo, hi in ranges:
        bin_ids, _ = store.scheme.bins_overlapping(float(lo), float(hi))
        if bin_ids.size:
            spans.append((int(bin_ids[0]), int(bin_ids[-1]) + 1))
    if not spans:
        return 0.0
    spans.sort()
    merged = [spans[0]]
    for lo, hi in spans[1:]:
        if lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(hi, merged[-1][1]))
        else:
            merged.append((lo, hi))
    if store.use_hbi:
        selected = sum(store.hbi.cardinality(lo, hi) for lo, hi in merged)
    else:
        selected = sum(int(totals[lo:hi].sum()) for lo, hi in merged)
    return float(selected / total)


def compound_query(
    stores: dict[str, MLOCStore],
    constraints: list[VariableConstraint],
    *,
    fetch: list[str] | None = None,
    region: tuple[tuple[int, int], ...] | None = None,
    plod_level: int = 7,
) -> CompoundResult:
    """Evaluate a conjunction of per-variable constraints.

    Parameters
    ----------
    stores:
        Variable name -> open store; all must share one grid.
    constraints:
        The per-variable value constraints (conjunction across
        variables; union across each variable's ranges).
    fetch:
        Variables to retrieve at qualifying positions (defaults to the
        constrained variables themselves).
    region:
        Optional spatial constraint applied to every step.
    plod_level:
        PLoD level for the retrieval step on PLoD-enabled stores.
    """
    if not constraints:
        raise ValueError("at least one variable constraint is required")
    seen = set()
    for c in constraints:
        if c.variable in seen:
            raise ValueError(f"duplicate constraint on variable {c.variable!r}")
        seen.add(c.variable)
        if c.variable not in stores:
            raise ValueError(f"no store for constrained variable {c.variable!r}")
    fetch = list(fetch) if fetch is not None else [c.variable for c in constraints]
    for name in fetch:
        if name not in stores:
            raise ValueError(f"no store for fetch variable {name!r}")

    shapes = {stores[name].shape for name in {c.variable for c in constraints} | set(fetch)}
    if len(shapes) != 1:
        raise ValueError(f"stores disagree on grid shape: {sorted(shapes)}")

    first_store = stores[constraints[0].variable]
    n_elements = first_store.n_elements
    times = ComponentTimes()
    selections: dict[str, list[QueryResult]] = {}

    # Most-selective-first: cheap metadata-only estimate.
    ordered = sorted(
        constraints,
        key=lambda c: _estimated_selectivity(stores[c.variable], c.ranges),
    )

    intersection: Bitmap | None = None
    for constraint in ordered:
        store = stores[constraint.variable]
        if intersection is not None and intersection.count() == 0:
            break  # conjunction already empty: skip remaining variables
        # Hierarchical pushdown: a later variable only needs to scan
        # chunks where the running intersection still has set bits —
        # positions it would contribute elsewhere are ANDed away
        # regardless, so the conjunction is unchanged (DESIGN.md §6).
        chunk_subset = None
        if store.use_hbi and intersection is not None:
            live = intersection.to_positions()
            chunk_subset = np.unique(store.grid.chunk_of_positions(live))
        variable_bitmap = Bitmap(n_elements)
        selections[constraint.variable] = []
        for lo, hi in constraint.ranges:
            result = store.query(
                Query(value_range=(float(lo), float(hi)), region=region,
                      output="positions"),
                chunk_subset=chunk_subset,
            )
            selections[constraint.variable].append(result)
            times = times + result.times
            variable_bitmap = variable_bitmap | Bitmap.from_positions(
                result.positions, n_elements
            )
        intersection = (
            variable_bitmap
            if intersection is None
            else intersection & variable_bitmap
        )
        # Model the cross-rank synchronization of this variable's bitmap.
        comm = SimCommunicator(store.executor.n_ranks, store.executor.comm_cost)
        comm.allreduce([variable_bitmap.wah_bytes()] * comm.size, lambda a, b: a)
        times = times + ComponentTimes(communication=comm.comm_seconds)

    assert intersection is not None
    positions = intersection.to_positions()

    values: dict[str, np.ndarray] = {}
    fetches: list[QueryResult] = []
    for name in fetch:
        store = stores[name]
        fetched = store.fetch_positions(
            intersection, region=region, plod_level=plod_level
        )
        fetches.append(fetched)
        values[name] = fetched.values
        times = times + fetched.times

    stats = aggregate_stats(
        [r.stats for results in selections.values() for r in results]
        + [r.stats for r in fetches]
    )
    return CompoundResult(
        positions=positions,
        values=values,
        times=times,
        selections=selections,
        stats=stats,
    )
