"""Versioned dataset manifests: the append protocol's commit record.

A dataset that grows timestep-by-timestep (in-situ ingest) needs one
piece of mutable state: *which sealed members exist*.  Everything else
on disk is immutable once written — a member's subfiles, metadata,
``hbi`` and ``peb`` records never change after its seal.  This module
defines that single mutable record as a chain of immutable,
generation-numbered **manifest files**:

``<root>/manifest.g<NNNNNNNN>``
    Generation ``N`` of the dataset, written in one
    :meth:`~repro.pfs.simfs.SimulatedPFS.write_file` call.  It lists
    every member sealed at or before ``N`` — the key, timestep, the
    CRC32 of the member's metadata file (pinning the exact sealed
    bytes), and its storage footprint.

The commit protocol (FORMAT.md, "Dataset manifests"):

1. write all of the new member's subfiles through the ordinary
   three-stage writer pipeline (data/index bins, ``meta``, ``hbi``,
   ``peb`` — the per-member records are built at seal time, so no
   whole-dataset index is ever rebuilt);
2. write ``manifest.g<N+1>`` = previous members + the new member.

A crash anywhere leaves every previously committed generation intact:
step 1 produces only *orphaned* files no manifest references, and a
torn step 2 produces a manifest file whose CRC does not verify, which
readers skip (``load_manifest`` returns the newest generation that
parses).  Readers that pin a generation therefore see a frozen,
bit-identical member set no matter how many appends land concurrently
— the snapshot-isolation invariant DESIGN.md §9 builds on.

Like the ``hbi``/``peb`` records the manifest is versioned, magic
tagged, and CRC'd; unlike them it is authoritative rather than derived
(there is nothing to rebuild it from), which is why it is the *only*
file the append protocol ever rewrites — and then only a torn leftover
of its own generation.

This module sits *below* ``repro.core.store`` (enforced by
``scripts/check_layers.py`` rule 4): it may import the PFS substrate
and stdlib only, so the writer, store, dataset, and serving layers can
all depend on it without cycles.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.pfs.simfs import SimulatedPFS

__all__ = [
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "Manifest",
    "ManifestError",
    "ManifestMember",
    "commit_manifest",
    "load_manifest",
    "load_manifest_at",
    "manifest_generations",
    "manifest_path",
]

MANIFEST_MAGIC = b"MLOCMAN\x00"
MANIFEST_VERSION = 1

_HEADER = struct.Struct("<IqI")  # version, generation, n_members
_MEMBER_FIXED = struct.Struct("<qqIq")  # timestep, sealed_gen, meta_crc, bytes
_CRC = struct.Struct("<I")


class ManifestError(ValueError):
    """A manifest record that cannot be parsed or a commit that would
    violate the append-only generation chain."""


@dataclass(frozen=True)
class ManifestMember:
    """One sealed store member as recorded in a manifest generation."""

    #: Store directory name under the dataset root (``variable`` or
    #: ``variable@tttttt``).
    key: str
    #: Timestep parsed from the key (``None`` for static variables).
    timestep: int | None
    #: Generation whose commit sealed this member.
    sealed_generation: int
    #: ``zlib.crc32`` of the member's ``meta`` file bytes — pins the
    #: exact sealed metadata, so a rewritten member can never be
    #: served through a snapshot that sealed the old one.
    meta_crc: int
    #: data + index + meta bytes at seal time (Table I accounting).
    total_bytes: int

    @property
    def variable(self) -> str:
        return self.key.split("@", 1)[0]


@dataclass(frozen=True)
class Manifest:
    """One immutable generation of a dataset: its sealed member set."""

    generation: int
    members: tuple[ManifestMember, ...] = ()

    # ------------------------------------------------------------------
    def member(self, key: str) -> ManifestMember | None:
        """The member sealed under ``key``, or ``None``."""
        for m in self.members:
            if m.key == key:
                return m
        return None

    def keys(self) -> set[str]:
        return {m.key for m in self.members}

    def with_member(self, member: ManifestMember) -> "Manifest":
        """The next generation: this member set plus one new seal."""
        if self.member(member.key) is not None:
            raise ManifestError(
                f"member {member.key!r} already sealed in generation "
                f"{self.generation}"
            )
        if member.sealed_generation != self.generation + 1:
            raise ManifestError(
                f"member {member.key!r} sealed_generation "
                f"{member.sealed_generation} != next generation "
                f"{self.generation + 1}"
            )
        return Manifest(self.generation + 1, self.members + (member,))

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        parts = [
            MANIFEST_MAGIC,
            _HEADER.pack(MANIFEST_VERSION, self.generation, len(self.members)),
        ]
        for m in self.members:
            key = m.key.encode("utf-8")
            parts.append(struct.pack("<H", len(key)))
            parts.append(key)
            parts.append(
                _MEMBER_FIXED.pack(
                    -1 if m.timestep is None else m.timestep,
                    m.sealed_generation,
                    m.meta_crc,
                    m.total_bytes,
                )
            )
        body = b"".join(parts)
        return body + _CRC.pack(zlib.crc32(body))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Manifest":
        if len(raw) < len(MANIFEST_MAGIC) + _HEADER.size + _CRC.size:
            raise ManifestError(f"manifest truncated at {len(raw)} bytes")
        if raw[: len(MANIFEST_MAGIC)] != MANIFEST_MAGIC:
            raise ManifestError("bad manifest magic")
        body, (crc,) = raw[: -_CRC.size], _CRC.unpack(raw[-_CRC.size :])
        if zlib.crc32(body) != crc:
            raise ManifestError("manifest CRC mismatch")
        pos = len(MANIFEST_MAGIC)
        version, generation, n_members = _HEADER.unpack_from(body, pos)
        pos += _HEADER.size
        if version != MANIFEST_VERSION:
            raise ManifestError(f"unsupported manifest version {version}")
        if generation < 0 or n_members < 0:
            raise ManifestError("negative generation or member count")
        members: list[ManifestMember] = []
        last_sealed = 0
        seen: set[str] = set()
        for _ in range(n_members):
            (key_len,) = struct.unpack_from("<H", body, pos)
            pos += 2
            key = body[pos : pos + key_len].decode("utf-8")
            pos += key_len
            timestep, sealed_gen, meta_crc, total_bytes = _MEMBER_FIXED.unpack_from(
                body, pos
            )
            pos += _MEMBER_FIXED.size
            if key in seen:
                raise ManifestError(f"duplicate member key {key!r}")
            seen.add(key)
            if not 0 < sealed_gen <= generation:
                raise ManifestError(
                    f"member {key!r}: sealed_generation {sealed_gen} outside "
                    f"(0, {generation}]"
                )
            if sealed_gen < last_sealed:
                raise ManifestError(
                    f"member {key!r}: seal order not monotone "
                    f"({sealed_gen} after {last_sealed})"
                )
            last_sealed = sealed_gen
            members.append(
                ManifestMember(
                    key=key,
                    timestep=None if timestep < 0 else timestep,
                    sealed_generation=sealed_gen,
                    meta_crc=meta_crc,
                    total_bytes=total_bytes,
                )
            )
        if pos != len(body):
            raise ManifestError(f"{len(body) - pos} trailing manifest bytes")
        return cls(generation, tuple(members))


# ----------------------------------------------------------------------
_PREFIX = "manifest.g"


def manifest_path(root: str, generation: int) -> str:
    """Path of one generation's manifest file under ``root``."""
    if generation < 0:
        raise ValueError(f"generation must be non-negative, got {generation}")
    return f"{root.rstrip('/')}/{_PREFIX}{generation:08d}"


def manifest_generations(fs: SimulatedPFS, root: str) -> list[int]:
    """Generations with a manifest file on disk (valid or torn), sorted."""
    prefix = f"{root.rstrip('/')}/{_PREFIX}"
    out = []
    for path in fs.list_files(prefix):
        tail = path[len(prefix) :]
        if tail.isdigit():
            out.append(int(tail))
    return sorted(out)


def _read(fs: SimulatedPFS, path: str) -> bytes:
    # Manifests are catalog metadata, read through an uncharged session
    # like a store's ``meta`` at open: per-query data/index I/O is what
    # the cost model accounts.
    return bytes(fs.session().open(path).read_all())


def load_manifest_at(fs: SimulatedPFS, root: str, generation: int) -> Manifest:
    """The exact generation, or :class:`ManifestError` if absent/torn."""
    if generation == 0:
        return Manifest(0, ())
    path = manifest_path(root, generation)
    if not fs.exists(path):
        raise ManifestError(f"no manifest for generation {generation} at {path}")
    manifest = Manifest.from_bytes(_read(fs, path))
    if manifest.generation != generation:
        raise ManifestError(
            f"{path}: records generation {manifest.generation}, "
            f"filename says {generation}"
        )
    return manifest


def load_manifest(fs: SimulatedPFS, root: str) -> Manifest:
    """The newest generation that parses (skipping torn commits).

    A dataset with no manifest files is at generation 0 with no sealed
    members — the state every dataset starts in.
    """
    for generation in reversed(manifest_generations(fs, root)):
        try:
            return load_manifest_at(fs, root, generation)
        except ManifestError:
            continue  # torn/interrupted commit: fall back one generation
    return Manifest(0, ())


def commit_manifest(fs: SimulatedPFS, root: str, manifest: Manifest) -> None:
    """Atomically publish one new generation.

    The bump must be exactly ``latest_valid + 1`` — committing over a
    *valid* existing generation or skipping ahead is refused, while
    overwriting a torn leftover of the same generation (a crashed
    commit being retried) is allowed: the torn file was never readable,
    so no snapshot can reference it.
    """
    latest = load_manifest(fs, root)
    if manifest.generation != latest.generation + 1:
        raise ManifestError(
            f"commit of generation {manifest.generation} refused: latest "
            f"valid generation is {latest.generation}"
        )
    missing = latest.keys() - manifest.keys()
    if missing:
        raise ManifestError(
            f"commit would unseal members {sorted(missing)}; manifests are "
            "append-only"
        )
    fs.write_file(manifest_path(root, manifest.generation), manifest.to_bytes())
