"""MLOC dataset configuration and the three paper variants.

The paper's multi-level architecture (Fig. 1) applies, in user-chosen
priority order, layout optimizations for value-constrained access (V:
value binning), multiresolution access (M: PLoD byte groups), and
spatially-constrained access (S: Hilbert chunk ordering), plus a
compression level.  Value binning defines the subfiling (one file pair
per bin, Fig. 4), so V is the outermost key of every order the paper
evaluates; the orders differ in how the smallest units — (byte group,
chunk) cells within a bin — nest (Section III-B5):

* ``"VMS"`` (default): within a bin, byte group is the major key and
  chunk position the minor key, so a PLoD-level-k access reads one
  contiguous prefix region per bin.
* ``"VSM"``: chunk position major, byte group minor, so a
  full-precision spatial access reads contiguous per-chunk cells.
* ``"VS"``: no PLoD splitting — values stay whole, enabling
  floating-point codecs (ISOBAR, ISABELA); multiresolution is then
  available via the subset-based hierarchical curve, not PLoD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.plod.byteplanes import N_GROUPS

__all__ = [
    "MLOCConfig",
    "ExecutionConfig",
    "LEVEL_ORDERS",
    "EXEC_BACKENDS",
    "WRITE_BACKENDS",
    "mloc_col",
    "mloc_iso",
    "mloc_isa",
]

LEVEL_ORDERS = ("VMS", "VSM", "VS")

#: Execution backends shared by the read path and the write pipeline.
#: ``threads``/``processes`` are bit-identical to ``serial`` for any
#: worker count; ``auto`` resolves per call to ``serial`` or
#: ``processes`` via the workload-size heuristic
#: (:data:`repro.parallel.procpool.AUTO_PROCESS_MIN_BYTES`).
EXEC_BACKENDS = ("serial", "threads", "processes", "auto")

#: Write-pipeline backends of :class:`~repro.core.writer.MLOCWriter`;
#: all produce bit-identical subfiles and metadata.
WRITE_BACKENDS = EXEC_BACKENDS

_CURVES = ("hilbert", "zorder", "rowmajor", "hierarchical")


@dataclass(frozen=True)
class MLOCConfig:
    """Static layout configuration of one MLOC dataset.

    Attributes
    ----------
    chunk_shape:
        Spatial chunk shape; must tile the dataset exactly and should
        keep the smallest accessed unit within one PFS stripe
        (Section III-C).
    n_bins:
        Number of equal-frequency value bins (paper default: 100).
    level_order:
        One of :data:`LEVEL_ORDERS`; see the module docstring.
    curve:
        Chunk ordering: ``"hilbert"`` (MLOC), ``"zorder"``/``"rowmajor"``
        (ablations), or ``"hierarchical"`` (subset-based
        multiresolution — hierarchical Hilbert, Section III-B3).
    codec:
        Registered codec name.  Byte codec (e.g. ``"zlib-bytes"``) when
        PLoD splitting is on, float codec (e.g. ``"isobar"``,
        ``"isabela"``) for the ``"VS"`` order.
    codec_params:
        Keyword arguments for the codec constructor.
    target_block_bytes:
        Raw size at which a compression block is cut; aligned with the
        PFS stripe size for best parallel access (Section III-C).
    binning:
        ``"equal-frequency"`` (MLOC's choice, Section III-B1: balanced
        per-bin access cost) or ``"equal-width"`` (the ablation
        comparator: simpler bounds, unbalanced bins).
    sample_fraction:
        Fraction of the data sampled to estimate bin boundaries
        (Section IV-A1).
    seed:
        Seed for the boundary-sampling generator.
    """

    chunk_shape: tuple[int, ...]
    n_bins: int = 100
    level_order: str = "VMS"
    curve: str = "hilbert"
    codec: str = "zlib-bytes"
    codec_params: dict[str, Any] = field(default_factory=dict)
    target_block_bytes: int = 1 << 20
    binning: str = "equal-frequency"
    sample_fraction: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.level_order not in LEVEL_ORDERS:
            raise ValueError(
                f"level_order must be one of {LEVEL_ORDERS}, got {self.level_order!r}"
            )
        if self.curve not in _CURVES:
            raise ValueError(f"curve must be one of {_CURVES}, got {self.curve!r}")
        if self.n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {self.n_bins}")
        if self.target_block_bytes <= 0:
            raise ValueError(
                f"target_block_bytes must be positive, got {self.target_block_bytes}"
            )
        if not (0 < self.sample_fraction <= 1):
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if not self.chunk_shape or any(c <= 0 for c in self.chunk_shape):
            raise ValueError(f"invalid chunk_shape {self.chunk_shape!r}")
        if self.binning not in ("equal-frequency", "equal-width"):
            raise ValueError(
                f"binning must be 'equal-frequency' or 'equal-width', got {self.binning!r}"
            )

    @property
    def plod_enabled(self) -> bool:
        """Whether values are split into PLoD byte groups ('M' level)."""
        return "M" in self.level_order

    @property
    def n_groups(self) -> int:
        """Byte groups per value: 7 with PLoD, 1 for whole values."""
        return N_GROUPS if self.plod_enabled else 1

    @property
    def group_major(self) -> bool:
        """True when byte group is the major cell key (V-M-S order)."""
        return self.level_order == "VMS"


@dataclass(frozen=True)
class ExecutionConfig:
    """Execution options: how stores are served and written.

    Unlike :class:`MLOCConfig` — which is baked into the written layout
    — these options never change a stored byte: the read-side knobs
    only affect how queries are *served* (identical results and
    simulated seconds), and the write-side knobs only affect how the
    encode pipeline *runs* (bit-identical subfiles and metadata).

    Attributes
    ----------
    backend:
        One of :data:`EXEC_BACKENDS` (default ``"serial"``):
        ``"threads"`` runs block decodes on a thread pool (zlib
        releases the GIL), ``"processes"`` on the persistent
        shared-nothing spawned worker pool (the GIL-free path), and
        ``"auto"`` picks ``serial`` or ``processes`` per query by
        workload size.  All produce identical results and simulated
        seconds.
    n_threads:
        Pool width for the ``"threads"``/``"processes"`` backends;
        ``None`` = CPU count (also settable as ``workers``).
    workers:
        Backend-neutral alias for ``n_threads`` (ignored when
        ``n_threads`` is also set).
    cache_bytes:
        Byte budget of the shared decoded-block LRU; 0 disables caching
        (the paper's cold-cache measurement discipline).
    plan_cache:
        Capacity (in plans) of the per-store query-plan LRU; 0 disables
        it.  Planning is deterministic, so a cached plan is exactly the
        plan a fresh call would produce — the knob trades a little
        memory for skipping the plan phase on repeated query shapes.
    write_backend:
        One of :data:`WRITE_BACKENDS` (default ``"serial"``); mirrors
        ``backend`` for :class:`~repro.core.writer.MLOCWriter` — the
        pool writers fan block compression (and, under ``"threads"``,
        per-chunk encoding) out while committing blocks in serial cell
        order.
    write_workers:
        Pool width for the ``"threads"``/``"processes"`` write
        backends; ``None`` = CPU count.
    max_read_retries:
        How many times a failed block read (transient I/O error or CRC
        mismatch) is retried before the block is quarantined (read-path
        fault tolerance; see docs/tuning.md "Fault tolerance").
    read_backoff:
        Base of the exponential retry backoff in *simulated* seconds:
        retry ``k`` stalls ``read_backoff * 2**(k-1)`` on the retrying
        rank's clock.
    allow_partial:
        Accept partial answers when an index block, PLoD base plane,
        or full-value data block is unrecoverable: affected points are
        dropped and their chunks reported in
        ``QueryResult.stats["partial_chunks"]``.  ``False`` (default)
        raises :class:`~repro.core.errors.DegradedResultError` instead.
    coalesce_gap:
        Maximum byte gap between two pending block reads on the same
        subfile for the I/O scheduler to merge them into one vectored
        read (one seek, one contiguous transfer).  0 (default) disables
        coalescing and reproduces the pre-engine seek counts exactly;
        see docs/tuning.md "Read coalescing".
    readahead:
        Extra bytes the scheduler pulls past each vectored run to warm
        the simulated PFS cache for later reads on the same subfile; 0
        (default) disables readahead.
    """

    backend: str = "serial"
    n_threads: int | None = None
    workers: int | None = None
    cache_bytes: int = 0
    plan_cache: int = 0
    write_backend: str = "serial"
    write_workers: int | None = None
    max_read_retries: int = 2
    read_backoff: float = 0.005
    allow_partial: bool = False
    coalesce_gap: int = 0
    readahead: int = 0
    #: Handle-level error-bound default: queries without their own
    #: ``tol`` run error-bounded at this tolerance (``None`` = off).
    tol: float | None = None
    #: Which recorded bound the default ``tol`` compares against
    #: (``"max_rel"`` or ``"mean_rel"``; see docs/tuning.md).
    tol_metric: str = "max_rel"

    def __post_init__(self) -> None:
        if self.backend not in EXEC_BACKENDS:
            raise ValueError(
                f"backend must be one of {EXEC_BACKENDS}, got {self.backend!r}"
            )
        if self.n_threads is not None and self.n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {self.n_threads}")
        if self.workers is not None and self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.plan_cache < 0:
            raise ValueError(f"plan_cache must be >= 0, got {self.plan_cache}")
        if self.write_backend not in WRITE_BACKENDS:
            raise ValueError(
                f"write_backend must be one of {WRITE_BACKENDS}, got {self.write_backend!r}"
            )
        if self.write_workers is not None and self.write_workers <= 0:
            raise ValueError(
                f"write_workers must be positive, got {self.write_workers}"
            )
        if self.max_read_retries < 0:
            raise ValueError(
                f"max_read_retries must be >= 0, got {self.max_read_retries}"
            )
        if self.read_backoff < 0:
            raise ValueError(f"read_backoff must be >= 0, got {self.read_backoff}")
        if self.coalesce_gap < 0:
            raise ValueError(f"coalesce_gap must be >= 0, got {self.coalesce_gap}")
        if self.readahead < 0:
            raise ValueError(f"readahead must be >= 0, got {self.readahead}")
        if self.tol is not None and not self.tol >= 0:
            raise ValueError(f"tol must be non-negative, got {self.tol}")
        if self.tol_metric not in ("max_rel", "mean_rel"):
            raise ValueError(
                "tol_metric must be one of ('max_rel', 'mean_rel'), "
                f"got {self.tol_metric!r}"
            )

    def store_options(self) -> dict[str, Any]:
        """Keyword arguments for :meth:`MLOCStore.open`."""
        return {
            "backend": self.backend,
            "n_threads": self.n_threads if self.n_threads is not None else self.workers,
            "cache_bytes": self.cache_bytes,
            "plan_cache": self.plan_cache,
            "max_read_retries": self.max_read_retries,
            "read_backoff": self.read_backoff,
            "allow_partial": self.allow_partial,
            "coalesce_gap": self.coalesce_gap,
            "readahead": self.readahead,
            "tol": self.tol,
            "tol_metric": self.tol_metric,
        }

    def writer_options(self) -> dict[str, Any]:
        """Keyword arguments for :class:`~repro.core.writer.MLOCWriter`."""
        return {
            "write_backend": self.write_backend,
            "write_workers": self.write_workers,
        }


def mloc_col(chunk_shape: tuple[int, ...], **overrides) -> MLOCConfig:
    """MLOC-COL: V-M-S order, Zlib-compressed PLoD byte columns."""
    defaults = dict(
        chunk_shape=chunk_shape,
        level_order="VMS",
        codec="zlib-bytes",
    )
    defaults.update(overrides)
    return MLOCConfig(**defaults)


def mloc_iso(chunk_shape: tuple[int, ...], **overrides) -> MLOCConfig:
    """MLOC-ISO: whole-value layout with ISOBAR lossless compression."""
    defaults = dict(
        chunk_shape=chunk_shape,
        level_order="VS",
        codec="isobar",
    )
    defaults.update(overrides)
    return MLOCConfig(**defaults)


def mloc_isa(chunk_shape: tuple[int, ...], **overrides) -> MLOCConfig:
    """MLOC-ISA: whole-value layout with ISABELA lossy compression."""
    defaults = dict(
        chunk_shape=chunk_shape,
        level_order="VS",
        codec="isabela",
    )
    defaults.update(overrides)
    return MLOCConfig(**defaults)
