"""I/O scheduling layer of the staged query engine (DESIGN.md §engine).

This is the lowest engine layer: it knows about the simulated PFS and
the decoded-block cache, and nothing about plans, bins, or byte planes.
The stages layer (:mod:`repro.core.engine.stages`) describes *what* to
read as :class:`PendingRead` records; this module decides *how*:

* reads are deferred, then flushed per rank sorted by ``(subfile,
  offset)`` — the order the pre-refactor executor already produced, so
  ``coalesce_gap=0`` is bit-identical to it;
* with ``coalesce_gap > 0``, adjacent/near-adjacent extents of one
  subfile merge into a single vectored read
  (:meth:`~repro.pfs.simfs.SimFileHandle.readv`): one seek plus one
  contiguous transfer that swallows the gap bytes;
* with ``readahead > 0``, each run is followed by a contiguous
  prefetch of the next ``readahead`` bytes (no extra seek), warming
  the extent cache for later flushes;
* every block payload is CRC-verified before decode, with the retry /
  exponential-backoff / quarantine semantics of the verified read path
  moved here intact (the accounting is unchanged to the counter).

The :class:`_BlockFetcher` half coordinates decode jobs: deduplication
across ranks (and across the queries of a batch), the decoded-block
LRU front, and deterministic replay of cache touches and insertions in
plan order so LRU state never depends on I/O scheduling or backend.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.parallel.procpool import PoolBrokenError, ProcessPool
from repro.pfs.blockcache import BlockCache
from repro.pfs.faults import TransientIOError
from repro.pfs.simfs import PFSSession, SimulatedPFS

__all__ = ["IOScheduler", "PendingRead"]

#: How many readahead spans are remembered per subfile (for hit
#: attribution); older spans age out of the attribution window.
_MAX_READAHEAD_SPANS = 16


class _DecodeJob:
    """One deferred block decode; ``result`` is set by :meth:`run`."""

    __slots__ = ("_fn", "result", "done", "task")

    def __init__(self, fn: Callable[[], object] | None = None, result: object = None):
        self._fn = fn
        self.result = result
        self.done = fn is None
        #: Picklable ``(spec, payload)`` equivalent of the decode
        #: closure, shipped to ``processes``-backend workers.
        self.task: tuple | None = None

    @classmethod
    def placeholder(cls) -> "_DecodeJob":
        """A job whose read has been deferred to the next flush."""
        job = cls()
        job.done = False
        return job

    def arm(self, fn: Callable[[], object]) -> None:
        """Attach the decode closure once the payload is verified."""
        self._fn = fn

    def mark_lost(self) -> None:
        """Record that the block's verified read exhausted its retries."""
        self._fn = None
        self.task = None
        self.result = None
        self.done = True

    def run(self) -> None:
        if not self.done:
            self.result = self._fn()
            self._fn = None
            self.task = None
            self.done = True

    def finish(self, result: object) -> None:
        """Complete the job with a result computed elsewhere (a worker)."""
        self.result = result
        self._fn = None
        self.task = None
        self.done = True


def _job_lost(job: _DecodeJob) -> bool:
    """Whether the job marks a quarantined (unreadable) block.

    Convention: a job that is already done with a ``None`` result never
    decoded anything — its verified read exhausted retries.  Decoders
    never legitimately return ``None``.
    """
    return job.done and job.result is None


@dataclass
class _FaultContext:
    """Per-query fault accounting, filled by the verified read path."""

    crc_failures: int = 0
    io_retries: int = 0
    degraded_points: int = 0
    dropped_points: int = 0
    #: (path, offset) of quarantined blocks this query touched.
    quarantined: set = field(default_factory=set)
    #: Global chunk ids whose points were (partially) lost.
    partial_chunks: set = field(default_factory=set)


@dataclass
class _IOCounters:
    """Per-query scheduler counters surfaced in ``QueryResult.stats``."""

    coalesced_reads: int = 0
    readahead_hits: int = 0


class _HandleOpener:
    """Session file handle, opened lazily unless seed-faithful ``eager``.

    Without caching every planned block is read, so the handle is opened
    immediately (charging the open exactly where the pre-cache executor
    did).  With caching, the open is deferred to the first actual read:
    if every block of the file is served from the cache, the rank never
    touches the file and pays no metadata operation.
    """

    __slots__ = ("_session", "_path", "_handle")

    def __init__(self, session: PFSSession, path: str, eager: bool):
        self._session = session
        self._path = path
        self._handle = session.open(path) if eager else None

    def get(self):
        if self._handle is None:
            self._handle = self._session.open(self._path)
        return self._handle


@dataclass
class PendingRead:
    """One deferred block read: where it lives and what to do with it."""

    path: str
    offset: int
    length: int
    crc: int
    opener: _HandleOpener
    job: _DecodeJob
    #: Payload -> decoded block, run in the decode phase.
    decode: Callable[[bytes], object]
    #: Raw (decoded) bytes this block contributes to modeled decompression.
    raw_bytes: int
    raw_kind: str  # "index" | "data"
    #: The owning rank's raw-byte counters, credited on success.
    raw: dict[str, int]
    #: Fetcher cache key, or None when identity is untracked.
    key: tuple | None
    #: (rank, bin_seq, kind, row) — the pre-refactor plan order, used
    #: to replay decode/cache-insertion order deterministically.
    order_key: tuple
    #: Picklable decode spec (see :func:`repro.parallel.procpool.run_task`);
    #: paired with the verified payload it is the shippable equivalent
    #: of ``decode`` for the ``processes`` backend.  ``None`` pins the
    #: block to inline/thread execution.
    spec: tuple | None = None


class _BlockFetcher:
    """Per-query (or per-batch) decode coordinator.

    Deduplicates decode work across ranks — and, when shared by
    :meth:`~repro.core.store.MLOCStore.query_many` or a refinement
    session, across queries — and fronts the store's decoded-block
    LRU.  Requests happen in the deterministic plan order, so which
    rank pays for a block's I/O and modeled decode time never depends
    on backend or thread timing: the first requester in plan order
    pays, later requesters record a hit.
    """

    def __init__(self, cache: BlockCache | None, generation: int, shared: bool = False):
        self.cache = cache
        self.generation = generation
        self.shared = shared
        self._jobs: dict[tuple, _DecodeJob] = {}
        self._pending: list[tuple[tuple, tuple | None, _DecodeJob]] = []
        self._touches: list[tuple[tuple, tuple]] = []
        self.hits = 0
        self.misses = 0
        self.lost = 0
        self.hit_raw_bytes = 0
        self.miss_raw_bytes = 0
        #: Hits served from this fetcher's own decoded-job table — the
        #: cross-query (batch / session / broker) dedup component of
        #: ``hits``, as opposed to hits served by the persistent LRU.
        self.dedup_hits = 0
        #: Raw bytes of those dedup hits.
        self.dedup_raw_bytes = 0
        #: Hits served from the persistent :class:`BlockCache`.
        self.lru_hits = 0
        #: Decode batches that fell back inline on a broken process pool.
        self.pool_failures = 0
        #: Keys inserted into the persistent cache, in insertion order
        #: (cumulative); lets a caller attribute insertions to whoever
        #: triggered the surrounding :meth:`run` (per-tenant quotas).
        self.inserted_keys: list[tuple] = []
        self._pending_raw = 0

    @property
    def caching(self) -> bool:
        """Whether block identity is tracked (LRU and/or batch dedup)."""
        return self.cache is not None or self.shared

    def pending_count(self) -> int:
        """Decode jobs enqueued by the plan phase but not yet run."""
        return len(self._pending)

    def pending_raw_bytes(self) -> int:
        """Raw (decoded) bytes the pending jobs will produce — the
        decode-work size the ``auto`` backend heuristic thresholds on."""
        return self._pending_raw

    def held_keys(self) -> list[tuple]:
        """Keys whose decoded blocks this fetcher currently retains."""
        return list(self._jobs)

    def request_deferred(
        self, key: tuple, raw_bytes: int, order_key: tuple
    ) -> tuple[_DecodeJob, bool]:
        """Return ``(job, hit)`` for one block, deferring any read.

        On a hit (batch/session dedup or LRU) nothing will be charged.
        On a miss the returned job is an unarmed placeholder: the
        caller submits a :class:`PendingRead` to its rank's scheduler,
        whose flush resolves the job — armed with the decode on a
        verified payload, or marked lost on quarantine.  Lost jobs are
        deregistered so a later request re-attempts the read (which
        answers from the engine's quarantine registry without touching
        the PFS); a cached decode, by contrast, still wins over a
        quarantine entry — it was CRC-verified when it entered the
        cache.
        """
        if self.caching:
            job = self._jobs.get(key)
            if job is not None:
                self.hits += 1
                self.hit_raw_bytes += raw_bytes
                self.dedup_hits += 1
                self.dedup_raw_bytes += raw_bytes
                return job, True
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    job = _DecodeJob(result=cached)
                    self._jobs[key] = job
                    self._touches.append((order_key, key))
                    self.hits += 1
                    self.hit_raw_bytes += raw_bytes
                    self.lru_hits += 1
                    return job, True
            job = _DecodeJob.placeholder()
            self._jobs[key] = job
            return job, False
        return _DecodeJob.placeholder(), False

    def resolve_success(self, read: PendingRead, payload: bytes) -> None:
        """Arm the job with its decode and enqueue it for the decode phase."""
        read.job.arm(lambda payload=payload, decode=read.decode: decode(payload))
        if read.spec is not None:
            read.job.task = (read.spec, payload)
        self.misses += 1
        self.miss_raw_bytes += read.raw_bytes
        self._pending_raw += read.raw_bytes
        read.raw[read.raw_kind] += read.raw_bytes
        self._pending.append((read.order_key, read.key, read.job))

    def resolve_lost(self, read: PendingRead) -> None:
        """Mark the job lost and forget it (later queries re-attempt)."""
        read.job.mark_lost()
        self.lost += 1
        if read.key is not None and self._jobs.get(read.key) is read.job:
            del self._jobs[read.key]

    def run(self, pool: ThreadPoolExecutor | ProcessPool | None) -> int:
        """Execute pending decode jobs; returns how many ran.

        Cache touches are replayed and insertions performed in plan
        order (never from worker threads, worker processes, or I/O
        order), so LRU and eviction state — and therefore later
        queries' hit patterns — is identical to the pre-refactor
        executor and independent of backend and coalescing.
        """
        pending, self._pending = self._pending, []
        touches, self._touches = self._touches, []
        self._pending_raw = 0
        if self.cache is not None and touches:
            for _, key in sorted(touches):
                self.cache.touch(key)
        pending.sort(key=lambda item: item[0])
        if pool is None:
            for _, _, job in pending:
                job.run()
        elif isinstance(pool, ProcessPool):
            self._run_on_processes(pool, pending)
        else:
            list(pool.map(lambda item: item[2].run(), pending))
        if self.cache is not None:
            for _, key, job in pending:
                if key is not None:
                    if self.cache.put(key, job.result):
                        self.inserted_keys.append(key)
        return len(pending)

    def release_retained(self) -> int:
        """Forget the decoded-job table; returns how many jobs dropped.

        A *shared* fetcher retains every decoded job so later queries
        of the batch/session dedup against it.  A continuous consumer
        (the broker's fetch-merge loop) must bound that retention:
        once no admitted query still waits on the round's blocks, the
        jobs are released — re-requests are then answered by the
        persistent :class:`BlockCache` (if configured) or re-read.
        Pending (not yet decoded) jobs are never dropped.
        """
        if self._pending:
            raise RuntimeError(
                f"cannot release retained jobs with {len(self._pending)} "
                "decodes still pending"
            )
        dropped = len(self._jobs)
        self._jobs.clear()
        self.inserted_keys.clear()
        return dropped

    def _run_on_processes(self, pool: ProcessPool, pending: list) -> None:
        """Ship the pending decode specs to the worker pool.

        Tasks are submitted — and results committed — in sorted plan
        order, so the outcome is bit-identical to inline execution.  A
        broken pool (a worker died mid-batch) falls back to running
        every job inline from its retained closure: nothing hangs and
        no block is dropped; the fallback is counted in
        ``pool_failures`` and surfaced as
        ``stats["decode_pool_failures"]``.  A job without a picklable
        spec pins the whole batch inline (correctness over overlap).
        """
        tasks = [job.task for _, _, job in pending]
        if any(task is None for task in tasks):
            for _, _, job in pending:
                job.run()
            return
        try:
            results = pool.run_tasks(tasks)
        except PoolBrokenError:
            self.pool_failures += 1
            for _, _, job in pending:
                job.run()
            return
        for (_, _, job), result in zip(pending, results):
            job.finish(result)


class IOScheduler:
    """One rank's deferred-read queue: sort, coalesce, verify, charge.

    Reads submitted between flushes are grouped per subfile and issued
    in ascending offset order.  All fault-tolerance semantics of the
    verified read path live here: quarantine pre-checks (a quarantined
    block is answered without touching the PFS), CRC verification of
    every payload, bounded exponential retry backoff charged to the
    rank's *simulated* clock, and quarantine of blocks that exhaust
    their retries.
    """

    def __init__(
        self,
        fs: SimulatedPFS,
        session: PFSSession,
        fetcher: _BlockFetcher,
        fctx: _FaultContext,
        *,
        quarantine: dict[tuple[str, int], str],
        max_read_retries: int,
        read_backoff: float,
        coalesce_gap: int = 0,
        readahead: int = 0,
        counters: _IOCounters | None = None,
        readahead_spans: dict[str, list[tuple[int, int]]] | None = None,
    ) -> None:
        self.fs = fs
        self.session = session
        self.fetcher = fetcher
        self.fctx = fctx
        self.quarantine = quarantine
        self.max_read_retries = max_read_retries
        self.read_backoff = read_backoff
        self.coalesce_gap = coalesce_gap
        self.readahead = readahead
        self.counters = counters if counters is not None else _IOCounters()
        self._readahead_spans = readahead_spans if readahead_spans is not None else {}
        self._queue: list[PendingRead] = []

    # ------------------------------------------------------------------
    def submit(self, read: PendingRead) -> None:
        """Defer one block read until the next :meth:`flush`."""
        self._queue.append(read)

    def flush(self) -> None:
        """Issue every deferred read, sorted by ``(subfile, offset)``."""
        queue, self._queue = self._queue, []
        by_path: dict[str, list[PendingRead]] = {}
        for read in queue:
            by_path.setdefault(read.path, []).append(read)
        for path in sorted(by_path):
            reads = sorted(by_path[path], key=lambda r: r.offset)
            ready: list[PendingRead] = []
            for read in reads:
                key = (read.path, read.offset)
                if key in self.quarantine:
                    # Answered by the registry: no PFS touch, no retry.
                    self.fctx.quarantined.add(key)
                    self.fetcher.resolve_lost(read)
                    continue
                self._note_readahead_hit(read)
                ready.append(read)
            for run in self._runs(ready):
                if len(run) == 1:
                    self._read_single(run[0])
                else:
                    self._read_vectored(run)
                self._maybe_readahead(path, run)

    # ------------------------------------------------------------------
    def _runs(self, reads: list[PendingRead]) -> list[list[PendingRead]]:
        """Partition offset-sorted reads into coalescable runs."""
        if self.coalesce_gap <= 0 or len(reads) <= 1:
            return [[r] for r in reads]
        runs: list[list[PendingRead]] = []
        current = [reads[0]]
        current_end = reads[0].offset + reads[0].length
        for read in reads[1:]:
            if read.offset - current_end <= self.coalesce_gap:
                current.append(read)
                current_end = max(current_end, read.offset + read.length)
            else:
                runs.append(current)
                current = [read]
                current_end = read.offset + read.length
        runs.append(current)
        return runs

    def _read_single(self, read: PendingRead) -> None:
        payload = self._verified_read(read)
        if payload is None:
            self.fetcher.resolve_lost(read)
        else:
            self.fetcher.resolve_success(read, payload)

    def _read_vectored(self, run: list[PendingRead]) -> None:
        """One span read for the whole run; per-block CRC afterwards.

        A transient failure of the span, or a CRC mismatch on any
        slice, falls back to the single verified read path for the
        affected block(s) — coalescing never weakens the verification
        or quarantine semantics, it only changes what travels on the
        wire.
        """
        extents = [(r.offset, r.length) for r in run]
        try:
            payloads = run[0].opener.get().readv(extents)
        except TransientIOError:
            for read in run:
                self._read_single(read)
            return
        self.counters.coalesced_reads += 1
        for read, payload in zip(run, payloads):
            if len(payload) == read.length and zlib.crc32(payload) == int(read.crc):
                self.fetcher.resolve_success(read, payload)
            else:
                self.fctx.crc_failures += 1
                self._read_single(read)

    def _maybe_readahead(self, path: str, run: list[PendingRead]) -> None:
        """Prefetch the bytes after the run (contiguous: no extra seek)."""
        if self.readahead <= 0:
            return
        end = max(r.offset + r.length for r in run)
        n = min(self.readahead, self.fs.size(path) - end)
        if n <= 0:
            return
        try:
            run[0].opener.get().read(end, n)
        except TransientIOError:
            return
        spans = self._readahead_spans.setdefault(path, [])
        spans.append((end, end + n))
        del spans[:-_MAX_READAHEAD_SPANS]

    def _note_readahead_hit(self, read: PendingRead) -> None:
        """Count a block whose bytes an earlier readahead made warm."""
        spans = self._readahead_spans.get(read.path)
        if not spans:
            return
        end = read.offset + read.length
        if any(read.offset >= lo and end <= hi for lo, hi in spans):
            if self.fs.extent_cached(read.path, read.offset, read.length):
                self.counters.readahead_hits += 1

    # ------------------------------------------------------------------
    def _verified_read(self, read: PendingRead) -> bytes | None:
        """Read one block, verify its CRC, retry, or quarantine it.

        Every data/index block read goes through here (or through the
        vectored span + per-slice CRC check that falls back to here):
        the payload's ``zlib.crc32`` is checked against the block table
        before any decode (the store-wide rule: no decoded bytes reach
        a result without a CRC check or an explicit degradation
        record).  Transient I/O errors and CRC mismatches are retried
        up to ``max_read_retries`` times with exponential backoff
        charged to the rank's *simulated* clock; a block that exhausts
        its retries is quarantined for the engine's lifetime and
        reported as ``None`` (a lost block) to the degradation policy.
        """
        key = (read.path, read.offset)
        if key in self.quarantine:
            self.fctx.quarantined.add(key)
            return None
        reason = "unreadable"
        for attempt in range(self.max_read_retries + 1):
            if attempt:
                self.fctx.io_retries += 1
                self.session.stats.stall_seconds += (
                    self.read_backoff * 2 ** (attempt - 1)
                )
            try:
                payload = read.opener.get().read(read.offset, read.length)
            except TransientIOError:
                reason = "transient I/O errors"
                continue
            if len(payload) == read.length and zlib.crc32(payload) == int(read.crc):
                return payload
            self.fctx.crc_failures += 1
            reason = (
                f"short read ({len(payload)}/{read.length} bytes)"
                if len(payload) != read.length
                else "CRC mismatch"
            )
        self.quarantine[key] = (
            f"{reason} after {self.max_read_retries + 1} attempts"
        )
        self.fctx.quarantined.add(key)
        return None
