"""Staged query engine: Plan → IOScheduler → Decode → Assemble.

Layering contract (enforced by ``scripts/check_layers.py``):

* :mod:`~repro.core.engine.scheduler` (layer 0) — deferred reads,
  coalescing/readahead, verified-read fault tolerance, decode-job
  coordination.  Knows only the PFS, never plans or byte planes.
* :mod:`~repro.core.engine.stages` (layer 1) — the
  :class:`QueryEngine` stage pipeline over planner output.
* :mod:`~repro.core.engine.session` (layer 2) — progressive
  :class:`RefinementSession` stepping on top of the engine.

Each module may import only strictly lower engine layers.
"""

from repro.core.engine.scheduler import IOScheduler, PendingRead
from repro.core.engine.session import RefinementSession
from repro.core.engine.stages import (
    ASSEMBLY_THROUGHPUT,
    BACKENDS,
    INDEX_DECODE_THROUGHPUT,
    QueryEngine,
    RankOutput,
)

__all__ = [
    "ASSEMBLY_THROUGHPUT",
    "BACKENDS",
    "INDEX_DECODE_THROUGHPUT",
    "IOScheduler",
    "PendingRead",
    "QueryEngine",
    "RankOutput",
    "RefinementSession",
]
