"""Staged query engine: Plan → IOScheduler → Decode → Assemble.

This is the middle engine layer: it turns a
:class:`~repro.core.planner.QueryPlan` into the bulk-synchronous
parallel program the paper describes (Section III-D, Fig. 5), but with
the monolithic executor's control flow rebuilt around explicit stages:

1. **Plan** — the planner's output is split over simulated MPI ranks
   (column order by default: each rank touches the fewest bin files);
2. **IOScheduler** — each rank's block reads are *deferred* into its
   :class:`~repro.core.engine.scheduler.IOScheduler` and flushed
   sorted by ``(subfile, offset)``, optionally coalescing
   near-adjacent extents into vectored reads (``coalesce_gap``) and
   prefetching ahead (``readahead``).  All verified-read / retry /
   quarantine semantics live in the scheduler;
3. **Decode** — pending decode jobs run inline (``serial``), on a
   thread pool (``threads``), or as picklable specs on the persistent
   spawned worker pool (``processes``, the GIL-free path); accounting
   was fixed during planning and results commit in plan order, so
   every backend produces bit-identical results and identical
   simulated seconds;
4. **Assemble** — positions and values are gathered out of the
   decoded blocks as contiguous runs, byte planes are reassembled,
   degradation is accounted, and the root gathers per-rank results
   through the simulated communicator.

The engine flushes in two waves — all index reads, then all data
reads — in deterministic rank order.  With ``coalesce_gap=0`` the
per-subfile read sequences are exactly the pre-refactor executor's
(each bin subfile was already visited once, ascending), so seeks,
bytes, stalls, fault draws, and simulated seconds are reproduced
bit-for-bit; ``tests/test_engine_equivalence.py`` pins this against a
golden capture of the monolithic executor.

Response time = simulated parallel I/O (max-loaded OST / node link +
max-rank overhead) + max-rank decompression + max-rank reconstruction +
communication.  Decompression is modeled as ``scaled_raw_bytes /
codec.decode_throughput`` (calibrated at paper-scale block sizes, see
:class:`repro.compression.base.ByteCodec`); reconstruction is measured
CPU scaled by the cost model's ``cpu_scale`` (DESIGN.md §5).  Aligned
bins under region-only output never touch the data subfiles — the
index-only fast path of Section III-D1.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import make_codec
from repro.core.chunking import ChunkGrid
from repro.core.engine.scheduler import (
    IOScheduler,
    PendingRead,
    _BlockFetcher,
    _DecodeJob,
    _FaultContext,
    _HandleOpener,
    _IOCounters,
    _job_lost,
)
from repro.core.errors import DegradedResultError
from repro.core.meta import StoreMeta
from repro.core.planner import PlanContext, QueryPlan, covering_rows
from repro.core.query import Query
from repro.core.result import ComponentTimes, QueryResult
from repro.index.binindex import decode_position_block_flat
from repro.index.bitmap import Bitmap
from repro.parallel.procpool import AUTO_PROCESS_MIN_BYTES, get_pool
from repro.parallel.scheduler import (
    BlockList,
    column_order_assignment,
    round_robin_assignment,
)
from repro.parallel.simmpi import CommCostModel, SimCommunicator
from repro.pfs.blockcache import BlockCache
from repro.pfs.layout import BinFileSet, aggregate_parallel_time
from repro.pfs.simfs import PFSSession, SimulatedPFS
from repro.plod.byteplanes import (
    GROUP_WIDTHS,
    assemble_from_groups,
    assemble_from_groups_degraded,
)
from repro.sfc.linearize import CurveOrder
from repro.util.timing import TimerRegistry

__all__ = [
    "QueryEngine",
    "RankOutput",
    "BACKENDS",
    "AUTO_PROCESS_MIN_BYTES",
    "INDEX_DECODE_THROUGHPUT",
    "ASSEMBLY_THROUGHPUT",
]

#: Modeled decode rate of the per-bin position index (delta + varint +
#: deflate), bytes of reconstructed positions (8 B each) per second,
#: calibrated at paper-scale block sizes like the codec throughputs.
INDEX_DECODE_THROUGHPUT = 240e6

#: Modeled rate of gathering cells out of decoded blocks and
#: reassembling PLoD byte planes, bytes of raw data per second —
#: memcpy-class work, calibrated like the codec throughputs.
ASSEMBLY_THROUGHPUT = 600e6

#: Real-execution backends for the decode phase.  ``"threads"`` and
#: ``"processes"`` are bit-identical to ``"serial"`` (enforced by
#: ``tests/test_backend_equivalence.py``); ``"auto"`` resolves per
#: query to ``serial`` or ``processes`` via the size heuristic below.
BACKENDS = ("serial", "threads", "processes", "auto")


_SCHEDULERS = {
    "column": column_order_assignment,
    "round-robin": round_robin_assignment,
}


@dataclass
class RankOutput:
    """What one simulated rank produced before the gather."""

    positions: np.ndarray
    values: np.ndarray | None
    timers: TimerRegistry
    session: PFSSession
    #: Raw bytes this rank decompressed from data blocks.
    data_raw_bytes: int = 0
    #: Bytes of position payload (8 B/position) this rank decoded.
    index_raw_bytes: int = 0

    def modeled_decompression(self, codec, byte_scale: float) -> float:
        """Modeled decompression seconds for this rank (DESIGN.md §5):
        codec decode + index decode + cell-gather/PLoD-assembly, all
        modeled from the bytes processed (measured wall/CPU time of the
        scaled-down blocks would amplify per-call overhead by the
        magnification factor)."""
        return (
            self.data_raw_bytes * byte_scale / codec.decode_throughput
            + self.index_raw_bytes * byte_scale / INDEX_DECODE_THROUGHPUT
            + self.data_raw_bytes * byte_scale / ASSEMBLY_THROUGHPUT
        )


@dataclass
class _ValueWork:
    """Planned data-block work of one (rank, bin): jobs + cell geometry."""

    n_elem: int
    n_groups: int = 1
    cells_per_group: list[np.ndarray] = field(default_factory=list)
    cell_offsets: np.ndarray | None = None
    row_starts: np.ndarray | None = None
    jobs: dict[int, _DecodeJob] = field(default_factory=dict)
    #: Per-cpos mask of chunks whose points are unrecoverable (base
    #: byte-plane or full-value block quarantined); ``None`` if none.
    fatal_mask: np.ndarray | None = None
    #: Per-cpos effective PLoD level (below the requested level where
    #: refinement blocks were quarantined); ``None`` if no precision
    #: was lost.
    cell_levels: np.ndarray | None = None
    #: Per-cpos *requested* PLoD level under an error-bounded
    #: (``tol``) mixed-level plan; ``None`` = uniform ``n_groups``.
    requested_levels: np.ndarray | None = None
    #: Per-group indices into ``cpos`` of the chunks that actually
    #: need that group (mixed-level plans); ``None`` = every group
    #: covers every chunk.
    group_members: list[np.ndarray] | None = None
    #: (path, offset) of the first quarantined block behind
    #: ``fatal_mask``, for the structured error.
    fatal_block: tuple[str, int] | None = None


@dataclass
class _BinPlan:
    """Planned work of one (rank, bin), built up stage by stage."""

    seq: int
    bin_id: int
    cpos: np.ndarray
    chunk_ids: np.ndarray
    aligned: bool
    need_values: bool = False
    #: (cpos_start, cpos_end, offset, job) per requested index block.
    index_entries: list[tuple[int, int, int, _DecodeJob]] = field(
        default_factory=list
    )
    #: (cpos_start, cpos_end, job -> flat positions), losses filtered.
    index_parts: list[tuple[int, int, _DecodeJob]] = field(default_factory=list)
    value_work: _ValueWork | None = None


@dataclass
class _RankState:
    """One rank's in-flight work plus its accounting context."""

    rank: int
    session: PFSSession
    timers: TimerRegistry
    raw: dict[str, int]
    sched: IOScheduler
    bins: list[_BinPlan]


class QueryEngine:
    """Executes planned queries over one stored variable.

    Parameters
    ----------
    backend:
        ``"serial"`` runs decode jobs inline; ``"threads"`` runs them
        on a thread pool (zlib/NumPy release the GIL);
        ``"processes"`` ships picklable decode specs to the persistent
        shared-nothing worker pool
        (:mod:`repro.parallel.procpool`), the only backend that
        escapes the GIL on CPU-bound codecs.  All three produce
        bit-identical results and identical simulated seconds — the
        backend only changes real wall-clock time.  ``"auto"``
        resolves per query: ``serial`` when only one worker is
        available or the pending decode work is under
        :data:`AUTO_PROCESS_MIN_BYTES`, ``processes`` otherwise.
    n_threads:
        Worker-pool width for the ``"threads"``/``"processes"``
        backends (default: CPU count).
    workers:
        Backend-neutral alias for ``n_threads`` (ignored when
        ``n_threads`` is also given).
    cache:
        Optional shared :class:`~repro.pfs.blockcache.BlockCache` of
        decoded blocks; hits skip simulated I/O and modeled decode time.
    generation:
        Fingerprint of the store metadata, namespacing cache keys so a
        rewritten-and-reopened store never serves stale blocks.
    context:
        Optional shared :class:`~repro.core.planner.PlanContext` with
        the precomputed per-bin planning tables; built from the
        metadata when omitted (one-off engines).
    max_read_retries:
        How many times a failed block read (transient I/O error or CRC
        mismatch) is retried before the block is quarantined.
    read_backoff:
        Base of the exponential retry backoff, in *simulated* seconds:
        retry ``k`` stalls ``read_backoff * 2**(k-1)`` on the reading
        rank's clock before re-reading.
    allow_partial:
        When a quarantined block makes part of the answer
        unrecoverable (index block, PLoD base plane, or full-value
        data block), ``False`` (default) raises
        :class:`~repro.core.errors.DegradedResultError`; ``True``
        drops the affected points and reports their chunks in
        ``stats["partial_chunks"]``.  Refinement byte-plane loss never
        raises — affected points degrade to the deepest intact level
        and are counted in ``stats["degraded_points"]``.
    coalesce_gap:
        Maximum byte gap between consecutive block extents of one
        subfile that the I/O scheduler bridges with a single vectored
        read (one seek + one contiguous transfer including the gap
        bytes).  ``0`` (default) disables coalescing and reproduces
        the pre-refactor executor's I/O bit-for-bit.
    readahead:
        Bytes to prefetch contiguously after each read run, warming
        the extent cache for later flushes/queries.  ``0`` disables.
    """

    def __init__(
        self,
        fs: SimulatedPFS,
        files: BinFileSet,
        meta: StoreMeta,
        grid: ChunkGrid,
        curve: CurveOrder,
        *,
        n_ranks: int = 8,
        scheduler: str = "column",
        comm_cost: CommCostModel | None = None,
        backend: str = "serial",
        n_threads: int | None = None,
        workers: int | None = None,
        cache: BlockCache | None = None,
        generation: int = 0,
        context: PlanContext | None = None,
        max_read_retries: int = 2,
        read_backoff: float = 0.005,
        allow_partial: bool = False,
        coalesce_gap: int = 0,
        readahead: int = 0,
    ) -> None:
        if scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {sorted(_SCHEDULERS)}, got {scheduler!r}"
            )
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if n_threads is not None and n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_read_retries < 0:
            raise ValueError(
                f"max_read_retries must be >= 0, got {max_read_retries}"
            )
        if read_backoff < 0:
            raise ValueError(f"read_backoff must be >= 0, got {read_backoff}")
        if coalesce_gap < 0:
            raise ValueError(f"coalesce_gap must be >= 0, got {coalesce_gap}")
        if readahead < 0:
            raise ValueError(f"readahead must be >= 0, got {readahead}")
        self.fs = fs
        self.files = files
        self.meta = meta
        self.grid = grid
        self.curve = curve
        self.n_ranks = n_ranks
        self.scheduler = scheduler
        self.backend = backend
        self.n_threads = n_threads if n_threads is not None else workers
        self.cache = cache
        self.generation = generation
        self.max_read_retries = max_read_retries
        self.read_backoff = read_backoff
        self.allow_partial = allow_partial
        self.coalesce_gap = coalesce_gap
        self.readahead = readahead
        #: Blocks whose verified read exhausted its retries, as
        #: (path, offset) -> reason.  Persists across queries: a
        #: quarantined block is never re-read (its damage is sticky as
        #: far as this engine could tell), it is answered by the
        #: degradation policy instead.
        self.quarantine: dict[tuple[str, int], str] = {}
        #: Per-subfile spans warmed by readahead, for hit attribution.
        self.readahead_spans: dict[str, list[tuple[int, int]]] = {}
        self.context = (
            context if context is not None else PlanContext.for_store(meta, grid, curve)
        )
        if comm_cost is None:
            # Scale collective payload costs with the dataset
            # magnification so communication stays commensurate with
            # the paper-equivalent I/O seconds (DESIGN.md §5).
            base = CommCostModel()
            comm_cost = CommCostModel(
                latency=base.latency,
                byte_time=base.byte_time * fs.cost_model.byte_scale,
            )
        self.comm_cost = comm_cost
        self._codec = make_codec(meta.config.codec, **meta.config.codec_params)

    # ------------------------------------------------------------------
    def new_fetcher(self, shared: bool = False) -> _BlockFetcher:
        """A fetcher for one query (or, with ``shared=True``, a batch)."""
        return _BlockFetcher(self.cache, self.generation, shared=shared)

    # ------------------------------------------------------------------
    def estimated_raw_bytes(
        self,
        query: Query,
        plan: QueryPlan,
        chunk_levels: np.ndarray | None = None,
    ) -> int:
        """Raw (decoded) bytes this planned query will demand, estimated.

        Used for admission control and fair-scheduling cost accounting
        (the broker layer); never consulted by execution, so it can
        stay cheap: per planned bin, the position index contributes
        8 B/point, and — when the bin needs its data subfile at all —
        the data payload contributes one byte per point per requested
        PLoD group (8 B/point on whole-value layouts).  Block rounding
        is ignored, so this is a slight underestimate of the exact
        per-block raw footprint.

        ``chunk_levels`` (a per-curve-position level array from an
        error-bounded plan) replaces the uniform group count with each
        chunk's own requested level, so broker admission costing sees
        the bytes a ``tol`` query will actually demand.
        """
        config = self.meta.config
        mixed = config.plod_enabled and chunk_levels is not None
        n_groups = (
            min(query.plod_level, config.n_groups) if config.plod_enabled else 8
        )
        lv = (
            np.clip(chunk_levels[plan.cpos], 1, config.n_groups)
            if mixed
            else None
        )
        total = 0
        for i in range(plan.bin_ids.size):
            bin_id = int(plan.bin_ids[i])
            counts = self.context.counts64[bin_id][plan.cpos]
            n_elem = int(counts.sum())
            total += n_elem * 8  # index positions
            if query.wants_values or not bool(plan.aligned[i]):
                total += int((counts * lv).sum()) if mixed else n_elem * n_groups
        return total

    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None = None,
        fetcher: _BlockFetcher | None = None,
        chunk_levels: np.ndarray | None = None,
    ) -> QueryResult:
        """Run the staged parallel access program for one planned query.

        ``chunk_levels`` switches PLoD stores to a *mixed-level* plan:
        a per-curve-position array of requested levels (clipped to
        ``[1, n_groups]``) from which each chunk fetches only its own
        leading byte groups.  The store derives it from the ``peb``
        bounds table for error-bounded (``tol``) queries.
        """
        if fetcher is None:
            fetcher = self.new_fetcher()
        hits0, misses0 = fetcher.hits, fetcher.misses
        hit_raw0 = fetcher.hit_raw_bytes
        dedup0, dedup_raw0 = fetcher.dedup_hits, fetcher.dedup_raw_bytes
        fctx = _FaultContext()
        counters = _IOCounters()

        blocks = plan.block_list()
        assignment = _SCHEDULERS[self.scheduler](blocks, self.n_ranks)

        # Stage 1 (Plan) + Stage 2 (IOScheduler), first wave: every
        # rank defers its index-block reads, then flushes in
        # deterministic rank order — this fixes which rank pays each
        # block's simulated I/O and modeled decode time.
        states = [
            self._plan_rank_index(rank, rank_blocks, plan, fetcher, fctx, counters)
            for rank, rank_blocks in enumerate(assignment)
        ]
        for state in states:
            state.sched.flush()
        # Index losses resolved, value reads deferred; second wave.
        for state in states:
            self._plan_rank_values(
                state, query, position_filter, fetcher, fctx, chunk_levels
            )
        for state in states:
            state.sched.flush()
        # Per-curve-position effective levels of chunks degraded below
        # their requested level by sticky faults — the store uses this
        # to compute an *honest* achieved bound for tol queries.
        degraded_levels: dict[int, int] = {}
        for state in states:
            self._classify_rank_values(state, fctx, degraded_levels)

        # Stage 3 (Decode): the only concurrent part (threads or
        # processes backend).
        pool_failures0 = fetcher.pool_failures
        blocks_decoded, decode_backend = self._run_decodes(fetcher)
        # Stage 4 (Assemble): measured CPU, deterministic rank order.
        rank_outputs = [
            self._finish_rank(state, query, plan, position_filter, fctx)
            for state in states
        ]

        comm = SimCommunicator(self.n_ranks, self.comm_cost)
        gathered = comm.gather([r.positions for r in rank_outputs])
        positions = (
            np.concatenate(gathered) if gathered else np.empty(0, dtype=np.int64)
        )
        values: np.ndarray | None = None
        if query.wants_values:
            gathered_v = comm.gather(
                [r.values if r.values is not None else np.empty(0) for r in rank_outputs]
            )
            values = np.concatenate(gathered_v)

        order = np.argsort(positions, kind="stable")
        positions = positions[order]
        if values is not None:
            values = values[order]

        sessions = [r.session for r in rank_outputs]
        cpu_scale = self.fs.cost_model.effective_cpu_scale
        byte_scale = self.fs.cost_model.byte_scale
        times = ComponentTimes(
            io=aggregate_parallel_time(self.fs.cost_model, sessions),
            decompression=max(
                (r.modeled_decompression(self._codec, byte_scale) for r in rank_outputs),
                default=0.0,
            ),
            reconstruction=cpu_scale
            * max((r.timers.elapsed("reconstruction") for r in rank_outputs), default=0.0),
            communication=comm.comm_seconds,
        )
        stats = {
            "n_ranks": self.n_ranks,
            "backend": self.backend,
            "bins_accessed": int(plan.bin_ids.size),
            "aligned_bins": int(plan.aligned.sum()),
            "chunks_accessed": int(plan.cpos.size),
            "blocks_planned": len(blocks),
            "blocks_decoded": blocks_decoded,
            "decode_backend": decode_backend,
            "decode_pool_failures": fetcher.pool_failures - pool_failures0,
            "cache_hits": fetcher.hits - hits0,
            "cache_misses": fetcher.misses - misses0,
            "cache_hit_raw_bytes": fetcher.hit_raw_bytes - hit_raw0,
            "dedup_blocks": fetcher.dedup_hits - dedup0,
            "dedup_raw_bytes": fetcher.dedup_raw_bytes - dedup_raw0,
            "bytes_read": int(sum(s.stats.bytes_read for s in sessions)),
            "files_opened": int(sum(s.stats.opens for s in sessions)),
            "seeks": int(sum(s.stats.seeks for s in sessions)),
            "vectored_reads": int(sum(s.stats.vectored_reads for s in sessions)),
            "coalesced_reads": counters.coalesced_reads,
            "readahead_hits": counters.readahead_hits,
            "stall_seconds": float(sum(s.stats.stall_seconds for s in sessions)),
            "crc_failures": fctx.crc_failures,
            "io_retries": fctx.io_retries,
            "degraded_points": fctx.degraded_points,
            "dropped_points": fctx.dropped_points,
            "quarantined_blocks": len(fctx.quarantined),
            "partial_chunks": sorted(fctx.partial_chunks),
            "degraded_chunk_levels": degraded_levels,
            "n_results": int(positions.size),
            # Error-bounded retrieval: the store stamps the real values
            # (tol_target, achieved_bound, levels_histogram) on tol
            # queries; the registered additive counter defaults here.
            "tol_bytes_saved": 0,
            # Broker request-lifecycle counters (repro.server stamps the
            # real values on requests it serves); zero for direct queries
            # so every registered counter is emitted on every path.
            "admitted": 0,
            "rejected": 0,
            "queued": 0,
            "completed": 0,
            "cancelled": 0,
            "quota_rejections": 0,
            "quota_evictions": 0,
            # Ingest lifecycle counters (repro.server.ingest stamps the
            # real values on broker/replay aggregates); same contract.
            "generations_seen": 0,
            "snapshot_refreshes": 0,
            "ingest_stall_seconds": 0.0,
        }
        return QueryResult(positions=positions, values=values, times=times, stats=stats)

    # ------------------------------------------------------------------
    def _run_decodes(self, fetcher: _BlockFetcher) -> tuple[int, str]:
        """Run the decode stage on the configured backend.

        Returns ``(blocks_decoded, resolved_backend)``.  A pool is
        only engaged when it can actually overlap work: with one
        effective worker (or fewer than two pending jobs) every
        backend decodes inline, avoiding pure dispatch overhead on
        single-core machines.  ``"auto"`` resolves to the process pool
        only when the pending raw decode bytes clear
        :data:`AUTO_PROCESS_MIN_BYTES` — below that, pickling payloads
        to workers costs more than the GIL-free decode saves.
        """
        n_pending = fetcher.pending_count()
        width = self.n_threads or os.cpu_count() or 1
        resolved = self.backend
        if resolved == "auto":
            resolved = (
                "processes"
                if width > 1
                and fetcher.pending_raw_bytes() >= AUTO_PROCESS_MIN_BYTES
                else "serial"
            )
        if resolved == "threads" and min(width, n_pending) > 1:
            with ThreadPoolExecutor(max_workers=min(width, n_pending)) as pool:
                return fetcher.run(pool), resolved
        if resolved == "processes" and width > 1 and n_pending > 1:
            return fetcher.run(get_pool(width)), resolved
        return fetcher.run(None), resolved

    # ------------------------------------------------------------------
    def _plan_rank_index(
        self,
        rank: int,
        rank_blocks: BlockList,
        plan: QueryPlan,
        fetcher: _BlockFetcher,
        fctx: _FaultContext,
        counters: _IOCounters,
    ) -> _RankState:
        """Set up one rank's state and defer its index-block reads."""
        session = self.fs.session()
        state = _RankState(
            rank=rank,
            session=session,
            timers=TimerRegistry(),
            raw={"data": 0, "index": 0},
            sched=IOScheduler(
                self.fs,
                session,
                fetcher,
                fctx,
                quarantine=self.quarantine,
                max_read_retries=self.max_read_retries,
                read_backoff=self.read_backoff,
                coalesce_gap=self.coalesce_gap,
                readahead=self.readahead,
                counters=counters,
                readahead_spans=self.readahead_spans,
            ),
            bins=[],
        )
        # The rank's blocks arrive bin-major and cpos-sorted within each
        # bin, so each bin is one contiguous segment of the arrays.
        for seq, (bin_id, cpos, chunk_ids) in enumerate(rank_blocks.bin_segments()):
            bin_plan = _BinPlan(
                seq=seq,
                bin_id=bin_id,
                cpos=cpos,
                chunk_ids=chunk_ids,
                aligned=plan.is_aligned(bin_id),
            )
            self._request_index_blocks(state, bin_plan, fetcher)
            state.bins.append(bin_plan)
        return state

    def _request_index_blocks(
        self, state: _RankState, bin_plan: _BinPlan, fetcher: _BlockFetcher
    ) -> None:
        """Defer the index blocks covering the bin's planned chunks."""
        table = self.meta.index_blocks[bin_plan.bin_id]
        bin_counts = self.context.counts64[bin_plan.bin_id]
        path = self.files.index_path(bin_plan.bin_id)
        opener = _HandleOpener(state.session, path, eager=not fetcher.caching)
        for row_idx in covering_rows(
            self.context.index_row_starts[bin_plan.bin_id], bin_plan.cpos
        ):
            cpos_start, cpos_end, offset, comp_len = (
                int(v) for v in table[row_idx][:4]
            )
            crc = int(table[row_idx][4])
            counts_slice = bin_counts[cpos_start:cpos_end]
            raw_bytes = int(counts_slice.sum()) * 8
            key = (fetcher.generation, path, offset)
            order_key = (state.rank, bin_plan.seq, 0, row_idx)
            job, hit = fetcher.request_deferred(key, raw_bytes, order_key)
            if not hit:
                state.sched.submit(
                    PendingRead(
                        path=path,
                        offset=offset,
                        length=comp_len,
                        crc=crc,
                        opener=opener,
                        job=job,
                        decode=lambda payload, counts_slice=counts_slice: (
                            decode_position_block_flat(payload, counts_slice)
                        ),
                        raw_bytes=raw_bytes,
                        raw_kind="index",
                        raw=state.raw,
                        key=key if fetcher.caching else None,
                        order_key=order_key,
                        spec=("index", counts_slice),
                    )
                )
            bin_plan.index_entries.append((cpos_start, cpos_end, offset, job))

    # ------------------------------------------------------------------
    def _plan_rank_values(
        self,
        state: _RankState,
        query: Query,
        position_filter: Bitmap | None,
        fetcher: _BlockFetcher,
        fctx: _FaultContext,
        chunk_levels: np.ndarray | None = None,
    ) -> None:
        """Resolve index losses, then defer the rank's data-block reads."""
        for bin_plan in state.bins:
            lost_index = [
                (s, e, off)
                for (s, e, off, job) in bin_plan.index_entries
                if _job_lost(job)
            ]
            bin_plan.index_parts = [
                (s, e, job)
                for (s, e, off, job) in bin_plan.index_entries
                if not _job_lost(job)
            ]
            counts64 = self.context.counts64[bin_plan.bin_id]
            if lost_index:
                # A lost index block loses the membership of every chunk
                # it covered: those chunks leave the answer entirely.
                lost_mask = np.zeros(bin_plan.cpos.size, dtype=bool)
                for cpos_start, cpos_end, _ in lost_index:
                    lost_mask |= (bin_plan.cpos >= cpos_start) & (
                        bin_plan.cpos < cpos_end
                    )
                lost_ids = bin_plan.chunk_ids[lost_mask]
                if not self.allow_partial:
                    raise DegradedResultError(
                        kind="index",
                        path=self.files.index_path(bin_plan.bin_id),
                        offset=lost_index[0][2],
                        bin_id=bin_plan.bin_id,
                        chunk_ids=tuple(int(c) for c in lost_ids),
                    )
                fctx.partial_chunks.update(int(c) for c in lost_ids)
                fctx.dropped_points += int(counts64[bin_plan.cpos[lost_mask]].sum())
                bin_plan.cpos = bin_plan.cpos[~lost_mask]
                bin_plan.chunk_ids = bin_plan.chunk_ids[~lost_mask]
            bin_plan.need_values = (
                query.wants_values
                or not bin_plan.aligned
                or position_filter is not None
            )
            if bin_plan.need_values:
                bin_plan.value_work = self._request_value_blocks(
                    state, bin_plan, query.plod_level, fetcher, chunk_levels
                )

    def _request_value_blocks(
        self,
        state: _RankState,
        bin_plan: _BinPlan,
        plod_level: int,
        fetcher: _BlockFetcher,
        chunk_levels: np.ndarray | None = None,
    ) -> _ValueWork:
        """Defer the data blocks covering the needed cells.

        With ``chunk_levels`` (mixed-level plans), byte group ``g`` is
        requested only for the chunks whose level exceeds ``g`` — the
        per-chunk minimal fetch of error-bounded retrieval.
        """
        config = self.meta.config
        n_chunks = self.meta.n_chunks
        counts = self.context.counts64[bin_plan.bin_id]
        table = self.meta.data_blocks[bin_plan.bin_id]
        path = self.files.data_path(bin_plan.bin_id)
        opener = _HandleOpener(state.session, path, eager=not fetcher.caching)
        cpos = bin_plan.cpos
        n_elem = int(counts[cpos].sum())
        if n_elem == 0:
            return _ValueWork(n_elem=0)

        mixed = config.plod_enabled and chunk_levels is not None
        if mixed:
            requested = np.clip(chunk_levels[cpos], 1, config.n_groups).astype(
                np.int64
            )
            n_groups = int(requested.max())
        else:
            requested = None
            n_groups = min(plod_level, config.n_groups) if config.plod_enabled else 1
        cell_offsets = self.context.cell_offsets[bin_plan.bin_id]
        row_starts = self.context.data_row_starts[bin_plan.bin_id]

        # The cells needed, grouped per byte group (so each group's
        # payload concatenates contiguously in cpos order).
        group_members: list[np.ndarray] | None = None
        if config.plod_enabled:
            if mixed and int(requested.min()) < n_groups:
                # Group g serves only the chunks requesting beyond it
                # (group 0, the base plane, always serves every chunk).
                group_members = [
                    np.arange(cpos.size) if g == 0 else np.flatnonzero(requested > g)
                    for g in range(n_groups)
                ]
                selected = [cpos[idx] for idx in group_members]
            else:
                selected = [cpos] * n_groups
            if config.group_major:  # V-M-S: cell = g * n_chunks + cpos
                cells_per_group = [
                    g * n_chunks + c for g, c in enumerate(selected)
                ]
            else:  # V-S-M: cell = cpos * 7 + g
                cells_per_group = [
                    c * config.n_groups + g for g, c in enumerate(selected)
                ]
        else:
            cells_per_group = [cpos]

        # Request each covering compression block exactly once.
        all_cells = np.unique(np.concatenate(cells_per_group))
        jobs: dict[int, _DecodeJob] = {}
        codec = self._codec
        codec_name, codec_params = codec.spec()
        for row_idx in covering_rows(row_starts, all_cells):
            offset, comp_len, raw_len = (int(v) for v in table[row_idx][2:5])
            crc = int(table[row_idx][5])
            if config.plod_enabled:
                decode = lambda payload, raw_len=raw_len: np.frombuffer(  # noqa: E731
                    codec.decode(payload, raw_len), dtype=np.uint8
                )
                spec = ("bytes", codec_name, codec_params, raw_len)
            else:
                decode = lambda payload, raw_len=raw_len: codec.decode(  # noqa: E731
                    payload, raw_len // 8
                )
                spec = ("float", codec_name, codec_params, raw_len // 8)
            key = (fetcher.generation, path, offset)
            order_key = (state.rank, bin_plan.seq, 1, row_idx)
            job, hit = fetcher.request_deferred(key, raw_len, order_key)
            if not hit:
                state.sched.submit(
                    PendingRead(
                        path=path,
                        offset=offset,
                        length=comp_len,
                        crc=crc,
                        opener=opener,
                        job=job,
                        decode=decode,
                        raw_bytes=raw_len,
                        raw_kind="data",
                        raw=state.raw,
                        key=key if fetcher.caching else None,
                        order_key=order_key,
                        spec=spec,
                    )
                )
            jobs[row_idx] = job

        return _ValueWork(
            n_elem=n_elem,
            n_groups=n_groups,
            cells_per_group=cells_per_group,
            cell_offsets=cell_offsets,
            row_starts=row_starts,
            jobs=jobs,
            requested_levels=requested,
            group_members=group_members,
        )

    def _classify_rank_values(
        self,
        state: _RankState,
        fctx: _FaultContext,
        degraded_levels: dict[int, int] | None = None,
    ) -> None:
        """Map quarantined data blocks onto the degradation policy."""
        for bin_plan in state.bins:
            vw = bin_plan.value_work
            if vw is None or not vw.jobs:
                continue
            lost_rows = [r for r, job in vw.jobs.items() if _job_lost(job)]
            if not lost_rows:
                continue
            table = self.meta.data_blocks[bin_plan.bin_id]
            path = self.files.data_path(bin_plan.bin_id)
            self._classify_data_loss(vw, bin_plan.cpos, lost_rows, table, path)
            if vw.cell_levels is not None and degraded_levels is not None:
                base = (
                    vw.requested_levels
                    if vw.requested_levels is not None
                    else vw.n_groups
                )
                drop = vw.cell_levels < base
                for c, lvl in zip(bin_plan.cpos[drop], vw.cell_levels[drop]):
                    c, lvl = int(c), int(lvl)
                    degraded_levels[c] = min(degraded_levels.get(c, lvl), lvl)
            if vw.fatal_mask is not None:
                lost_ids = bin_plan.chunk_ids[vw.fatal_mask]
                if not self.allow_partial:
                    fatal_path, offset = vw.fatal_block
                    raise DegradedResultError(
                        kind="data-base"
                        if self.meta.config.plod_enabled
                        else "data",
                        path=fatal_path,
                        offset=offset,
                        bin_id=bin_plan.bin_id,
                        chunk_ids=tuple(int(c) for c in lost_ids),
                    )
                fctx.partial_chunks.update(int(c) for c in lost_ids)
                fctx.dropped_points += int(
                    self.context.counts64[bin_plan.bin_id][
                        bin_plan.cpos[vw.fatal_mask]
                    ].sum()
                )

    def _classify_data_loss(
        self,
        vw: _ValueWork,
        cpos: np.ndarray,
        lost_rows: list[int],
        table: np.ndarray,
        path: str,
    ) -> None:
        """Intersect quarantined blocks with the requested byte groups.

        Group-0 cells (the PLoD base plane, or the whole value when
        PLoD is off) make the chunk's points unrecoverable
        (``fatal_mask``); cells of a refinement group ``g >= 1`` only
        cap the affected chunk's effective level at ``g``
        (``cell_levels``) — the dummy-fill reconstruction applies from
        there down.
        """
        row_starts = vw.row_starts
        # End cell (exclusive) of each block row; the table is
        # contiguous, so the last row ends at the bin's total cells.
        row_ends = np.append(row_starts[1:], vw.cell_offsets.size - 1)
        base_levels = (
            vw.requested_levels.copy()
            if vw.requested_levels is not None
            else np.full(cpos.size, vw.n_groups, dtype=np.int64)
        )
        levels = base_levels.copy()
        fatal = np.zeros(cpos.size, dtype=bool)
        fatal_row: int | None = None
        for g, cells in enumerate(vw.cells_per_group):
            # Mixed-level plans request group g for a subset of the
            # chunks; map subset hits back to cpos indices.
            members = vw.group_members[g] if vw.group_members is not None else None
            hit = np.zeros(cells.size, dtype=bool)
            for row_idx in lost_rows:
                row_hit = (cells >= row_starts[row_idx]) & (cells < row_ends[row_idx])
                if g == 0 and fatal_row is None and row_hit.any():
                    fatal_row = row_idx
                hit |= row_hit
            if not hit.any():
                continue
            idx = members[hit] if members is not None else np.flatnonzero(hit)
            if g == 0:
                fatal[idx] = True
            else:
                levels[idx] = np.minimum(levels[idx], g)
        if fatal.any():
            vw.fatal_mask = fatal
            vw.fatal_block = (path, int(table[fatal_row][2]))
        if (levels < base_levels).any():
            vw.cell_levels = levels

    # ------------------------------------------------------------------
    def _finish_rank(
        self,
        state: _RankState,
        query: Query,
        plan: QueryPlan,
        position_filter: Bitmap | None,
        fctx: _FaultContext,
    ) -> RankOutput:
        """Gather, filter and assemble one rank's results (measured CPU)."""
        timers = state.timers
        out_positions: list[np.ndarray] = []
        out_values: list[np.ndarray] = []

        for bin_plan in state.bins:
            positions, counts = self._gather_positions(bin_plan, timers)
            values: np.ndarray | None = None
            if bin_plan.need_values:
                values = self._assemble_values(bin_plan, timers)

            with timers["reconstruction"]:
                vw = bin_plan.value_work
                mask: np.ndarray | None = None
                if query.value_range is not None and not bin_plan.aligned:
                    lo, hi = query.value_range
                    mask = (values >= lo) & (values <= hi)
                if plan.region is not None:
                    interior = plan.interior_of(bin_plan.cpos)
                    if not interior.all():
                        # Only elements of boundary chunks need the
                        # coordinate test; interior chunks pass whole.
                        in_region = np.ones(positions.size, dtype=bool)
                        boundary = ~np.repeat(interior, counts)
                        in_region[boundary] = self.grid.positions_in_region(
                            positions[boundary], plan.region
                        )
                        mask = in_region if mask is None else (mask & in_region)
                if position_filter is not None:
                    hit = position_filter.get(positions)
                    mask = hit if mask is None else (mask & hit)
                if vw is not None and vw.fatal_mask is not None:
                    # Points of unrecoverable chunks leave the answer
                    # (allow_partial — otherwise the plan phase raised).
                    keep = ~np.repeat(vw.fatal_mask, counts)
                    mask = keep if mask is None else (mask & keep)
                if vw is not None and vw.cell_levels is not None:
                    # Count degraded points that actually reach the
                    # result (dummy-filled below the requested level).
                    base = (
                        vw.requested_levels
                        if vw.requested_levels is not None
                        else vw.n_groups
                    )
                    deg = np.repeat(vw.cell_levels < base, counts)
                    if mask is not None:
                        deg = deg & mask
                    fctx.degraded_points += int(deg.sum())
                if mask is not None:
                    positions = positions[mask]
                    if values is not None:
                        values = values[mask]
                out_positions.append(positions)
                if query.wants_values:
                    out_values.append(values)

        positions = (
            np.concatenate(out_positions) if out_positions else np.empty(0, dtype=np.int64)
        )
        values = None
        if query.wants_values:
            values = (
                np.concatenate(out_values) if out_values else np.empty(0, dtype=np.float64)
            )
        return RankOutput(
            positions=positions,
            values=values,
            timers=timers,
            session=state.session,
            data_raw_bytes=state.raw["data"],
            index_raw_bytes=state.raw["index"],
        )

    def _gather_positions(
        self, bin_plan: _BinPlan, timers: TimerRegistry
    ) -> tuple[np.ndarray, np.ndarray]:
        """Slice the wanted chunks out of the decoded index blocks.

        Returns the concatenated global positions (in ``cpos`` order)
        and the per-chunk element counts.  Wanted chunks are gathered as
        maximal runs of consecutive chunk positions — one slice per run
        instead of one Python-level slice per chunk.
        """
        bin_counts = self.context.counts64[bin_plan.bin_id]
        # Cumulative element counts over the whole bin: the offset of a
        # chunk inside a decoded block is pos_offsets[cpos] minus the
        # block's base (precomputed once per store, DESIGN.md §7).
        pos_offsets = self.context.pos_offsets[bin_plan.bin_id]
        with timers["reconstruction"]:
            local_parts: list[np.ndarray] = []
            for cpos_start, cpos_end, job in bin_plan.index_parts:
                flat = job.result
                base = int(pos_offsets[cpos_start])
                lo = int(np.searchsorted(bin_plan.cpos, cpos_start, side="left"))
                hi = int(np.searchsorted(bin_plan.cpos, cpos_end, side="left"))
                wanted = bin_plan.cpos[lo:hi]
                if wanted.size == 0:
                    continue
                breaks = np.flatnonzero(np.diff(wanted) != 1) + 1
                starts = np.concatenate(([0], breaks))
                ends = np.concatenate((breaks, [wanted.size]))
                for s, e in zip(starts, ends):
                    local_parts.append(
                        flat[
                            int(pos_offsets[wanted[s]]) - base :
                            int(pos_offsets[wanted[e - 1] + 1]) - base
                        ]
                    )
            counts = bin_counts[bin_plan.cpos]
            local_ids = (
                np.concatenate(local_parts)
                if local_parts
                else np.empty(0, dtype=np.int64)
            )
            positions = self.grid.global_positions_batch(
                bin_plan.chunk_ids, local_ids, counts
            )
        return positions, counts

    def _assemble_values(self, bin_plan: _BinPlan, timers: TimerRegistry) -> np.ndarray:
        """Gather cells from decoded data blocks and assemble values.

        Cell gathering + PLoD byte-plane assembly belong to the
        *decompression* component: they are part of recovering values
        from the stored representation and scale with the bytes
        fetched, whereas the paper's "reconstruction" (filtering +
        final assembly of results) is independent of the PLoD level
        (Fig. 8's flat reconstruction line).
        """
        vw = bin_plan.value_work
        config = self.meta.config
        if vw is None or vw.n_elem == 0:
            return np.empty(0, dtype=np.float64)
        decoded = {row_idx: job.result for row_idx, job in vw.jobs.items()}
        with timers["assembly"]:
            group_payloads = [
                self._gather_cells(
                    decoded,
                    vw.row_starts,
                    vw.cell_offsets,
                    cells,
                    as_float=not config.plod_enabled,
                )
                for cells in vw.cells_per_group
            ]
            if config.plod_enabled:
                counts = self.context.counts64[bin_plan.bin_id][bin_plan.cpos]
                if vw.group_members is not None:
                    # Mixed-level plans fetched subset payloads; scatter
                    # them into full-size planes (gaps stay zero — the
                    # dummy-fill rule overwrites every byte beyond a
                    # point's effective level).
                    elem_starts = np.concatenate(
                        ([0], np.cumsum(counts))
                    ).astype(np.int64)
                    group_payloads = [
                        payload
                        if members.size == counts.size
                        else _scatter_subset(
                            payload,
                            members,
                            elem_starts,
                            GROUP_WIDTHS[g],
                            vw.n_elem,
                        )
                        for g, (payload, members) in enumerate(
                            zip(group_payloads, vw.group_members)
                        )
                    ]
                levels = vw.cell_levels
                if levels is None and vw.requested_levels is not None:
                    if int(vw.requested_levels.min()) < vw.n_groups:
                        levels = vw.requested_levels
                if levels is not None:
                    point_levels = np.repeat(np.maximum(levels, 1), counts)
                    return assemble_from_groups_degraded(
                        group_payloads, vw.n_elem, vw.n_groups, point_levels
                    )
                return assemble_from_groups(group_payloads, vw.n_elem, vw.n_groups)
            return group_payloads[0]

    def _gather_cells(
        self,
        decoded: dict[int, np.ndarray],
        row_starts: np.ndarray,
        cell_offsets: np.ndarray,
        cells: np.ndarray,
        as_float: bool,
    ) -> np.ndarray:
        """Concatenate the payloads of ``cells`` (ascending) out of the
        decoded blocks, slicing maximal runs of consecutive cells.

        A ``None`` entry in ``decoded`` is a quarantined block: its
        cells are zero-filled placeholders, later either dropped
        (fatal loss) or overwritten by the dummy-fill reconstruction
        (refinement loss) — they never reach a result as-is.
        """
        rows = np.searchsorted(row_starts, cells, side="right") - 1
        breaks = np.flatnonzero((np.diff(cells) != 1) | (np.diff(rows) != 0)) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [cells.size]))
        parts: list[np.ndarray] = []
        for s, e in zip(starts, ends):
            row_idx = int(rows[s])
            buf = decoded[row_idx]
            block_base = int(cell_offsets[row_starts[row_idx]])
            lo = int(cell_offsets[cells[s]]) - block_base
            hi = int(cell_offsets[cells[e - 1] + 1]) - block_base
            if buf is None:
                parts.append(
                    np.zeros(
                        (hi - lo) // 8 if as_float else hi - lo,
                        dtype=np.float64 if as_float else np.uint8,
                    )
                )
            else:
                parts.append(buf[lo // 8 : hi // 8] if as_float else buf[lo:hi])
        if not parts:
            return np.empty(0, dtype=np.float64 if as_float else np.uint8)
        return np.concatenate(parts)


def _scatter_subset(
    payload: np.ndarray,
    members: np.ndarray,
    elem_starts: np.ndarray,
    width: int,
    n_elem: int,
) -> np.ndarray:
    """Scatter a subset byte-group payload into a full-size plane.

    ``payload`` concatenates the group's bytes for the chunks indexed by
    ``members`` (ascending indices into the bin's planned cpos array);
    ``elem_starts`` is the cumulative element count over all planned
    chunks.  Chunks outside the subset stay zero — assembly's per-point
    dummy-fill rule overwrites those bytes, so they never reach a value.
    Copies maximal runs of consecutive members, mirroring the run-sliced
    cell gather.
    """
    plane = np.zeros(n_elem * width, dtype=np.uint8)
    if members.size:
        breaks = np.flatnonzero(np.diff(members) != 1) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [members.size]))
        src = 0
        for s, e in zip(starts, ends):
            lo = int(elem_starts[members[s]]) * width
            hi = int(elem_starts[members[e - 1] + 1]) * width
            plane[lo:hi] = payload[src : src + (hi - lo)]
            src += hi - lo
    return plane
