"""Progressive PLoD refinement sessions over the staged engine.

The PLoD layout exists so a reader can fetch only the first *k* byte
groups per point and later fetch more (paper Section III-B; cf. the
progressive-retrieval framework in PAPERS.md).  A
:class:`RefinementSession` is the read-path realization: it executes a
query at an initial PLoD level and *retains* every fetched
base/refinement plane, so :meth:`RefinementSession.refine` fetches
only the byte-plane blocks the session does not already hold.

Session-reuse rule (DESIGN.md §engine): **a refinement step may never
re-fetch a plane the session already verified.**  Mechanically, all
steps share one block fetcher — its decoded-job table answers repeat
requests without touching the PFS — and the held planes are pinned in
the store's block cache (keyed by the session) so concurrent queries
cannot evict them.  Lost (quarantined) blocks are deliberately *not*
retained: a later step re-attempts them, which the quarantine registry
answers deterministically.

Every step returns an ordinary :class:`~repro.core.result.QueryResult`
whose values are bit-identical to a fresh single-shot query at that
level (pinned by ``tests/test_refinement_session.py``), with
cumulative session counters added to ``stats``: ``refine_steps``,
``bytes_reused``, ``coalesced_reads``, ``readahead_hits``.

Error-bounded sessions (``query.tol`` set) resolve per-chunk target
levels from the store's ``peb`` bounds table: the initial step runs at
the *shallowest* target level, and each refinement only deepens the
chunks whose target exceeds the step level — chunks already at their
target fetch nothing further.  :meth:`progressive_results` drives the
whole ladder, yielding one result per step; only the final step
enforces the accuracy contract (earlier steps disclose their honest
``achieved_bound`` with ``tol_met=False``).

The session drives every step through the store's public ``plan`` /
``execute_planned`` surface, so flat and sharded stores refine
identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.query import Query
from repro.core.result import QueryResult
from repro.plod.byteplanes import FULL_PLOD_LEVEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.store import MLOCStore

__all__ = ["RefinementSession"]


class RefinementSession:
    """Progressive execution of one query at increasing PLoD levels.

    Created by ``open_session`` on either store flavor; the initial
    step executes immediately — at ``query.plod_level``, or, for
    error-bounded queries, at the shallowest per-chunk target level.
    Usable as a context manager — :meth:`close` releases the cache
    pins.
    """

    def __init__(self, store: "MLOCStore", query: Query) -> None:
        self._store = store
        self._query = query
        self._fetcher = store.new_fetcher(shared=True)
        self._owner = ("refinement-session", id(self))
        #: Per-chunk target PLoD levels of an error-bounded session
        #: (``None`` for plain level-driven sessions).
        self._target_levels: np.ndarray | None = store.resolve_levels(query)
        self._refine_steps = 0
        self._bytes_reused = 0
        self._coalesced_reads = 0
        self._readahead_hits = 0
        self._closed = False
        #: Per-step results, most recent last.
        self.results: list[QueryResult] = []
        if self._target_levels is not None:
            start = int(self._target_levels.min()) if self._target_levels.size else 1
        else:
            start = query.plod_level
        self._level: int = start
        self._step(start)

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """The PLoD level of the most recent step."""
        return self._level

    @property
    def result(self) -> QueryResult:
        """The most recent step's result."""
        return self.results[-1]

    @property
    def refine_steps(self) -> int:
        """How many :meth:`refine` calls have executed."""
        return self._refine_steps

    @property
    def bytes_reused(self) -> int:
        """Raw (decoded) bytes served from held planes instead of the PFS."""
        return self._bytes_reused

    # ------------------------------------------------------------------
    def refine(self, to_level: int) -> QueryResult:
        """Re-execute at a deeper PLoD level, fetching only missing planes.

        ``to_level`` must be strictly deeper than the current level and
        at most :data:`~repro.plod.byteplanes.FULL_PLOD_LEVEL`.  Raises
        ``ValueError`` on non-PLoD layouts (there are no refinement
        planes to fetch) and after :meth:`close`.

        On an error-bounded session the step level is a *ceiling*:
        each chunk refines to ``min(to_level, its target level)``, so
        chunks whose bound is already met fetch nothing further.
        """
        if self._closed:
            raise ValueError("refinement session is closed")
        if not self._store.meta.config.plod_enabled:
            raise ValueError(
                "refine() requires a PLoD layout (level order containing 'M'); "
                f"this store uses {self._store.meta.config.level_order!r}"
            )
        if not self._level < to_level <= FULL_PLOD_LEVEL:
            raise ValueError(
                f"to_level must be in ({self._level}, {FULL_PLOD_LEVEL}], "
                f"got {to_level}"
            )
        self._refine_steps += 1
        result = self._step(to_level)
        self._level = to_level
        return result

    def progressive_results(self) -> Iterator[QueryResult]:
        """Iterate the refinement ladder, yielding one result per step.

        Yields the most recent result first (the session's current
        state), then — on an error-bounded session — auto-refines
        through each remaining distinct per-chunk target level,
        yielding the incremental result of every step.  Each step
        fetches only the byte planes the shared fetcher does not
        already hold, so the stream is the progressive-retrieval read
        path: coarse answer now, deltas until every chunk provably
        meets ``tol``.  The final step enforces the accuracy contract
        (see :func:`~repro.core.store.stamp_tol_stats`).

        On a plain (tol-less) session this yields just the current
        result — there is no bound to converge to.
        """
        yield self.result
        if self._target_levels is None:
            return
        for level in sorted(set(int(lv) for lv in self._target_levels)):
            if level > self._level:
                yield self.refine(level)

    # ------------------------------------------------------------------
    def _step(self, level: int) -> QueryResult:
        store = self._store
        if self._target_levels is not None:
            # Error-bounded step: the original query plans (its
            # fingerprint carries tol), per-chunk levels drive fetching.
            query = self._query
            chunk_levels = np.minimum(self._target_levels, level)
            final = level >= int(self._target_levels.max())
        else:
            query = replace(self._query, plod_level=level)
            chunk_levels = None
            final = False
        plan, plan_stats = store.plan(query)
        hit_raw0 = self._fetcher.hit_raw_bytes
        result = store.execute_planned(
            query, plan, fetcher=self._fetcher, chunk_levels=chunk_levels
        )
        self._bytes_reused += self._fetcher.hit_raw_bytes - hit_raw0
        self._coalesced_reads += result.stats.get("coalesced_reads", 0)
        self._readahead_hits += result.stats.get("readahead_hits", 0)
        result.stats.update(plan_stats)
        result.stats["refine_steps"] = self._refine_steps
        result.stats["bytes_reused"] = self._bytes_reused
        result.stats["coalesced_reads"] = self._coalesced_reads
        result.stats["readahead_hits"] = self._readahead_hits
        self._pin_held_blocks()
        if chunk_levels is not None:
            # Stamp the honest bound of this step; only the final step
            # of the ladder enforces the contract.
            store._stamp_tol_stats(
                query, plan, chunk_levels, result, enforce=final
            )
        self.results.append(result)
        return result

    def _pin_held_blocks(self) -> None:
        """Pin every held plane in the store cache against eviction."""
        cache = self._store.cache
        if cache is None:
            return
        for key in self._fetcher.held_keys():
            cache.pin(key, self._owner)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the session's cache pins (idempotent)."""
        if self._closed:
            return
        self._closed = True
        cache = self._store.cache
        if cache is not None:
            cache.release(self._owner)

    def __enter__(self) -> "RefinementSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
