"""Chunk grid geometry: the spatial decomposition under every MLOC level.

MLOC divides multidimensional arrays into fixed-shape chunks
(Section III-B2); chunks are the unit of Hilbert-curve ordering, of
spatial query planning, and (with PLoD byte groups and value bins) one
of the three keys of the smallest layout unit.  This module is pure
geometry — positions, coordinates, regions — with every mapping
vectorized.

Conventions
-----------
* A *global position* is the row-major linear index of an element in
  the full array.
* A *chunk id* is the row-major linear index of a chunk in the chunk
  grid.
* A *local id* is the row-major linear index of an element within its
  chunk.
* A *region* is a tuple of per-axis half-open ``(lo, hi)`` integer
  bounds.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_shape_chunks

__all__ = ["ChunkGrid", "normalize_region", "region_size"]

Region = tuple[tuple[int, int], ...]


def normalize_region(region, shape: tuple[int, ...]) -> Region:
    """Validate and normalize a region against an array shape.

    Accepts per-axis ``(lo, hi)`` pairs or ``slice`` objects (with step
    1); returns canonical ``(lo, hi)`` tuples clipped-checked against
    the shape.
    """
    if len(region) != len(shape):
        raise ValueError(f"region rank {len(region)} != array rank {len(shape)}")
    out = []
    for axis, (bound, extent) in enumerate(zip(region, shape)):
        if isinstance(bound, slice):
            if bound.step not in (None, 1):
                raise ValueError(f"axis {axis}: region slices must have step 1")
            lo = 0 if bound.start is None else int(bound.start)
            hi = extent if bound.stop is None else int(bound.stop)
        else:
            lo, hi = int(bound[0]), int(bound[1])
        if not (0 <= lo < hi <= extent):
            raise ValueError(
                f"axis {axis}: region [{lo}, {hi}) invalid for extent {extent}"
            )
        out.append((lo, hi))
    return tuple(out)


def region_size(region: Region) -> int:
    """Number of elements inside a normalized region."""
    size = 1
    for lo, hi in region:
        size *= hi - lo
    return size


class ChunkGrid:
    """Exact tiling of an N-D array by fixed-shape chunks."""

    def __init__(self, shape: tuple[int, ...], chunk_shape: tuple[int, ...]) -> None:
        shape = tuple(int(s) for s in shape)
        chunk_shape = tuple(int(c) for c in chunk_shape)
        check_shape_chunks(shape, chunk_shape)
        self.shape = shape
        self.chunk_shape = chunk_shape
        self.ndims = len(shape)
        self.grid_shape = tuple(s // c for s, c in zip(shape, chunk_shape))
        self.n_chunks = int(np.prod(self.grid_shape))
        self.chunk_size = int(np.prod(chunk_shape))
        self.n_elements = int(np.prod(shape))
        # Row-major strides in elements.
        self._strides = np.array(
            [int(np.prod(shape[d + 1 :])) for d in range(self.ndims)], dtype=np.int64
        )
        self._grid_strides = np.array(
            [int(np.prod(self.grid_shape[d + 1 :])) for d in range(self.ndims)],
            dtype=np.int64,
        )
        self._chunk_strides = np.array(
            [int(np.prod(chunk_shape[d + 1 :])) for d in range(self.ndims)],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Chunk id <-> chunk coordinates
    # ------------------------------------------------------------------
    def chunk_coords(self, chunk_ids: np.ndarray) -> np.ndarray:
        """Grid coordinates of chunks, shape ``(n, ndims)``."""
        ids = np.asarray(chunk_ids, dtype=np.int64)
        coords = np.empty(ids.shape + (self.ndims,), dtype=np.int64)
        rem = ids
        for d in range(self.ndims):
            coords[..., d], rem = np.divmod(rem, self._grid_strides[d])
        return coords

    def chunk_ids(self, coords: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`chunk_coords`."""
        coords = np.asarray(coords, dtype=np.int64)
        return coords @ self._grid_strides

    def chunk_slices(self, chunk_id: int) -> tuple[slice, ...]:
        """NumPy slices selecting one chunk out of the full array."""
        coords = self.chunk_coords(np.array([chunk_id]))[0]
        return tuple(
            slice(int(c * w), int((c + 1) * w))
            for c, w in zip(coords, self.chunk_shape)
        )

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def chunks_overlapping(self, region: Region) -> np.ndarray:
        """Row-major ids of all chunks intersecting a normalized region."""
        region = normalize_region(region, self.shape)
        axis_ranges = []
        for (lo, hi), w in zip(region, self.chunk_shape):
            axis_ranges.append(np.arange(lo // w, (hi - 1) // w + 1, dtype=np.int64))
        mesh = np.meshgrid(*axis_ranges, indexing="ij")
        coords = np.stack([m.reshape(-1) for m in mesh], axis=1)
        return self.chunk_ids(coords)

    def chunk_within_region(self, chunk_id: int, region: Region) -> bool:
        """True if the chunk lies entirely inside the region (no filtering)."""
        return bool(
            self.chunks_within_region(np.array([chunk_id], dtype=np.int64), region)[0]
        )

    def chunks_within_region(self, chunk_ids: np.ndarray, region: Region) -> np.ndarray:
        """Vectorized interiority: per chunk, True if it lies entirely
        inside the region (its elements need no coordinate filtering)."""
        region = normalize_region(region, self.shape)
        ids = np.asarray(chunk_ids, dtype=np.int64)
        coords = self.chunk_coords(ids)
        mask = np.ones(ids.shape, dtype=bool)
        for d, ((lo, hi), w) in enumerate(zip(region, self.chunk_shape)):
            origin = coords[..., d] * w
            mask &= (origin >= lo) & (origin + w <= hi)
        return mask

    # ------------------------------------------------------------------
    # Positions
    # ------------------------------------------------------------------
    def global_positions(self, chunk_id: int, local_ids: np.ndarray) -> np.ndarray:
        """Global row-major positions of elements given by local ids."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        chunk_origin = self.chunk_coords(np.array([chunk_id]))[0] * np.array(
            self.chunk_shape, dtype=np.int64
        )
        coords = np.empty((local_ids.size, self.ndims), dtype=np.int64)
        rem = local_ids
        for d in range(self.ndims):
            coords[:, d], rem = np.divmod(rem, self._chunk_strides[d])
        coords += chunk_origin[None, :]
        return coords @ self._strides

    def global_positions_batch(
        self,
        chunk_ids: np.ndarray,
        local_ids: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`global_positions` over many chunks.

        ``local_ids`` is the concatenation of each chunk's local ids in
        the order given by ``chunk_ids``; ``counts[i]`` elements belong
        to ``chunk_ids[i]``.
        """
        chunk_ids = np.asarray(chunk_ids, dtype=np.int64)
        local_ids = np.asarray(local_ids, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if int(counts.sum()) != local_ids.size:
            raise ValueError(
                f"counts sum {int(counts.sum())} != local id count {local_ids.size}"
            )
        if local_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        origins = self.chunk_coords(chunk_ids) * np.array(self.chunk_shape, dtype=np.int64)
        origin_per_elem = np.repeat(origins, counts, axis=0)
        coords = np.empty((local_ids.size, self.ndims), dtype=np.int64)
        rem = local_ids
        for d in range(self.ndims):
            coords[:, d], rem = np.divmod(rem, self._chunk_strides[d])
        coords += origin_per_elem
        return coords @ self._strides

    def positions_to_coords(self, positions: np.ndarray) -> np.ndarray:
        """Array coordinates of global positions, shape ``(n, ndims)``."""
        pos = np.asarray(positions, dtype=np.int64)
        coords = np.empty(pos.shape + (self.ndims,), dtype=np.int64)
        rem = pos
        for d in range(self.ndims):
            coords[..., d], rem = np.divmod(rem, self._strides[d])
        return coords

    def coords_to_positions(self, coords: np.ndarray) -> np.ndarray:
        return np.asarray(coords, dtype=np.int64) @ self._strides

    def positions_in_region(self, positions: np.ndarray, region: Region) -> np.ndarray:
        """Boolean mask of positions lying inside a normalized region."""
        region = normalize_region(region, self.shape)
        coords = self.positions_to_coords(positions)
        mask = np.ones(coords.shape[0], dtype=bool)
        for d, (lo, hi) in enumerate(region):
            mask &= (coords[:, d] >= lo) & (coords[:, d] < hi)
        return mask

    def chunk_of_positions(self, positions: np.ndarray) -> np.ndarray:
        """Chunk id containing each global position."""
        coords = self.positions_to_coords(positions)
        chunk_coords = coords // np.array(self.chunk_shape, dtype=np.int64)
        return self.chunk_ids(chunk_coords)

    def __repr__(self) -> str:
        return (
            f"ChunkGrid(shape={self.shape}, chunk_shape={self.chunk_shape}, "
            f"grid={self.grid_shape}, n_chunks={self.n_chunks})"
        )
