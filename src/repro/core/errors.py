"""Structured errors raised by the fault-tolerant read path.

The executor's degradation policy (DESIGN.md §6, "no decoded bytes
reach a result without a CRC check or an explicit degradation record")
distinguishes losses it can absorb from losses it cannot:

* A quarantined PLoD *refinement* byte-plane block only costs
  precision — affected points are reconstructed with the dummy-fill
  rule at the deepest intact level and counted in
  ``QueryResult.stats["degraded_points"]``.  No error is raised.
* A quarantined *base-plane* data block, full-value data block, or
  *index* block removes points from the answer entirely.  That is a
  correctness loss, so by default the query raises
  :class:`DegradedResultError`; with ``allow_partial=True`` the query
  instead returns the surviving points and reports the affected chunks
  in ``stats["partial_chunks"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DegradedResultError"]


@dataclass
class DegradedResultError(Exception):
    """A query could not produce a complete answer.

    Attributes
    ----------
    kind:
        ``"index"`` — a position index block was lost (the affected
        chunks' membership is unknown); ``"data-base"`` — a PLoD base
        byte-plane block was lost (affected points cannot be
        reconstructed at any level); ``"data"`` — a full-value data
        block was lost; ``"tol"`` — an error-bounded query lost
        refinement planes and the provable bound of the degraded
        result exceeds the requested ``tol`` (only raised on
        ``tol`` queries; ``bin_id`` is ``-1`` — the loss may span
        bins).
    path / offset:
        Location of the first quarantined block that made the result
        partial.
    bin_id:
        The value bin the block belongs to.
    chunk_ids:
        Global ids of the spatial chunks whose points are affected.
    """

    kind: str
    path: str
    offset: int
    bin_id: int
    chunk_ids: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        super().__init__(str(self))

    def __str__(self) -> str:
        chunks = ", ".join(str(c) for c in self.chunk_ids[:8])
        if len(self.chunk_ids) > 8:
            chunks += ", ..."
        return (
            f"unrecoverable {self.kind} block loss in bin {self.bin_id} "
            f"({self.path} @ {self.offset}); affected chunks: [{chunks}] — "
            "pass allow_partial=True to accept a partial result"
        )
