"""Query model: the access patterns of Section II.

One :class:`Query` object expresses every single-variable pattern the
paper enumerates:

* value-constrained region-only access — ``value_range`` set,
  ``output="positions"`` (what *regions* have abnormal temperature?);
* spatially-constrained value retrieval — ``region`` set,
  ``output="values"`` (what are the values inside New York?);
* value-and-spatial-constrained access — both set;
* multiresolution access — ``plod_level < 7`` (precision-based) or
  ``resolution_level`` (subset-based, hierarchical-curve stores);

Multi-variable access composes two stores through
:func:`repro.core.multivar.multi_variable_query`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plod.byteplanes import FULL_PLOD_LEVEL

__all__ = ["Query", "OUTPUTS"]

OUTPUTS = ("positions", "values")


@dataclass(frozen=True)
class Query:
    """A single-variable data access request.

    Attributes
    ----------
    value_range:
        Optional closed value constraint ``(lo, hi)`` (VC).
    region:
        Optional spatial constraint: per-axis ``(lo, hi)`` half-open
        bounds (SC).  ``None`` = whole domain.
    output:
        ``"positions"`` for region-only access (the index-only fast
        path applies on aligned bins); ``"values"`` for value
        retrieval (positions *and* values are returned).
    plod_level:
        Precision-based level of detail: 1 (two bytes/point) through 7
        (full precision).  Only meaningful on PLoD-enabled stores;
        full-precision elsewhere.
    resolution_level:
        Subset-based resolution level for hierarchical-curve stores:
        only chunks of levels ``<= resolution_level`` are accessed.
    """

    value_range: tuple[float, float] | None = None
    region: tuple[tuple[int, int], ...] | None = None
    output: str = "values"
    plod_level: int = FULL_PLOD_LEVEL
    resolution_level: int | None = None

    def __post_init__(self) -> None:
        if self.output not in OUTPUTS:
            raise ValueError(f"output must be one of {OUTPUTS}, got {self.output!r}")
        if self.value_range is not None:
            lo, hi = self.value_range
            if hi < lo:
                raise ValueError(f"empty value_range [{lo}, {hi}]")
        if not (1 <= self.plod_level <= FULL_PLOD_LEVEL):
            raise ValueError(
                f"plod_level must be in [1, {FULL_PLOD_LEVEL}], got {self.plod_level}"
            )
        if self.resolution_level is not None and self.resolution_level < 0:
            raise ValueError(
                f"resolution_level must be non-negative, got {self.resolution_level}"
            )

    @property
    def wants_values(self) -> bool:
        return self.output == "values"
