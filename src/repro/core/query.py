"""Query model: the access patterns of Section II.

One :class:`Query` object expresses every single-variable pattern the
paper enumerates:

* value-constrained region-only access — ``value_range`` set,
  ``output="positions"`` (what *regions* have abnormal temperature?);
* spatially-constrained value retrieval — ``region`` set,
  ``output="values"`` (what are the values inside New York?);
* value-and-spatial-constrained access — both set;
* multiresolution access — ``plod_level < 7`` (precision-based) or
  ``resolution_level`` (subset-based, hierarchical-curve stores);

Multi-variable access composes two stores through
:func:`repro.core.multivar.multi_variable_query`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plod.bounds import TOL_METRICS
from repro.plod.byteplanes import FULL_PLOD_LEVEL

__all__ = ["Query", "OUTPUTS"]

OUTPUTS = ("positions", "values")


@dataclass(frozen=True)
class Query:
    """A single-variable data access request.

    Attributes
    ----------
    value_range:
        Optional closed value constraint ``(lo, hi)`` (VC).
    region:
        Optional spatial constraint: per-axis ``(lo, hi)`` half-open
        bounds (SC).  ``None`` = whole domain.
    output:
        ``"positions"`` for region-only access (the index-only fast
        path applies on aligned bins); ``"values"`` for value
        retrieval (positions *and* values are returned).
    plod_level:
        Precision-based level of detail: 1 (two bytes/point) through 7
        (full precision).  Only meaningful on PLoD-enabled stores;
        full-precision elsewhere.
    resolution_level:
        Subset-based resolution level for hierarchical-curve stores:
        only chunks of levels ``<= resolution_level`` are accessed.
    tol:
        Error-bounded retrieval: the maximum acceptable relative
        reconstruction error.  When set (on a PLoD store), the planner
        picks the minimal PLoD level *per chunk* from the stored
        ``peb`` bounds — ``plod_level`` acts as a ceiling — and the
        result's stats report the achieved bound.  ``tol=0`` demands
        (and gets) full precision, bit-identical to a tol-less query.
    tol_metric:
        Which recorded bound ``tol`` is compared against:
        ``"max_rel"`` (default, the per-point guarantee) or
        ``"mean_rel"`` (a chunk-level average; see docs/tuning.md).
    """

    value_range: tuple[float, float] | None = None
    region: tuple[tuple[int, int], ...] | None = None
    output: str = "values"
    plod_level: int = FULL_PLOD_LEVEL
    resolution_level: int | None = None
    tol: float | None = None
    tol_metric: str = "max_rel"

    def __post_init__(self) -> None:
        if self.output not in OUTPUTS:
            raise ValueError(f"output must be one of {OUTPUTS}, got {self.output!r}")
        if self.value_range is not None:
            lo, hi = self.value_range
            if hi < lo:
                raise ValueError(f"empty value_range [{lo}, {hi}]")
        if not (1 <= self.plod_level <= FULL_PLOD_LEVEL):
            raise ValueError(
                f"plod_level must be in [1, {FULL_PLOD_LEVEL}], got {self.plod_level}"
            )
        if self.resolution_level is not None and self.resolution_level < 0:
            raise ValueError(
                f"resolution_level must be non-negative, got {self.resolution_level}"
            )
        if self.tol is not None and not self.tol >= 0:
            raise ValueError(f"tol must be non-negative, got {self.tol}")
        if self.tol_metric not in TOL_METRICS:
            raise ValueError(
                f"tol_metric must be one of {TOL_METRICS}, got {self.tol_metric!r}"
            )

    @property
    def wants_values(self) -> bool:
        return self.output == "values"
