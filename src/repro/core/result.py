"""Query results and the component-time decomposition of Fig. 6.

Every data access in the paper's evaluation is decomposed into I/O
(seek + read), decompression, and reconstruction (filtering and final
assembly); the reproduction adds the modeled communication time of the
simulated MPI collectives as a fourth explicit component.  See
DESIGN.md §5 for the timing methodology: I/O and communication are
simulated seconds from the cost models, decompression and
reconstruction are measured CPU seconds on the parallel critical path
(max over ranks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ComponentTimes",
    "QueryResult",
    "BatchResult",
    "SUMMED_STAT_KEYS",
    "FLOAT_SUMMED_STAT_KEYS",
    "FAULT_STAT_KEYS",
    "UNION_STAT_KEYS",
    "MAX_STAT_KEYS",
    "DICT_SUM_STAT_KEYS",
    "DICT_MIN_STAT_KEYS",
    "aggregate_stats",
]

#: The canonical additive ``QueryResult.stats`` counters.  Every path
#: that rolls per-query stats into an aggregate (``query_many``,
#: ``replay_trace``, the CLI) sums exactly this list — new counters
#: register here once and flow everywhere, instead of each aggregator
#: maintaining its own drifting copy.  ``stall_seconds`` is a float;
#: everything else is integral.
SUMMED_STAT_KEYS: tuple[str, ...] = (
    "blocks_planned",
    "blocks_decoded",
    "decode_pool_failures",
    "cache_hits",
    "cache_misses",
    "cache_hit_raw_bytes",
    "bytes_read",
    "files_opened",
    "seeks",
    "vectored_reads",
    "coalesced_reads",
    "readahead_hits",
    "stall_seconds",
    "crc_failures",
    "io_retries",
    "degraded_points",
    "dropped_points",
    "n_results",
    "plan_cache_hits",
    "plan_cache_misses",
    # Chunks dropped by hierarchical-index pruning / compound pushdown
    # (repro.index.hbi): proven-empty plan chunks never fetched.
    "chunks_pruned",
    # Bins dropped from a position-masked fetch by the group-domain
    # AND against the hierarchical index's leaves.
    "bins_pruned",
    # Cross-query fetch-merge dedup (shared fetchers: batches, sessions,
    # and the broker's continuous merge loop).
    "dedup_blocks",
    "dedup_raw_bytes",
    # Broker-level counters (repro.server): per-tenant dicts fold into
    # broker totals through the same registry as everything else.
    "admitted",
    "rejected",
    "queued",
    "completed",
    "cancelled",
    "quota_rejections",
    "quota_evictions",
    # Error-bounded retrieval (query tol=...): raw bytes the per-chunk
    # level selection avoided reading vs the full-precision plan.
    "tol_bytes_saved",
    # Ingest-aware serving (repro.server.ingest): manifest generations
    # a broker observed, snapshot re-pins it performed, and simulated
    # seconds queries stalled waiting for a timestep still being
    # appended.  ``ingest_stall_seconds`` is a float like
    # ``stall_seconds``.
    "generations_seen",
    "snapshot_refreshes",
    "ingest_stall_seconds",
)

#: The float-valued members of :data:`SUMMED_STAT_KEYS` (everything
#: else is integral).
FLOAT_SUMMED_STAT_KEYS: frozenset = frozenset(
    {"stall_seconds", "ingest_stall_seconds"}
)

#: The fault-accounting subset (printed by the CLI, swept by the
#: fault-tolerance experiment).
FAULT_STAT_KEYS: tuple[str, ...] = (
    "crc_failures",
    "io_retries",
    "degraded_points",
    "dropped_points",
)

#: Collection-valued counters aggregated by set union, not addition.
UNION_STAT_KEYS: tuple[str, ...] = ("partial_chunks",)

#: Worst-case counters aggregated by max, emitted only when present
#: (an aggregate bound is the loosest per-query bound).
MAX_STAT_KEYS: tuple[str, ...] = ("achieved_bound", "tol_target")

#: Dict-valued counters merged key-wise, emitted only when present:
#: ``levels_histogram`` (PLoD level -> chunk count) sums per key;
#: ``degraded_chunk_levels`` (curve position -> effective level) keeps
#: the minimum — the honest (deepest-loss) level per chunk.
DICT_SUM_STAT_KEYS: tuple[str, ...] = ("levels_histogram",)
DICT_MIN_STAT_KEYS: tuple[str, ...] = ("degraded_chunk_levels",)


def aggregate_stats(per_query: "list[dict] | tuple[dict, ...]") -> dict:
    """Fold per-query ``stats`` dicts into one aggregate dict.

    Sums every key in :data:`SUMMED_STAT_KEYS` (missing keys count as
    zero, so older recorded stats aggregate cleanly), unions the keys
    in :data:`UNION_STAT_KEYS` into sorted lists, maxes the keys in
    :data:`MAX_STAT_KEYS`, and merges the dict-valued keys key-wise
    (:data:`DICT_SUM_STAT_KEYS` by addition,
    :data:`DICT_MIN_STAT_KEYS` by minimum); the latter two families
    appear in the aggregate only when some input carried them.
    Non-additive counters (``quarantined_blocks`` is registry state,
    not a per-query delta; ``n_ranks``/``backend`` are configuration)
    are the caller's responsibility.
    """
    per_query = list(per_query)
    out: dict = {}
    for key in SUMMED_STAT_KEYS:
        if key in FLOAT_SUMMED_STAT_KEYS:
            out[key] = float(sum(s.get(key, 0) for s in per_query))
        else:
            out[key] = int(sum(s.get(key, 0) for s in per_query))
    for key in UNION_STAT_KEYS:
        merged: set = set()
        for s in per_query:
            merged.update(s.get(key, ()))
        out[key] = sorted(merged)
    for key in MAX_STAT_KEYS:
        vals = [s[key] for s in per_query if key in s]
        if vals:
            out[key] = max(vals)
    for key, fold in (
        *((k, lambda a, b: a + b) for k in DICT_SUM_STAT_KEYS),
        *((k, min) for k in DICT_MIN_STAT_KEYS),
    ):
        seen = False
        merged_d: dict = {}
        for s in per_query:
            d = s.get(key)
            if d is None:
                continue
            seen = True
            for k, v in d.items():
                merged_d[k] = fold(merged_d[k], v) if k in merged_d else v
        if seen:
            out[key] = merged_d
    return out


@dataclass
class ComponentTimes:
    """Response-time decomposition of one query."""

    io: float = 0.0
    decompression: float = 0.0
    reconstruction: float = 0.0
    communication: float = 0.0

    @property
    def total(self) -> float:
        return self.io + self.decompression + self.reconstruction + self.communication

    def __add__(self, other: "ComponentTimes") -> "ComponentTimes":
        return ComponentTimes(
            io=self.io + other.io,
            decompression=self.decompression + other.decompression,
            reconstruction=self.reconstruction + other.reconstruction,
            communication=self.communication + other.communication,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "io": self.io,
            "decompression": self.decompression,
            "reconstruction": self.reconstruction,
            "communication": self.communication,
            "total": self.total,
        }


@dataclass
class QueryResult:
    """The answer to one :class:`~repro.core.query.Query`.

    Attributes
    ----------
    positions:
        Global row-major positions of the qualifying points, sorted.
    values:
        The corresponding values (``None`` for region-only output).
        For lossy codecs or reduced PLoD levels these are approximate.
    times:
        The component-time decomposition.
    stats:
        Execution counters: bins/chunks/blocks touched, aligned bins,
        bytes read, ranks used.
    """

    positions: np.ndarray
    values: np.ndarray | None
    times: ComponentTimes
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def n_results(self) -> int:
        return int(self.positions.size)

    def coords(self, shape: tuple[int, ...]) -> np.ndarray:
        """Positions as array coordinates, shape ``(n, ndims)``."""
        strides = [int(np.prod(shape[d + 1 :])) for d in range(len(shape))]
        coords = np.empty((self.positions.size, len(shape)), dtype=np.int64)
        rem = self.positions
        for d, s in enumerate(strides):
            coords[:, d], rem = np.divmod(rem, s)
        return coords


@dataclass
class BatchResult:
    """The answer to one :meth:`~repro.core.store.MLOCStore.query_many`.

    Attributes
    ----------
    results:
        Per-query :class:`QueryResult`, in submission order.  Each
        carries its own component times and cache counters.
    times:
        Aggregate component times: the sum over the batch (queries run
        back to back in one service pipeline).
    stats:
        Batch-level counters: query count, total blocks planned vs
        decoded (the gap is the batch's dedup + cache savings),
        aggregate cache hits/misses, total bytes read.
    """

    results: list[QueryResult]
    times: ComponentTimes
    stats: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx: int) -> QueryResult:
        return self.results[idx]
