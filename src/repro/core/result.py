"""Query results and the component-time decomposition of Fig. 6.

Every data access in the paper's evaluation is decomposed into I/O
(seek + read), decompression, and reconstruction (filtering and final
assembly); the reproduction adds the modeled communication time of the
simulated MPI collectives as a fourth explicit component.  See
DESIGN.md §5 for the timing methodology: I/O and communication are
simulated seconds from the cost models, decompression and
reconstruction are measured CPU seconds on the parallel critical path
(max over ranks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ComponentTimes", "QueryResult", "BatchResult"]


@dataclass
class ComponentTimes:
    """Response-time decomposition of one query."""

    io: float = 0.0
    decompression: float = 0.0
    reconstruction: float = 0.0
    communication: float = 0.0

    @property
    def total(self) -> float:
        return self.io + self.decompression + self.reconstruction + self.communication

    def __add__(self, other: "ComponentTimes") -> "ComponentTimes":
        return ComponentTimes(
            io=self.io + other.io,
            decompression=self.decompression + other.decompression,
            reconstruction=self.reconstruction + other.reconstruction,
            communication=self.communication + other.communication,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "io": self.io,
            "decompression": self.decompression,
            "reconstruction": self.reconstruction,
            "communication": self.communication,
            "total": self.total,
        }


@dataclass
class QueryResult:
    """The answer to one :class:`~repro.core.query.Query`.

    Attributes
    ----------
    positions:
        Global row-major positions of the qualifying points, sorted.
    values:
        The corresponding values (``None`` for region-only output).
        For lossy codecs or reduced PLoD levels these are approximate.
    times:
        The component-time decomposition.
    stats:
        Execution counters: bins/chunks/blocks touched, aligned bins,
        bytes read, ranks used.
    """

    positions: np.ndarray
    values: np.ndarray | None
    times: ComponentTimes
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def n_results(self) -> int:
        return int(self.positions.size)

    def coords(self, shape: tuple[int, ...]) -> np.ndarray:
        """Positions as array coordinates, shape ``(n, ndims)``."""
        strides = [int(np.prod(shape[d + 1 :])) for d in range(len(shape))]
        coords = np.empty((self.positions.size, len(shape)), dtype=np.int64)
        rem = self.positions
        for d, s in enumerate(strides):
            coords[:, d], rem = np.divmod(rem, s)
        return coords


@dataclass
class BatchResult:
    """The answer to one :meth:`~repro.core.store.MLOCStore.query_many`.

    Attributes
    ----------
    results:
        Per-query :class:`QueryResult`, in submission order.  Each
        carries its own component times and cache counters.
    times:
        Aggregate component times: the sum over the batch (queries run
        back to back in one service pipeline).
    stats:
        Batch-level counters: query count, total blocks planned vs
        decoded (the gap is the batch's dedup + cache savings),
        aggregate cache hits/misses, total bytes read.
    """

    results: list[QueryResult]
    times: ComponentTimes
    stats: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx: int) -> QueryResult:
        return self.results[idx]
