"""MLOC writer: the multi-level encode pipeline (Sections III-A/B).

The writer runs the full layout pipeline of Fig. 1 over an input array:

1. chunk the array on the configured grid;
2. order chunks by the configured curve (Hilbert by default,
   hierarchical Hilbert for subset-based multiresolution);
3. estimate equal-frequency bin boundaries from a sample and scatter
   each chunk's elements into bins (stable, preserving within-chunk
   order so position indices stay delta-friendly);
4. split values into PLoD byte groups (orders with 'M') or keep them
   whole (order 'VS');
5. nest the smallest units — (byte group, chunk) cells inside a bin —
   according to the level order, cut them into stripe-sized
   compression blocks, compress each with the configured codec;
6. write one data file and one position-index file per bin (Fig. 4)
   plus one metadata file.

The writer is a single pass over chunks with bounded buffering:
compressed blocks are staged in memory per (bin, group) stream and the
subfiles are materialized at the end, because the V-M-S order requires
all of byte-group g's cells to precede group g+1's in the file while
generation is chunk-major.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.binning.binner import BinScheme, per_bin_segments
from repro.binning.boundaries import (
    equal_frequency_boundaries,
    equal_width_boundaries,
)
from repro.compression.base import ByteCodec, FloatCodec, make_codec
from repro.core.chunking import ChunkGrid
from repro.core.config import MLOCConfig
from repro.core.meta import StoreMeta
from repro.index.binindex import encode_position_block
from repro.pfs.layout import BinFileSet
from repro.pfs.simfs import SimulatedPFS
from repro.plod.byteplanes import GROUP_WIDTHS, split_byte_groups
from repro.sfc.hierarchical import hierarchical_order
from repro.sfc.linearize import CurveOrder, chunk_curve_order

__all__ = ["MLOCWriter", "WriteReport", "make_curve"]


def make_curve(config: MLOCConfig, grid: ChunkGrid) -> CurveOrder:
    """The chunk ordering a configuration prescribes."""
    if config.curve == "hierarchical":
        return hierarchical_order(grid.grid_shape)
    return chunk_curve_order(grid.grid_shape, config.curve)


@dataclass(frozen=True)
class WriteReport:
    """Storage accounting of one completed write (Table I inputs)."""

    variable: str
    raw_bytes: int
    data_bytes: int
    index_bytes: int
    meta_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes + self.meta_bytes

    @property
    def data_ratio(self) -> float:
        return self.data_bytes / self.raw_bytes

    @property
    def total_ratio(self) -> float:
        return self.total_bytes / self.raw_bytes


class _DataStream:
    """Accumulates consecutive cells of one (bin, group-stream) into
    compression blocks of approximately the configured raw size."""

    def __init__(self, codec, is_float: bool, target_bytes: int) -> None:
        self.codec = codec
        self.is_float = is_float
        self.target = target_bytes
        self._parts: list[np.ndarray] = []
        self._raw = 0
        self._cell_start: int | None = None
        self._next_cell: int | None = None
        #: (cell_start, cell_end, payload, raw_len) tuples.
        self.blocks: list[tuple[int, int, bytes, int]] = []

    def add(self, cell: int, part: np.ndarray) -> None:
        if self._cell_start is None:
            self._cell_start = cell
        elif cell != self._next_cell:
            raise ValueError(
                f"cells must be added consecutively: expected {self._next_cell}, got {cell}"
            )
        self._next_cell = cell + 1
        if part.size:
            self._parts.append(part)
            self._raw += part.nbytes
        if self._raw >= self.target:
            self.flush()

    def flush(self) -> None:
        if self._cell_start is None:
            return
        if self.is_float:
            raw = (
                np.concatenate(self._parts)
                if self._parts
                else np.empty(0, dtype=np.float64)
            )
            payload = self.codec.encode(raw)
            raw_len = raw.nbytes
        else:
            raw = b"".join(p.tobytes() for p in self._parts)
            payload = self.codec.encode(raw)
            raw_len = len(raw)
        self.blocks.append((self._cell_start, self._next_cell, payload, raw_len))
        self._parts = []
        self._raw = 0
        self._cell_start = None
        self._next_cell = None


class _IndexStream:
    """Accumulates per-chunk position arrays into index blocks."""

    def __init__(self, target_bytes: int, zlib_level: int = 6) -> None:
        self.target = target_bytes
        self.level = zlib_level
        self._parts: list[np.ndarray] = []
        self._raw = 0
        self._cpos_start: int | None = None
        self._next_cpos: int | None = None
        #: (cpos_start, cpos_end, payload) tuples.
        self.blocks: list[tuple[int, int, bytes]] = []

    def add(self, cpos: int, local_ids: np.ndarray) -> None:
        if self._cpos_start is None:
            self._cpos_start = cpos
        elif cpos != self._next_cpos:
            raise ValueError(
                f"chunks must be added consecutively: expected {self._next_cpos}, got {cpos}"
            )
        self._next_cpos = cpos + 1
        self._parts.append(local_ids)
        self._raw += local_ids.size * 8
        if self._raw >= self.target:
            self.flush()

    def flush(self) -> None:
        if self._cpos_start is None:
            return
        payload = encode_position_block(self._parts, self.level)
        self.blocks.append((self._cpos_start, self._next_cpos, payload))
        self._parts = []
        self._raw = 0
        self._cpos_start = None
        self._next_cpos = None


class MLOCWriter:
    """Encodes arrays into MLOC's multi-level on-disk layout."""

    def __init__(self, fs: SimulatedPFS, root: str, config: MLOCConfig) -> None:
        self.fs = fs
        self.root = root.rstrip("/")
        self.config = config

    def variable_root(self, variable: str) -> str:
        """Directory of one variable's subfiles under this writer's root."""
        return f"{self.root}/{variable}"

    def write(self, data: np.ndarray, variable: str = "var") -> WriteReport:
        """Run the full pipeline on ``data`` and persist every subfile."""
        config = self.config
        data = np.ascontiguousarray(data, dtype=np.float64)
        grid = ChunkGrid(data.shape, config.chunk_shape)
        curve = make_curve(config, grid)
        codec = make_codec(config.codec, **config.codec_params)
        if config.plod_enabled and not isinstance(codec, ByteCodec):
            raise TypeError(
                f"level order {config.level_order!r} splits byte planes and needs a "
                f"ByteCodec; {config.codec!r} is a {type(codec).__name__}"
            )
        if not config.plod_enabled and not isinstance(codec, FloatCodec):
            raise TypeError(
                f"level order {config.level_order!r} keeps whole values and needs a "
                f"FloatCodec; {config.codec!r} is a {type(codec).__name__}"
            )

        scheme = self._estimate_bins(data)
        n_bins, n_chunks = config.n_bins, grid.n_chunks
        n_groups = config.n_groups
        counts = np.zeros((n_bins, n_chunks), dtype=np.uint32)

        # One stream per (bin, group) for group-major (V-M-S) nesting;
        # a single stream per bin otherwise (cells arrive in file order).
        streams_per_bin = n_groups if config.group_major else 1
        data_streams = [
            [
                _DataStream(codec, not config.plod_enabled, config.target_block_bytes)
                for _ in range(streams_per_bin)
            ]
            for _ in range(n_bins)
        ]
        index_streams = [_IndexStream(config.target_block_bytes) for _ in range(n_bins)]

        widths = GROUP_WIDTHS if config.plod_enabled else (8,)
        for cpos in range(n_chunks):
            chunk_id = int(curve.order[cpos])
            vals = data[grid.chunk_slices(chunk_id)].reshape(-1)
            bids = scheme.assign(vals)
            perm, sorted_vals, offsets = per_bin_segments(vals, bids, n_bins)
            counts[:, cpos] = np.diff(offsets).astype(np.uint32)
            planes = (
                split_byte_groups(sorted_vals) if config.plod_enabled else [sorted_vals]
            )
            for b in range(n_bins):
                lo, hi = int(offsets[b]), int(offsets[b + 1])
                index_streams[b].add(cpos, perm[lo:hi])
                for g in range(n_groups):
                    w = widths[g]
                    part = planes[g][lo * w : hi * w] if config.plod_enabled else planes[0][lo:hi]
                    if config.group_major:
                        cell = g * n_chunks + cpos
                        data_streams[b][g].add(cell, part)
                    else:
                        cell = cpos * n_groups + g
                        data_streams[b][0].add(cell, part)

        # Materialize subfiles.
        files = BinFileSet(self.variable_root(variable), n_bins)
        data_block_tables: list[np.ndarray] = []
        index_block_tables: list[np.ndarray] = []
        for b in range(n_bins):
            rows = []
            chunks_of_file: list[bytes] = []
            offset = 0
            for stream in data_streams[b]:
                stream.flush()
                for cell_start, cell_end, payload, raw_len in stream.blocks:
                    rows.append(
                        (
                            cell_start,
                            cell_end,
                            offset,
                            len(payload),
                            raw_len,
                            zlib.crc32(payload),
                        )
                    )
                    chunks_of_file.append(payload)
                    offset += len(payload)
            self.fs.write_file(files.data_path(b), b"".join(chunks_of_file))
            data_block_tables.append(np.array(rows, dtype=np.int64).reshape(-1, 6))

            index_streams[b].flush()
            rows = []
            chunks_of_file = []
            offset = 0
            for cpos_start, cpos_end, payload in index_streams[b].blocks:
                rows.append(
                    (cpos_start, cpos_end, offset, len(payload), zlib.crc32(payload))
                )
                chunks_of_file.append(payload)
                offset += len(payload)
            self.fs.write_file(files.index_path(b), b"".join(chunks_of_file))
            index_block_tables.append(np.array(rows, dtype=np.int64).reshape(-1, 5))

        meta = StoreMeta(
            variable=variable,
            shape=data.shape,
            config=config,
            edges=scheme.edges,
            counts=counts,
            data_blocks=data_block_tables,
            index_blocks=index_block_tables,
        )
        meta.validate()
        self.fs.write_file(files.meta_path, meta.to_bytes())

        return WriteReport(
            variable=variable,
            raw_bytes=data.nbytes,
            data_bytes=files.data_bytes(self.fs),
            index_bytes=files.index_bytes(self.fs),
            meta_bytes=self.fs.size(files.meta_path),
        )

    def _estimate_bins(self, data: np.ndarray) -> BinScheme:
        """Bin boundaries from a random sample (§IV-A1)."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        flat = data.reshape(-1)
        n_sample = max(int(flat.size * config.sample_fraction), config.n_bins * 8)
        n_sample = min(n_sample, flat.size)
        sample = flat[rng.integers(0, flat.size, size=n_sample)]
        if config.binning == "equal-width":
            edges = equal_width_boundaries(
                float(sample.min()), float(sample.max()), config.n_bins
            )
        else:
            edges = equal_frequency_boundaries(sample, config.n_bins)
        return BinScheme(edges)
