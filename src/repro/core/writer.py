"""MLOC writer: the multi-level encode pipeline (Sections III-A/B).

The writer runs the full layout pipeline of Fig. 1 over an input array:

1. chunk the array on the configured grid;
2. order chunks by the configured curve (Hilbert by default,
   hierarchical Hilbert for subset-based multiresolution);
3. estimate equal-frequency bin boundaries from a sample and scatter
   each chunk's elements into bins (stable, preserving within-chunk
   order so position indices stay delta-friendly);
4. split values into PLoD byte groups (orders with 'M') or keep them
   whole (order 'VS');
5. nest the smallest units — (byte group, chunk) cells inside a bin —
   according to the level order, cut them into stripe-sized
   compression blocks, compress each with the configured codec;
6. write one data file and one position-index file per bin (Fig. 4)
   plus one metadata file.

The writer is a single pass over chunks with bounded buffering:
compressed blocks are staged in memory per (bin, group) stream and the
subfiles are materialized at the end, because the V-M-S order requires
all of byte-group g's cells to precede group g+1's in the file while
generation is chunk-major.

The pass is organized as three pipeline stages so the CPU-dominated
work can parallelize without changing a single output byte
(DESIGN.md §6, the bit-identical-output rule):

* **chunk stage** — per-chunk binning (``assign``), stable scatter
  (``per_bin_segments``) and PLoD byte-group splitting.  Pure
  functions of (data, cpos); under the ``"threads"`` write backend
  they run out of order on a pool with a bounded look-ahead window.
* **ordered commit stage** — always serial, always in curve (cell)
  order: chunk results are consumed in exactly the serial order and
  appended to each bin's streams, so compression-block *boundaries*
  are decided by the same deterministic raw-size accumulation as the
  serial writer.
* **compression stage** — when a stream cuts a block, the raw buffer
  is handed to the codec: inline under the ``"serial"`` backend, as a
  pool job under ``"threads"`` (zlib releases the GIL; ISOBAR/ISABELA
  are numpy/scipy-heavy), or as a picklable ``(spec, payload)`` task
  on the persistent spawned worker pool under ``"processes"`` — the
  GIL-free path (:mod:`repro.parallel.procpool`).  Codec ``encode``
  is required to be deterministic (see
  :mod:`repro.compression.base`), so payloads — and therefore
  subfiles, block tables, CRCs and metadata — are bit-identical
  across backends and worker counts.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.binning.binner import BinScheme, per_bin_segments
from repro.binning.boundaries import (
    equal_frequency_boundaries,
    equal_width_boundaries,
)
from repro.compression.base import ByteCodec, FloatCodec, make_codec
from repro.core.chunking import ChunkGrid
from repro.core.config import WRITE_BACKENDS, MLOCConfig
from repro.core.meta import StoreMeta
from repro.index.binindex import encode_position_block
from repro.index.hbi import HBIBuilder, hbi_path
from repro.parallel.procpool import (
    AUTO_PROCESS_MIN_BYTES,
    PoolBrokenError,
    get_pool,
    run_task,
)
from repro.pfs.layout import BinFileSet
from repro.pfs.simfs import SimulatedPFS
from repro.plod.bounds import PEBBuilder, compute_chunk_bounds, peb_path
from repro.plod.byteplanes import GROUP_WIDTHS, split_byte_groups
from repro.sfc.hierarchical import hierarchical_order
from repro.sfc.linearize import CurveOrder, chunk_curve_order

__all__ = ["MLOCWriter", "WriteReport", "make_curve"]


def make_curve(config: MLOCConfig, grid: ChunkGrid) -> CurveOrder:
    """The chunk ordering a configuration prescribes."""
    if config.curve == "hierarchical":
        return hierarchical_order(grid.grid_shape)
    return chunk_curve_order(grid.grid_shape, config.curve)


@dataclass(frozen=True)
class WriteReport:
    """Storage accounting of one completed write (Table I inputs)."""

    variable: str
    raw_bytes: int
    data_bytes: int
    index_bytes: int
    meta_bytes: int
    #: Hierarchical bitmap index file size (0 when ``build_hbi=False``).
    #: Kept out of ``total_bytes`` so Table I storage accounting is
    #: unchanged by the optional summary structure.
    hbi_bytes: int = 0
    #: Per-chunk error-bounds file size (0 when ``build_peb=False`` or
    #: the layout has no PLoD byte planes).  Outside ``total_bytes``
    #: for the same reason as ``hbi_bytes``.
    peb_bytes: int = 0
    #: CRC32 of the metadata bytes as written — the store generation a
    #: dataset manifest records when it seals this write as a member
    #: (``repro.core.manifest``).
    meta_crc: int = 0

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes + self.meta_bytes

    @property
    def data_ratio(self) -> float:
        return self.data_bytes / self.raw_bytes

    @property
    def total_ratio(self) -> float:
        return self.total_bytes / self.raw_bytes


class _SerialBackend:
    """Inline execution: one codec instance, no pool, no futures."""

    def __init__(self, codec: ByteCodec | FloatCodec) -> None:
        self._codec = codec

    def chunk_results(self, fn: Callable[[int], tuple], n_chunks: int) -> Iterator[tuple]:
        for cpos in range(n_chunks):
            yield fn(cpos)

    def encode_data(self, raw: np.ndarray) -> bytes:
        return self._codec.encode(raw)

    def encode_index(self, parts: list[np.ndarray], level: int) -> bytes:
        return encode_position_block(parts, level)

    def resolve(self, payload: bytes) -> bytes:
        return payload

    def close(self) -> None:
        pass


class _ThreadedBackend:
    """Pool execution with deterministic ordering.

    Chunk-stage jobs run out of order behind a bounded look-ahead
    window but are *consumed* in serial cell order; compression jobs
    are submitted in stream order and resolved in table order, so the
    committed bytes never depend on scheduling.  Each worker thread
    lazily builds its own codec instance (ISABELA keeps a mutable
    design-matrix cache; per-worker instances make sharing a non-issue
    for any registered codec).
    """

    def __init__(self, config: MLOCConfig, workers: int) -> None:
        self.workers = workers
        self._config = config
        self._tls = threading.local()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="mloc-write"
        )

    def _codec(self) -> ByteCodec | FloatCodec:
        codec = getattr(self._tls, "codec", None)
        if codec is None:
            codec = make_codec(self._config.codec, **self._config.codec_params)
            self._tls.codec = codec
        return codec

    def _encode_with_worker_codec(self, raw: np.ndarray) -> bytes:
        return self._codec().encode(raw)

    def chunk_results(self, fn: Callable[[int], tuple], n_chunks: int) -> Iterator[tuple]:
        # Bounded look-ahead keeps at most ~2 windows of chunk results
        # (plus their byte planes) alive while the commit stage drains
        # them in order.
        window = max(2 * self.workers, 2)
        pending: deque[Future] = deque()
        submitted = 0
        for _ in range(n_chunks):
            while submitted < n_chunks and len(pending) < window:
                pending.append(self._pool.submit(fn, submitted))
                submitted += 1
            yield pending.popleft().result()

    def encode_data(self, raw: np.ndarray) -> Future:
        return self._pool.submit(self._encode_with_worker_codec, raw)

    def encode_index(self, parts: list[np.ndarray], level: int) -> Future:
        return self._pool.submit(encode_position_block, parts, level)

    def resolve(self, payload: Future) -> bytes:
        return payload.result()

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class _ProcessBackend:
    """Compression on the shared spawn-based process pool.

    Only the compression stage leaves the parent: the chunk stage
    reads the input array in place (shipping chunk-sized slices to
    workers would move more bytes than the encode saves — shared-
    nothing means every byte a worker touches is pickled), and the
    commit stage is serial by design.  Encode jobs travel as picklable
    ``(spec, payload)`` tasks, are submitted in stream order, and
    resolve in table order, so committed bytes never depend on
    scheduling.  If the pool dies mid-write, the affected payloads are
    re-encoded inline through the same
    :func:`repro.parallel.procpool.run_task` interpreter — a worker
    crash costs time, never bytes.
    """

    def __init__(self, codec: ByteCodec | FloatCodec, workers: int) -> None:
        self.workers = workers
        self._pool = get_pool(workers)
        name, params = codec.spec()
        self._data_spec = ("encode-data", name, params)
        #: Encode jobs that fell back inline after a pool break.
        self.fallbacks = 0

    def chunk_results(self, fn: Callable[[int], tuple], n_chunks: int) -> Iterator[tuple]:
        for cpos in range(n_chunks):
            yield fn(cpos)

    def _submit(self, task: tuple) -> tuple:
        try:
            return self._pool.submit(task), task
        except PoolBrokenError:
            return None, task  # resolve() runs it inline

    def encode_data(self, raw: np.ndarray) -> tuple:
        return self._submit((self._data_spec, raw))

    def encode_index(self, parts: list[np.ndarray], level: int) -> tuple:
        return self._submit((("encode-index", level), parts))

    def resolve(self, pending: tuple) -> bytes:
        future, task = pending
        if future is not None:
            try:
                return self._pool.resolve(future)
            except PoolBrokenError:
                pass
        self.fallbacks += 1
        return run_task(task)

    def close(self) -> None:
        # The pool is shared and persistent (``get_pool``): later
        # writes and the processes read backend reuse its warm workers.
        pass


class _DataStream:
    """Accumulates consecutive cells of one (bin, group-stream) into
    compression blocks of approximately the configured raw size.

    Block *boundaries* are decided here by serial raw-size
    accumulation; block *payloads* come from the backend's ``encode``
    hook and may be futures resolved at commit time.
    """

    def __init__(self, encode, is_float: bool, target_bytes: int) -> None:
        self.encode = encode
        self.is_float = is_float
        self.target = target_bytes
        self._parts: list[np.ndarray] = []
        self._raw = 0
        self._cell_start: int | None = None
        self._next_cell: int | None = None
        #: (cell_start, cell_end, payload-or-future, raw_len) tuples.
        self.blocks: list[tuple[int, int, object, int]] = []

    def add(self, cell: int, part: np.ndarray) -> None:
        if self._cell_start is None:
            self._cell_start = cell
        elif cell != self._next_cell:
            raise ValueError(
                f"cells must be added consecutively: expected {self._next_cell}, got {cell}"
            )
        self._next_cell = cell + 1
        if part.size:
            self._parts.append(part)
            self._raw += part.nbytes
        if self._raw >= self.target:
            self.flush()

    def flush(self) -> None:
        if self._cell_start is None:
            return
        # One concatenate over the accumulated views for both the float
        # and the byte-plane path — parts are contiguous slices, so the
        # per-part Python-level copies of a join are skipped and codecs
        # consume the buffer directly.
        if self._parts:
            raw = self._parts[0] if len(self._parts) == 1 else np.concatenate(self._parts)
        else:
            raw = np.empty(0, dtype=np.float64 if self.is_float else np.uint8)
        self.blocks.append((self._cell_start, self._next_cell, self.encode(raw), raw.nbytes))
        self._parts = []
        self._raw = 0
        self._cell_start = None
        self._next_cell = None


class _IndexStream:
    """Accumulates per-chunk position arrays into index blocks."""

    def __init__(self, encode, target_bytes: int, zlib_level: int = 6) -> None:
        self.encode = encode
        self.target = target_bytes
        self.level = zlib_level
        self._parts: list[np.ndarray] = []
        self._raw = 0
        self._cpos_start: int | None = None
        self._next_cpos: int | None = None
        #: (cpos_start, cpos_end, payload-or-future) tuples.
        self.blocks: list[tuple[int, int, object]] = []

    def add(self, cpos: int, local_ids: np.ndarray) -> None:
        if self._cpos_start is None:
            self._cpos_start = cpos
        elif cpos != self._next_cpos:
            raise ValueError(
                f"chunks must be added consecutively: expected {self._next_cpos}, got {cpos}"
            )
        self._next_cpos = cpos + 1
        self._parts.append(local_ids)
        self._raw += local_ids.size * 8
        if self._raw >= self.target:
            self.flush()

    def flush(self) -> None:
        if self._cpos_start is None:
            return
        self.blocks.append(
            (self._cpos_start, self._next_cpos, self.encode(self._parts, self.level))
        )
        self._parts = []
        self._raw = 0
        self._cpos_start = None
        self._next_cpos = None


class MLOCWriter:
    """Encodes arrays into MLOC's multi-level on-disk layout.

    Parameters
    ----------
    write_backend:
        ``"serial"`` (default) runs the whole pipeline inline;
        ``"threads"`` fans the chunk stage and block compression out
        on a thread pool; ``"processes"`` ships block compression to
        the persistent shared-nothing worker pool (the GIL-free path);
        ``"auto"`` picks ``processes`` when more than one worker is
        available and the input clears
        :data:`~repro.parallel.procpool.AUTO_PROCESS_MIN_BYTES`,
        ``serial`` otherwise.  Every backend produces **bit-identical**
        subfiles and metadata (enforced by
        ``tests/test_writer_parallel.py``); only real wall-clock
        differs.
    write_workers:
        Pool width for the ``"threads"``/``"processes"`` backends;
        ``None`` = CPU count.  On a single-core machine an unsized
        pool would be pure overhead, so the writer falls back to
        inline execution unless a width > 1 is requested explicitly.
    build_hbi:
        Build and persist the hierarchical bitmap index
        (:mod:`repro.index.hbi`) alongside the flat position index
        (default on).  The builder consumes the ordered commit
        stream, so the ``hbi`` file is bit-identical across write
        backends like every other subfile.  Stores opened without
        ``use_hbi`` ignore the file entirely.
    build_peb:
        Record per-(chunk, PLoD-level) error bounds
        (:mod:`repro.plod.bounds`) and persist them as the ``peb``
        record (default on; effective only for byte-plane layouts).
        Bounds are pure functions of the chunk-stage output consumed
        in ordered-commit order, so the file is bit-identical across
        write backends.  The record powers ``query(tol=...)``; stores
        written without it rebuild an identical table lazily on first
        use.
    """

    def __init__(
        self,
        fs: SimulatedPFS,
        root: str,
        config: MLOCConfig,
        *,
        write_backend: str = "serial",
        write_workers: int | None = None,
        build_hbi: bool = True,
        build_peb: bool = True,
    ) -> None:
        if write_backend not in WRITE_BACKENDS:
            raise ValueError(
                f"write_backend must be one of {WRITE_BACKENDS}, got {write_backend!r}"
            )
        if write_workers is not None and write_workers <= 0:
            raise ValueError(f"write_workers must be positive, got {write_workers}")
        self.fs = fs
        self.root = root.rstrip("/")
        self.config = config
        self.write_backend = write_backend
        self.write_workers = write_workers
        self.build_hbi = build_hbi
        self.build_peb = build_peb

    def variable_root(self, variable: str) -> str:
        """Directory of one variable's subfiles under this writer's root."""
        return f"{self.root}/{variable}"

    # ------------------------------------------------------------------
    def write(self, data: np.ndarray, variable: str = "var") -> WriteReport:
        """Run the full pipeline on ``data`` and persist every subfile."""
        data = np.ascontiguousarray(data, dtype=np.float64)
        grid = ChunkGrid(data.shape, self.config.chunk_shape)
        curve = make_curve(self.config, grid)
        codec = self._check_codec()
        scheme = self._estimate_bins(data)
        backend = self._make_backend(codec, data.nbytes)
        try:
            data_streams, index_streams, counts, hbi, peb = self._encode(
                data, grid, curve, scheme, backend
            )
            return self._commit(
                data, variable, scheme, counts, data_streams, index_streams, backend,
                hbi, peb,
            )
        finally:
            backend.close()

    # ------------------------------------------------------------------
    def _check_codec(self) -> ByteCodec | FloatCodec:
        """Instantiate the codec and verify it matches the level order."""
        config = self.config
        codec = make_codec(config.codec, **config.codec_params)
        if config.plod_enabled and not isinstance(codec, ByteCodec):
            raise TypeError(
                f"level order {config.level_order!r} splits byte planes and needs a "
                f"ByteCodec; {config.codec!r} is a {type(codec).__name__}"
            )
        if not config.plod_enabled and not isinstance(codec, FloatCodec):
            raise TypeError(
                f"level order {config.level_order!r} keeps whole values and needs a "
                f"FloatCodec; {config.codec!r} is a {type(codec).__name__}"
            )
        return codec

    def _make_backend(self, codec: ByteCodec | FloatCodec, data_nbytes: int):
        backend = self.write_backend
        workers = self.write_workers or os.cpu_count() or 1
        if backend == "auto":
            backend = (
                "processes"
                if workers > 1 and data_nbytes >= AUTO_PROCESS_MIN_BYTES
                else "serial"
            )
        if backend == "threads" and workers > 1:
            return _ThreadedBackend(self.config, workers)
        if backend == "processes" and workers > 1:
            return _ProcessBackend(codec, workers)
        return _SerialBackend(codec)

    # ------------------------------------------------------------------
    def _encode(self, data, grid, curve, scheme, backend):
        """Chunk fan-out + ordered commit into per-(bin, group) streams."""
        config = self.config
        n_bins, n_chunks = config.n_bins, grid.n_chunks
        n_groups = config.n_groups
        plod = config.plod_enabled
        counts = np.zeros((n_bins, n_chunks), dtype=np.uint32)

        # One stream per (bin, group) for group-major (V-M-S) nesting;
        # a single stream per bin otherwise (cells arrive in file order).
        streams_per_bin = n_groups if config.group_major else 1
        data_streams = [
            [
                _DataStream(backend.encode_data, not plod, config.target_block_bytes)
                for _ in range(streams_per_bin)
            ]
            for _ in range(n_bins)
        ]
        index_streams = [
            _IndexStream(backend.encode_index, config.target_block_bytes)
            for _ in range(n_bins)
        ]
        # The hierarchical index builder rides the ordered commit loop
        # below, which consumes chunk results in serial cpos order under
        # every backend — so the hbi file is backend-invariant too.
        hbi = (
            HBIBuilder(n_bins, n_chunks, grid.chunk_size) if self.build_hbi else None
        )
        # The bounds builder rides the same ordered commit loop; the
        # bounds themselves are computed in the (parallel) chunk stage
        # because they are pure functions of the chunk's values.
        peb = PEBBuilder(n_chunks) if (self.build_peb and plod) else None
        want_bounds = peb is not None

        def chunk_stage(cpos: int) -> tuple:
            chunk_id = int(curve.order[cpos])
            vals = data[grid.chunk_slices(chunk_id)].reshape(-1)
            bids = scheme.assign(vals)
            perm, sorted_vals, offsets = per_bin_segments(vals, bids, n_bins)
            planes = split_byte_groups(sorted_vals) if plod else [sorted_vals]
            bounds = (
                compute_chunk_bounds(sorted_vals, planes) if want_bounds else None
            )
            return perm, offsets, planes, bounds

        widths = GROUP_WIDTHS if plod else (8,)
        results = backend.chunk_results(chunk_stage, n_chunks)
        for cpos, (perm, offsets, planes, bounds) in enumerate(results):
            counts[:, cpos] = np.diff(offsets).astype(np.uint32)
            if hbi is not None:
                hbi.add_chunk(cpos, perm, offsets)
            if peb is not None:
                peb.add_chunk(cpos, *bounds)
            for b in range(n_bins):
                lo, hi = int(offsets[b]), int(offsets[b + 1])
                index_streams[b].add(cpos, perm[lo:hi])
                for g in range(n_groups):
                    w = widths[g]
                    part = planes[g][lo * w : hi * w] if plod else planes[0][lo:hi]
                    if config.group_major:
                        data_streams[b][g].add(g * n_chunks + cpos, part)
                    else:
                        data_streams[b][0].add(cpos * n_groups + g, part)
        return data_streams, index_streams, counts, hbi, peb

    # ------------------------------------------------------------------
    def _commit(
        self, data, variable, scheme, counts, data_streams, index_streams, backend,
        hbi=None, peb=None,
    ) -> WriteReport:
        """Materialize subfiles and metadata in deterministic order."""
        n_bins = self.config.n_bins
        # Cut every stream's final block first so the remaining
        # compression jobs overlap with the commit walk below.
        for b in range(n_bins):
            for stream in data_streams[b]:
                stream.flush()
            index_streams[b].flush()

        files = BinFileSet(self.variable_root(variable), n_bins)
        data_block_tables: list[np.ndarray] = []
        index_block_tables: list[np.ndarray] = []
        for b in range(n_bins):
            rows = []
            chunks_of_file: list[bytes] = []
            offset = 0
            for stream in data_streams[b]:
                for cell_start, cell_end, pending, raw_len in stream.blocks:
                    payload = backend.resolve(pending)
                    rows.append(
                        (
                            cell_start,
                            cell_end,
                            offset,
                            len(payload),
                            raw_len,
                            zlib.crc32(payload),
                        )
                    )
                    chunks_of_file.append(payload)
                    offset += len(payload)
            self.fs.write_file(files.data_path(b), b"".join(chunks_of_file))
            data_block_tables.append(np.array(rows, dtype=np.int64).reshape(-1, 6))

            rows = []
            chunks_of_file = []
            offset = 0
            for cpos_start, cpos_end, pending in index_streams[b].blocks:
                payload = backend.resolve(pending)
                rows.append(
                    (cpos_start, cpos_end, offset, len(payload), zlib.crc32(payload))
                )
                chunks_of_file.append(payload)
                offset += len(payload)
            self.fs.write_file(files.index_path(b), b"".join(chunks_of_file))
            index_block_tables.append(np.array(rows, dtype=np.int64).reshape(-1, 5))

        meta = StoreMeta(
            variable=variable,
            shape=data.shape,
            config=self.config,
            edges=scheme.edges,
            counts=counts,
            data_blocks=data_block_tables,
            index_blocks=index_block_tables,
        )
        meta.validate()
        meta_blob = meta.to_bytes()
        self.fs.write_file(files.meta_path, meta_blob)

        hbi_bytes = 0
        if hbi is not None:
            blob = hbi.finish().to_bytes()
            self.fs.write_file(hbi_path(self.variable_root(variable)), blob)
            hbi_bytes = len(blob)

        peb_bytes = 0
        if peb is not None:
            blob = peb.finish().to_bytes()
            self.fs.write_file(peb_path(self.variable_root(variable)), blob)
            peb_bytes = len(blob)

        return WriteReport(
            variable=variable,
            raw_bytes=data.nbytes,
            data_bytes=files.data_bytes(self.fs),
            index_bytes=files.index_bytes(self.fs),
            meta_bytes=self.fs.size(files.meta_path),
            hbi_bytes=hbi_bytes,
            peb_bytes=peb_bytes,
            meta_crc=zlib.crc32(meta_blob),
        )

    # ------------------------------------------------------------------
    def _estimate_bins(self, data: np.ndarray) -> BinScheme:
        """Bin boundaries: sampled quantiles, or true-range equal width.

        Equal-frequency edges come from a random sample (§IV-A1).
        Equal-width edges use the *full-array* min/max — two cheap
        single passes — because sample extremes systematically
        under-cover the data and would silently clamp every outlier
        into the two end bins.
        """
        config = self.config
        flat = data.reshape(-1)
        if config.binning == "equal-width":
            edges = equal_width_boundaries(
                float(flat.min()), float(flat.max()), config.n_bins
            )
            return BinScheme(edges)
        rng = np.random.default_rng(config.seed)
        n_sample = max(int(flat.size * config.sample_fraction), config.n_bins * 8)
        n_sample = min(n_sample, flat.size)
        sample = flat[rng.integers(0, flat.size, size=n_sample)]
        return BinScheme(equal_frequency_boundaries(sample, config.n_bins))
