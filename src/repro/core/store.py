"""MLOCStore: the user-facing query interface over a written dataset.

Opens the metadata of a variable previously written by
:class:`~repro.core.writer.MLOCWriter`, reconstructs the geometry (chunk
grid, curve order, bin scheme), and serves queries through the planner
and parallel executor.  Storage accounting for Table I is exposed via
:meth:`storage_report`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.binning.binner import BinScheme
from repro.core.chunking import ChunkGrid
from repro.core.executor import QueryExecutor
from repro.core.meta import StoreMeta
from repro.core.planner import plan_query
from repro.core.query import Query
from repro.core.result import QueryResult
from repro.core.writer import make_curve
from repro.index.bitmap import Bitmap
from repro.parallel.simmpi import CommCostModel
from repro.pfs.layout import BinFileSet
from repro.pfs.simfs import SimulatedPFS

__all__ = ["MLOCStore", "StorageReport"]


@dataclass(frozen=True)
class StorageReport:
    """On-disk footprint of one variable (Table I accounting)."""

    data_bytes: int
    index_bytes: int
    meta_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes + self.meta_bytes


class MLOCStore:
    """Read-side handle on one stored variable."""

    def __init__(
        self,
        fs: SimulatedPFS,
        root: str,
        meta: StoreMeta,
        *,
        n_ranks: int = 8,
        scheduler: str = "column",
        comm_cost: CommCostModel | None = None,
    ) -> None:
        self.fs = fs
        self.root = root.rstrip("/")
        self.meta = meta
        self.grid = ChunkGrid(meta.shape, meta.config.chunk_shape)
        self.curve = make_curve(meta.config, self.grid)
        self.scheme = BinScheme(meta.edges)
        self.files = BinFileSet(self.root, meta.config.n_bins)
        self.executor = QueryExecutor(
            fs,
            self.files,
            meta,
            self.grid,
            self.curve,
            n_ranks=n_ranks,
            scheduler=scheduler,
            comm_cost=comm_cost,
        )

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        fs: SimulatedPFS,
        root: str,
        variable: str = "var",
        **executor_options,
    ) -> "MLOCStore":
        """Open the variable stored under ``root/variable``.

        The metadata file is read once here (the store keeps it in
        memory for its lifetime, as any long-running analysis service
        would); per-query index/data reads are charged to each query.
        """
        var_root = f"{root.rstrip('/')}/{variable}"
        meta_path = f"{var_root}/meta"
        raw = bytes(fs.session().open(meta_path).read_all())
        meta = StoreMeta.from_bytes(raw)
        return cls(fs, var_root, meta, **executor_options)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.meta.shape

    @property
    def n_elements(self) -> int:
        return self.grid.n_elements

    @property
    def variable(self) -> str:
        return self.meta.variable

    def with_ranks(self, n_ranks: int) -> "MLOCStore":
        """A view of the same store using a different rank count."""
        return MLOCStore(
            self.fs,
            self.root,
            self.meta,
            n_ranks=n_ranks,
            scheduler=self.executor.scheduler,
            comm_cost=self.executor.comm_cost,
        )

    # ------------------------------------------------------------------
    def query(self, query: Query, position_filter: Bitmap | None = None) -> QueryResult:
        """Plan and execute one access request."""
        plan = plan_query(
            self.grid,
            self.curve,
            self.scheme,
            query,
            hierarchical=self.meta.config.curve == "hierarchical",
        )
        return self.executor.execute(query, plan, position_filter=position_filter)

    def fetch_positions(
        self,
        bitmap: Bitmap,
        *,
        region: tuple[tuple[int, int], ...] | None = None,
        plod_level: int | None = None,
    ) -> QueryResult:
        """Retrieve values at the positions set in ``bitmap``.

        The second step of multi-variable access (Section III-D4): the
        bitmap produced by a region-only step on another variable masks
        the value retrieval on this one.  Only chunks containing set
        positions are visited.
        """
        if bitmap.nbits != self.n_elements:
            raise ValueError(
                f"bitmap covers {bitmap.nbits} positions, store has {self.n_elements}"
            )
        positions = bitmap.to_positions()
        query = Query(
            region=region,
            output="values",
            plod_level=plod_level if plod_level is not None else 7,
        )
        plan = plan_query(
            self.grid,
            self.curve,
            self.scheme,
            query,
            hierarchical=self.meta.config.curve == "hierarchical",
        )
        if positions.size:
            hit_chunks = np.unique(self.grid.chunk_of_positions(positions))
            keep = np.isin(plan.chunk_ids, hit_chunks)
            plan.chunk_ids = plan.chunk_ids[keep]
            plan.cpos = plan.cpos[keep]
            plan.interior = plan.interior[keep]
        else:
            plan.chunk_ids = plan.chunk_ids[:0]
            plan.cpos = plan.cpos[:0]
            plan.interior = plan.interior[:0]
        return self.executor.execute(query, plan, position_filter=bitmap)

    # ------------------------------------------------------------------
    def storage_report(self) -> StorageReport:
        """On-disk footprint of this variable (Table I accounting)."""
        return StorageReport(
            data_bytes=self.files.data_bytes(self.fs),
            index_bytes=self.files.index_bytes(self.fs),
            meta_bytes=self.fs.size(self.files.meta_path),
        )
