"""MLOCStore: the user-facing query interface over a written dataset.

Opens the metadata of a variable previously written by
:class:`~repro.core.writer.MLOCWriter`, reconstructs the geometry (chunk
grid, curve order, bin scheme), and serves queries through the planner
and parallel executor.  Storage accounting for Table I is exposed via
:meth:`storage_report`.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass

import numpy as np

from repro.binning.binner import BinScheme
from repro.core.chunking import ChunkGrid
from repro.core.engine.session import RefinementSession
from repro.core.errors import DegradedResultError
from repro.core.executor import QueryExecutor
from repro.core.meta import StoreMeta
from repro.core.planner import PlanContext, QueryPlan
from repro.core.query import Query
from repro.core.result import (
    BatchResult,
    ComponentTimes,
    QueryResult,
    aggregate_stats,
)
from repro.core.writer import make_curve
from repro.index.bitmap import Bitmap
from repro.index.hbi import HBIndex, build_from_store, hbi_path
from repro.parallel.simmpi import CommCostModel
from repro.plod import bounds as peb_bounds
from repro.plod.bounds import TOL_METRICS, ErrorBoundsTable, peb_path
from repro.pfs.blockcache import BlockCache
from repro.pfs.layout import BinFileSet
from repro.pfs.simfs import SimulatedPFS

__all__ = ["MLOCStore", "StorageReport", "stamp_tol_stats"]


def stamp_tol_stats(
    store,
    query: Query,
    plan: QueryPlan,
    levels: np.ndarray,
    result: QueryResult,
    *,
    enforce: bool = True,
) -> None:
    """Report (and enforce) the accuracy contract of a tol query.

    Shared by the flat store, the sharded store, and the refinement
    session (``store`` duck-types ``_tol_params`` / ``peb`` /
    ``_primary_executor`` / ``quarantined_blocks``).

    ``achieved_bound`` is computed from the *effective* levels — the
    requested per-chunk levels reduced by any sticky-fault degradation
    the engine reported in ``degraded_chunk_levels`` — so a
    dummy-filled plane can never silently count as meeting the bound.
    When the provable bound exceeds ``tol`` and ``enforce`` is set,
    strict mode raises :class:`DegradedResultError` (kind ``"tol"``);
    with ``allow_partial`` (or on non-final progressive steps, which
    pass ``enforce=False``) the degradation is disclosed via
    ``tol_met=False`` instead.
    """
    tol, metric = store._tol_params(query)
    executor = store._primary_executor
    effective = levels.copy()
    degraded = result.stats.get("degraded_chunk_levels") or {}
    for c, lvl in degraded.items():
        effective[c] = min(int(effective[c]), int(lvl))
    planned_eff = effective[plan.cpos]
    achieved = (
        float(store.peb.bound_at(planned_eff, metric, cpos=plan.cpos).max())
        if planned_eff.size
        else 0.0
    )
    uniq, cnt = np.unique(levels[plan.cpos], return_counts=True)
    full_bytes = executor.estimated_raw_bytes(query, plan)
    tol_bytes = executor.estimated_raw_bytes(query, plan, chunk_levels=levels)
    result.stats["tol_target"] = float(tol)
    result.stats["tol_metric"] = metric
    result.stats["achieved_bound"] = achieved
    result.stats["levels_histogram"] = {int(u): int(c) for u, c in zip(uniq, cnt)}
    result.stats["tol_bytes_saved"] = int(full_bytes - tol_bytes)
    result.stats["tol_met"] = bool(achieved <= tol)
    if enforce and achieved > tol and not executor.allow_partial:
        quarantined = sorted(store.quarantined_blocks)
        path, offset = quarantined[0] if quarantined else ("", 0)
        hit = np.isin(plan.cpos, np.fromiter(degraded, dtype=np.int64))
        raise DegradedResultError(
            kind="tol",
            path=path,
            offset=offset,
            bin_id=-1,
            chunk_ids=tuple(int(c) for c in plan.chunk_ids[hit]),
        )


@dataclass(frozen=True)
class StorageReport:
    """On-disk footprint of one variable (Table I accounting)."""

    data_bytes: int
    index_bytes: int
    meta_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes + self.meta_bytes


class MLOCStore:
    """Read-side handle on one stored variable."""

    def __init__(
        self,
        fs: SimulatedPFS,
        root: str,
        meta: StoreMeta,
        *,
        n_ranks: int = 8,
        scheduler: str = "column",
        comm_cost: CommCostModel | None = None,
        backend: str = "serial",
        n_threads: int | None = None,
        workers: int | None = None,
        cache: BlockCache | None = None,
        cache_bytes: int = 0,
        plan_cache: int = 0,
        context: PlanContext | None = None,
        max_read_retries: int = 2,
        read_backoff: float = 0.005,
        allow_partial: bool = False,
        coalesce_gap: int = 0,
        readahead: int = 0,
        use_hbi: bool | None = None,
        tol: float | None = None,
        tol_metric: str = "max_rel",
        generation: int | None = None,
    ) -> None:
        if tol is not None and not tol >= 0:
            raise ValueError(f"tol must be non-negative, got {tol}")
        if tol_metric not in TOL_METRICS:
            raise ValueError(
                f"tol_metric must be one of {TOL_METRICS}, got {tol_metric!r}"
            )
        self.fs = fs
        self.root = root.rstrip("/")
        self.meta = meta
        # Handle-level error-bound defaults: applied to queries that do
        # not set their own ``tol`` (a query's explicit tol always wins).
        self.default_tol = tol
        self.default_tol_metric = tol_metric
        self._peb: ErrorBoundsTable | None = None
        # Hierarchical bitmap index: opt-in per handle (or fleet-wide
        # via MLOC_HBI=1) because enabling it changes plan *work*, not
        # results — the flat path stays the accounting baseline.
        if use_hbi is None:
            use_hbi = os.environ.get("MLOC_HBI") == "1"
        self.use_hbi = bool(use_hbi)
        self._hbi: HBIndex | None = None
        self.grid = ChunkGrid(meta.shape, meta.config.chunk_shape)
        self.curve = make_curve(meta.config, self.grid)
        self.scheme = BinScheme(meta.edges)
        self.files = BinFileSet(self.root, meta.config.n_bins)
        if cache is None and cache_bytes > 0:
            cache = BlockCache(cache_bytes)
        self.cache = cache
        self.plan_cache_size = int(plan_cache)
        # Store-resident planning context: per-bin prefix sums and
        # block-table row starts computed once at open, plus (when
        # enabled) the LRU of finished plans keyed by query fingerprint.
        # A sharded store passes one shared context into every shard
        # handle so the tables are built exactly once.
        self.context = (
            context
            if context is not None
            else PlanContext.for_store(
                meta, self.grid, self.curve, self.scheme,
                plan_cache=self.plan_cache_size,
            )
        )
        # Fingerprint the metadata so decoded blocks cached by a
        # previous layout of the same paths can never be served after a
        # rewrite-and-reopen.  A dataset snapshot passes the sealed
        # member's recorded ``meta_crc`` explicitly, pinning cache keys
        # to the manifest generation that sealed the member.
        if generation is None:
            generation = meta.fingerprint() if cache is not None else 0
        self.generation = generation
        self.executor = QueryExecutor(
            fs,
            self.files,
            meta,
            self.grid,
            self.curve,
            n_ranks=n_ranks,
            scheduler=scheduler,
            comm_cost=comm_cost,
            backend=backend,
            n_threads=n_threads,
            workers=workers,
            cache=cache,
            generation=generation,
            context=self.context,
            max_read_retries=max_read_retries,
            read_backoff=read_backoff,
            allow_partial=allow_partial,
            coalesce_gap=coalesce_gap,
            readahead=readahead,
        )

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        fs: SimulatedPFS,
        root: str,
        variable: str = "var",
        **executor_options,
    ) -> "MLOCStore":
        """Open the variable stored under ``root/variable``.

        The metadata file is read once here (the store keeps it in
        memory for its lifetime, as any long-running analysis service
        would); per-query index/data reads are charged to each query.
        """
        var_root = f"{root.rstrip('/')}/{variable}"
        meta_path = f"{var_root}/meta"
        raw = bytes(fs.session().open(meta_path).read_all())
        meta = StoreMeta.from_bytes(raw)
        return cls(fs, var_root, meta, **executor_options)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.meta.shape

    @property
    def n_elements(self) -> int:
        return self.grid.n_elements

    @property
    def variable(self) -> str:
        return self.meta.variable

    @property
    def hbi(self) -> HBIndex:
        """The hierarchical bitmap index, loaded or built on first use.

        Prefers the ``hbi`` file persisted at write time (read through
        an uncharged session, like the metadata at open); stores
        written before the file existed fall back to building it from
        the flat position index — both paths yield identical bytes.
        """
        if self._hbi is None:
            path = hbi_path(self.root)
            if self.fs.exists(path):
                raw = bytes(self.fs.session().open(path).read_all())
                self._hbi = HBIndex.from_bytes(raw)
            else:
                self._hbi = build_from_store(self)
        return self._hbi

    @property
    def peb(self) -> ErrorBoundsTable:
        """The per-chunk PLoD error-bounds table, loaded or rebuilt.

        Prefers the ``peb`` record persisted at write time (read
        through an uncharged session, like the metadata at open);
        stores written before the record existed fall back to
        rebuilding it from the stored byte planes — both paths yield
        identical bytes (``tests/test_peb_record.py``).  Raises
        ``ValueError`` on non-PLoD layouts.
        """
        if self._peb is None:
            path = peb_path(self.root)
            if self.fs.exists(path):
                raw = bytes(self.fs.session().open(path).read_all())
                self._peb = ErrorBoundsTable.from_bytes(raw)
            else:
                self._peb = peb_bounds.build_from_store(self)
        return self._peb

    def with_ranks(self, n_ranks: int) -> "MLOCStore":
        """A view of the same store using a different rank count."""
        clone = MLOCStore(
            self.fs,
            self.root,
            self.meta,
            n_ranks=n_ranks,
            scheduler=self.executor.scheduler,
            comm_cost=self.executor.comm_cost,
            backend=self.executor.backend,
            n_threads=self.executor.n_threads,
            cache=self.cache,
            plan_cache=self.plan_cache_size,
            context=self.context,
            max_read_retries=self.executor.max_read_retries,
            read_backoff=self.executor.read_backoff,
            allow_partial=self.executor.allow_partial,
            coalesce_gap=self.executor.coalesce_gap,
            readahead=self.executor.readahead,
            use_hbi=self.use_hbi,
            tol=self.default_tol,
            tol_metric=self.default_tol_metric,
            generation=self.generation,
        )
        clone._hbi = self._hbi
        clone._peb = self._peb
        return clone

    @property
    def quarantined_blocks(self) -> dict[tuple[str, int], str]:
        """Blocks the read path quarantined, as (path, offset) -> reason.

        A block lands here after a verified read exhausts its retries
        (persistent CRC mismatch, torn read, or repeated transient
        errors); it stays quarantined for this store handle's lifetime
        and is answered by the degradation policy instead of re-read.
        """
        return dict(self.executor.quarantine)

    @property
    def _primary_executor(self):
        """The executor that answers estimate/config questions — the
        common surface the sharded store mirrors with its first shard."""
        return self.executor

    def new_fetcher(self, shared: bool = False):
        """A block fetcher for one query (``shared=True``: a session/batch)."""
        return self.executor.new_fetcher(shared=shared)

    # ------------------------------------------------------------------
    def _plan(self, query: Query) -> tuple[QueryPlan, dict[str, int]]:
        """Plan through the context, reporting per-query cache counters.

        Planning is deterministic, so serving a cached plan can never
        change results — only skip the plan-phase work (DESIGN.md §6).
        """
        cache = self.context.cache
        if cache is None:
            return self.context.plan(query), {
                "plan_cache_hits": 0,
                "plan_cache_misses": 0,
                "chunks_pruned": 0,
                "bins_pruned": 0,
            }
        hits_before = cache.hits
        plan = self.context.plan(query)
        hit = cache.hits > hits_before
        return plan, {
            "plan_cache_hits": int(hit),
            "plan_cache_misses": int(not hit),
            "chunks_pruned": 0,
            "bins_pruned": 0,
        }

    def plan(self, query: Query) -> tuple[QueryPlan, dict[str, int]]:
        """Plan ``query``, returning the plan and its cache counters.

        Public planning entry for front-ends that separate admission
        from execution (the broker layer plans at admission to cost a
        request, then executes the same plan later via the ``planned``
        argument of :meth:`query`).
        """
        return self._plan(query)

    def estimated_raw_bytes(self, query: Query, plan: QueryPlan) -> int:
        """Estimated raw decode bytes of a planned query (admission cost).

        For error-bounded queries the estimate reflects the per-chunk
        levels the bounds table selects, so broker admission costing
        sees the bytes a ``tol`` query will actually demand.
        """
        return self.executor.estimated_raw_bytes(
            query, plan, chunk_levels=self.resolve_levels(query)
        )

    # ------------------------------------------------------------------
    def _tol_params(self, query: Query) -> tuple[float, str] | None:
        """The effective (tol, metric) of a query, or ``None``.

        A query's own ``tol`` wins; otherwise the handle-level default
        applies (with its metric).  ``tol=0`` resolves to ``None``: it
        demands full precision, which is exactly the tol-less path —
        results *and* stats stay bit-identical.
        """
        if query.tol is not None:
            tol, metric = query.tol, query.tol_metric
        elif self.default_tol is not None:
            tol, metric = self.default_tol, self.default_tol_metric
        else:
            return None
        if tol == 0:
            return None
        return tol, metric

    def resolve_levels(self, query: Query) -> np.ndarray | None:
        """Per-chunk PLoD levels meeting the query's error bound.

        Returns a per-curve-position ``int64`` array of the minimal
        level whose recorded bound is ``<= tol`` for every chunk, or
        ``None`` when the query carries no (effective) tol.  Raises
        ``ValueError`` on non-PLoD layouts and when ``query.plod_level``
        caps the plan below the level ``tol`` requires — the engine
        never claims an accuracy it cannot prove from stored bounds.
        """
        params = self._tol_params(query)
        if params is None:
            return None
        tol, metric = params
        if not self.meta.config.plod_enabled:
            raise ValueError(
                "tol requires a PLoD layout (level order containing 'M'); "
                f"this store uses {self.meta.config.level_order!r}"
            )
        levels = self.peb.min_level_for(tol, metric)
        deepest = int(levels.max()) if levels.size else 1
        if deepest > query.plod_level:
            raise ValueError(
                f"tol={tol} ({metric}) needs PLoD level {deepest} on some "
                f"chunks, but the query caps plod_level at {query.plod_level}"
            )
        return levels

    def execute_planned(
        self,
        query: Query,
        plan: QueryPlan,
        *,
        position_filter: Bitmap | None = None,
        fetcher=None,
        chunk_levels: np.ndarray | None = None,
    ) -> QueryResult:
        """Execute an already-planned query on this store's engine.

        The refinement session drives its steps through this entry so
        flat and sharded stores expose one execution surface.
        """
        return self.executor.execute(
            query,
            plan,
            position_filter=position_filter,
            fetcher=fetcher,
            chunk_levels=chunk_levels,
        )

    def _stamp_tol_stats(
        self,
        query: Query,
        plan: QueryPlan,
        levels: np.ndarray,
        result: QueryResult,
        *,
        enforce: bool = True,
    ) -> None:
        stamp_tol_stats(self, query, plan, levels, result, enforce=enforce)

    def query(
        self,
        query: Query,
        position_filter: Bitmap | None = None,
        *,
        fetcher=None,
        planned: tuple[QueryPlan, dict[str, int]] | None = None,
        chunk_subset: np.ndarray | None = None,
    ) -> QueryResult:
        """Plan and execute one access request.

        ``fetcher`` optionally shares a block fetcher with other
        queries (batch/broker dedup: a block already decoded for an
        earlier sharer is never decoded again); ``planned`` supplies a
        plan obtained earlier from :meth:`plan`.  Neither changes the
        result — only what work is re-done.

        ``chunk_subset`` restricts the plan to the given chunk ids
        (compound-query pushdown: the running intersection's surviving
        chunks); with ``use_hbi`` a value-constrained plan is
        additionally pruned through the hierarchical index.  Both only
        drop chunks proven to contribute nothing, so results stay
        bit-identical to the unpruned plan.
        """
        prune = self.use_hbi and query.value_range is not None
        plan, plan_stats = self._plan(query) if planned is None else planned
        if chunk_subset is not None or prune:
            # Cached plans are shared and must not change; narrowing
            # only rebinds the chunk/bin-axis fields, so a shallow copy
            # keeps the cache's arrays intact while this query prunes.
            plan = copy.copy(plan)
            plan_stats = dict(plan_stats)
            pruned = 0
            if chunk_subset is not None:
                pruned += plan.narrow(np.isin(plan.chunk_ids, chunk_subset))
            if prune:
                pruned += self.context.prune_plan(plan, self.hbi)
            plan_stats["chunks_pruned"] = pruned
        levels = self.resolve_levels(query)
        result = self.executor.execute(
            query,
            plan,
            position_filter=position_filter,
            fetcher=fetcher,
            chunk_levels=levels,
        )
        result.stats.update(plan_stats)
        if levels is not None:
            self._stamp_tol_stats(query, plan, levels, result)
        return result

    def query_many(self, queries: list[Query]) -> BatchResult:
        """Plan and execute a batch of queries as one pipeline.

        All queries are planned up front, then executed through one
        shared block fetcher: a compression block covered by several
        queries of the batch is read and decoded exactly once (the
        first query in submission order pays its simulated I/O and
        modeled decode seconds; later queries record cache hits), even
        when the store has no persistent :class:`BlockCache`.  With a
        cache, the batch additionally warms — and benefits from — the
        cross-batch LRU.

        Returns per-query results (each with its own component times
        and counters) plus the batch aggregate.
        """
        planned = [self._plan(q) for q in queries]
        fetcher = self.executor.new_fetcher(shared=True)
        results = []
        for q, (plan, plan_stats) in zip(queries, planned):
            levels = self.resolve_levels(q)
            result = self.executor.execute(
                q, plan, fetcher=fetcher, chunk_levels=levels
            )
            result.stats.update(plan_stats)
            if levels is not None:
                self._stamp_tol_stats(q, plan, levels, result)
            results.append(result)
        times = ComponentTimes()
        for r in results:
            times = times + r.times
        stats = aggregate_stats(r.stats for r in results)
        stats["n_queries"] = len(results)
        stats["quarantined_blocks"] = len(self.executor.quarantine)
        if self.cache is not None:
            stats["cache"] = self.cache.stats.as_dict()
        return BatchResult(results=results, times=times, stats=stats)

    def open_session(self, query: Query) -> RefinementSession:
        """Open a progressive refinement session on ``query``.

        The initial step executes immediately at ``query.plod_level``;
        subsequent :meth:`RefinementSession.refine` calls fetch only the
        byte-plane blocks the session does not already hold.
        """
        return RefinementSession(self, query)

    def runtime_stats(self) -> dict:
        """Open-state counters of this store handle (``mloc stats``).

        Unlike per-query ``QueryResult.stats`` these describe the
        *current* state of the handle's long-lived structures: the plan
        cache, the decoded-block cache, and the quarantine registry.
        """
        out: dict = {
            "n_ranks": self.executor.n_ranks,
            "backend": self.executor.backend,
            "coalesce_gap": self.executor.coalesce_gap,
            "readahead": self.executor.readahead,
        }
        plan_cache = self.context.cache
        if plan_cache is not None:
            out["plan_cache"] = {
                "hits": plan_cache.hits,
                "misses": plan_cache.misses,
                "size": len(plan_cache),
                "capacity": self.plan_cache_size,
            }
        if self.cache is not None:
            cache_stats = self.cache.stats.as_dict()
            cache_stats["pinned_blocks"] = len(self.cache.pinned_keys())
            out["block_cache"] = cache_stats
        out["quarantine"] = {
            f"{path}@{offset}": reason
            for (path, offset), reason in sorted(self.executor.quarantine.items())
        }
        return out

    def fetch_positions(
        self,
        bitmap: Bitmap,
        *,
        region: tuple[tuple[int, int], ...] | None = None,
        plod_level: int | None = None,
    ) -> QueryResult:
        """Retrieve values at the positions set in ``bitmap``.

        The second step of multi-variable access (Section III-D4): the
        bitmap produced by a region-only step on another variable masks
        the value retrieval on this one.  Only chunks containing set
        positions are visited.
        """
        if bitmap.nbits != self.n_elements:
            raise ValueError(
                f"bitmap covers {bitmap.nbits} positions, store has {self.n_elements}"
            )
        positions = bitmap.to_positions()
        query = Query(
            region=region,
            output="values",
            plod_level=plod_level if plod_level is not None else 7,
        )
        # Uncached on purpose: the plan is narrowed in place below, and
        # cached plans are shared between queries.
        plan = self.context.plan_uncached(query)
        bins_pruned = 0
        if positions.size:
            hit_chunks = np.unique(self.grid.chunk_of_positions(positions))
            plan.narrow(np.isin(plan.chunk_ids, hit_chunks))
            if self.use_hbi:
                # AND-pushdown over the bin axis: the plan spans every
                # bin (no value constraint), but the mask's values live
                # only in bins whose leaves intersect it — proven by a
                # group-domain AND, so dropping the rest reads fewer
                # blocks without changing a result byte.
                touched = self.hbi.bins_intersecting(
                    positions, self.grid, self.curve
                )
                bins_pruned = plan.narrow_bins(touched[plan.bin_ids])
        else:
            plan.narrow(np.zeros(plan.cpos.size, dtype=bool))
        result = self.executor.execute(query, plan, position_filter=bitmap)
        result.stats.setdefault("chunks_pruned", 0)
        result.stats["bins_pruned"] = bins_pruned
        return result

    # ------------------------------------------------------------------
    def storage_report(self) -> StorageReport:
        """On-disk footprint of this variable (Table I accounting)."""
        return StorageReport(
            data_bytes=self.files.data_bytes(self.fs),
            index_bytes=self.files.index_bytes(self.fs),
            meta_bytes=self.fs.size(self.files.meta_path),
        )
