"""The broker's continuous fetch-merge loop.

:meth:`~repro.core.store.MLOCStore.query_many` already proves the core
mechanism: several queries sharing one
:class:`~repro.core.engine.scheduler._BlockFetcher` never decode the
same compression block twice — the first requester in plan order pays
the simulated I/O and modeled decode seconds, later requesters record
dedup hits.  Sharing a fetcher can never change results, only skip
work (the batch/session bit-identity tests pin this).

This module generalizes that from *one batch* to *a service loop*:
the :class:`FetchMergeLoop` owns a single shared fetcher that stays
alive across scheduling rounds, so overlapping block demand from
**different tenants** coalesces exactly like overlapping queries in a
batch.  The loop's lifecycle rule implements the serving invariant of
DESIGN.md §8:

    **the broker never decodes a block twice while any waiter
    exists** — decoded jobs are retained in the shared fetcher until
    the broker tells the loop the waiter set is empty, at which point
    :meth:`end_round` releases them (the persistent
    :class:`~repro.pfs.blockcache.BlockCache`, when configured, keeps
    serving the hot subset after release).

Per-execute cache-insertion attribution (``inserted`` below) is what
lets the broker charge tenant cache quotas: every key the fetcher
inserted into the persistent LRU during a query is handed back to the
caller, who knows which tenant triggered it.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.result import QueryResult

__all__ = ["FetchMergeLoop"]


def _executor_of(store):
    """The executor owning the fetcher factory (flat or sharded store).

    A sharded store's shards share one cache and one generation, and
    shard bin ranges are disjoint, so the first shard's executor can
    mint the fetcher shared by the whole scatter.
    """
    shards = getattr(store, "shards", None)
    return shards[0].executor if shards is not None else store.executor


class FetchMergeLoop:
    """One shared fetcher, alive across broker scheduling rounds."""

    def __init__(self, store) -> None:
        self.store = store
        self.executor = _executor_of(store)
        self.cache = self.executor.cache
        self.fetcher = self.executor.new_fetcher(shared=True)
        #: Completed scheduling rounds.
        self.rounds = 0
        #: Decoded jobs released at round boundaries (lifetime total).
        self.released_jobs = 0

    # ------------------------------------------------------------------
    def retained_jobs(self) -> int:
        """Decoded blocks currently retained for in-flight waiters."""
        return len(self.fetcher._jobs)

    def execute(
        self,
        query: Query,
        planned,
        position_filter=None,
    ) -> tuple[QueryResult, list[tuple]]:
        """Run one admitted query through the shared fetcher.

        Returns ``(result, inserted)`` where ``inserted`` is the list
        of persistent-cache keys this execution inserted — the
        attribution record for the submitting tenant's cache quota.
        """
        mark = len(self.fetcher.inserted_keys)
        result = self.store.query(
            query, position_filter, fetcher=self.fetcher, planned=planned
        )
        inserted = list(self.fetcher.inserted_keys[mark:])
        return result, inserted

    def end_round(self, *, release: bool) -> int:
        """Close a scheduling round.

        ``release=False`` keeps every decoded job retained (waiters
        remain queued: the §8 invariant forbids re-decoding for them).
        ``release=True`` drops the retained jobs — the queue has
        drained, so nothing can claim a dedup hit on them anymore and
        holding decoded payloads would only duplicate the LRU.
        Returns the number of jobs released.
        """
        self.rounds += 1
        if not release:
            return 0
        dropped = self.fetcher.release_retained()
        self.released_jobs += dropped
        return dropped
