"""Traffic replay for the broker on the simulated clock.

The store's component times are modeled/simulated seconds (DESIGN.md
§5), so serving latency can be replayed deterministically without
wall-clock sleeps: the driver keeps a simulated clock, admits events
whose arrival time has passed, lets the :class:`~.broker.BrokerCore`
pick a round, and advances the clock by each served query's component
total (the broker services a round's queries back to back).  A
request's **latency** is its completion time minus its *original*
arrival time — queueing delay, admission retries, and service all
included.

Two arrival models, matching the usual load-testing split:

* **open loop** (:func:`replay_open_loop`) — arrivals are fixed in
  advance (seeded Poisson via :func:`poisson_arrivals`); load does
  not slow down when the broker does, so queueing delay shows up in
  the tail percentiles.
* **closed loop** (:func:`replay_closed_loop`) — each tenant keeps
  one request outstanding and submits its next query ``think_time``
  after the previous completion, so throughput adapts to service
  capacity.

Admission rejections are retried after ``retry_backoff`` simulated
seconds (counted in the report); quota rejections are permanent by
construction (the budget never recovers) and drop the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query import Query
from repro.server.broker import BrokerCore, BrokerRejected, QuotaExceededError

__all__ = [
    "ReplayEvent",
    "ReplayReport",
    "poisson_arrivals",
    "open_loop_events",
    "replay_open_loop",
    "replay_closed_loop",
]


@dataclass(frozen=True)
class ReplayEvent:
    """One trace entry: ``tenant`` submits ``query`` at ``arrival``."""

    tenant: str
    query: Query
    arrival: float


@dataclass
class ReplayReport:
    """Outcome of one replay: per-request samples plus broker totals."""

    mode: str
    #: ``(tenant, arrival, completion)`` per served request.
    samples: list = field(default_factory=list)
    #: Admission rejections that were retried.
    rejected: int = 0
    #: Events dropped permanently (quota, or unadmittable).
    dropped: int = 0
    #: Simulated makespan.
    clock: float = 0.0
    #: ``BrokerCore.stats()`` snapshot at the end of the replay.
    broker: dict = field(default_factory=dict)

    def latencies(self) -> np.ndarray:
        return np.array(
            [completion - arrival for _, arrival, completion in self.samples]
        )

    def percentile(self, p: float) -> float:
        lat = self.latencies()
        return float(np.percentile(lat, p)) if lat.size else 0.0

    def as_dict(self) -> dict:
        lat = self.latencies()
        totals = self.broker.get("totals", {})
        return {
            "mode": self.mode,
            "n_requests": len(self.samples),
            "rejected_retries": self.rejected,
            "dropped": self.dropped,
            "makespan_s": self.clock,
            "latency_p50_s": self.percentile(50.0),
            "latency_p99_s": self.percentile(99.0),
            "latency_mean_s": float(lat.mean()) if lat.size else 0.0,
            "dedup_rate": self.broker.get("dedup_rate", 0.0),
            "dedup_blocks": totals.get("dedup_blocks", 0),
            "blocks_decoded": totals.get("blocks_decoded", 0),
            "cache_hits": totals.get("cache_hits", 0),
            "bytes_read": totals.get("bytes_read", 0),
            "rounds": self.broker.get("rounds", 0),
        }


# ----------------------------------------------------------------------
def poisson_arrivals(n: int, rate: float, seed: int = 0) -> np.ndarray:
    """``n`` arrival times of a Poisson process with ``rate`` events/s."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def open_loop_events(
    tenant_queries: dict[str, list[Query]],
    rate: float,
    seed: int = 0,
) -> list[ReplayEvent]:
    """Seeded Poisson trace: each tenant arrives at ``rate`` queries/s."""
    events: list[ReplayEvent] = []
    for i, (tenant, queries) in enumerate(sorted(tenant_queries.items())):
        arrivals = poisson_arrivals(len(queries), rate, seed=seed + i)
        events.extend(
            ReplayEvent(tenant, q, float(t)) for q, t in zip(queries, arrivals)
        )
    events.sort(key=lambda e: e.arrival)
    return events


# ----------------------------------------------------------------------
def _serve_round(core: BrokerCore, clock: float, report: ReplayReport, arrivals) -> float:
    """Run one scheduling round, advancing the simulated clock."""
    for req in core.select_round():
        if req.status != "queued":
            continue
        result = core.execute(req)
        clock += result.times.total
        req.completed_at = clock
        report.samples.append((req.tenant, arrivals[req.ticket], clock))
    core.finish_round()
    return clock


def replay_open_loop(
    core: BrokerCore,
    events: list[ReplayEvent],
    *,
    retry_backoff: float = 0.001,
) -> ReplayReport:
    """Replay a fixed arrival trace through the broker."""
    report = ReplayReport(mode="open")
    trace = sorted(events, key=lambda e: e.arrival)
    #: (eligible_time, original_arrival, event) for admission retries.
    retries: list[tuple[float, float, ReplayEvent]] = []
    arrivals: dict[int, float] = {}
    clock = 0.0
    i = 0
    while i < len(trace) or retries or core.pending():
        if not core.pending():
            # Idle: jump the clock to the next thing that can happen.
            upcoming = [e[0] for e in retries]
            if i < len(trace):
                upcoming.append(trace[i].arrival)
            if upcoming:
                clock = max(clock, min(upcoming))
        due: list[tuple[float, ReplayEvent]] = [
            (orig, e) for (elig, orig, e) in retries if elig <= clock
        ]
        retries = [r for r in retries if r[0] > clock]
        while i < len(trace) and trace[i].arrival <= clock:
            due.append((trace[i].arrival, trace[i]))
            i += 1
        for orig, event in due:
            try:
                req = core.submit(event.tenant, event.query)
            except QuotaExceededError:
                report.dropped += 1
            except BrokerRejected:
                report.rejected += 1
                if core.pending():
                    retries.append((clock + retry_backoff, orig, event))
                else:
                    # Nothing in flight can free capacity: unadmittable.
                    report.dropped += 1
            else:
                arrivals[req.ticket] = orig
        if core.pending():
            clock = _serve_round(core, clock, report, arrivals)
    report.clock = clock
    report.broker = core.stats()
    return report


def replay_closed_loop(
    core: BrokerCore,
    tenant_queries: dict[str, list[Query]],
    *,
    think_time: float = 0.0,
) -> ReplayReport:
    """Closed-loop replay: one outstanding request per tenant.

    Each tenant submits query ``k+1`` exactly ``think_time`` simulated
    seconds after query ``k`` completes; the first query of every
    tenant arrives at time zero.  Throughput self-regulates, so this
    mode measures service latency under sustainable load.
    """
    report = ReplayReport(mode="closed")
    streams = {t: list(qs) for t, qs in sorted(tenant_queries.items()) if qs}
    next_at = {t: 0.0 for t in streams}
    next_idx = {t: 0 for t in streams}
    outstanding: set[str] = set()
    arrivals: dict[int, float] = {}
    clock = 0.0
    while streams or outstanding:
        for tenant in [
            t for t in streams if t not in outstanding and next_at[t] <= clock
        ]:
            query = streams[tenant][next_idx[tenant]]
            try:
                req = core.submit(tenant, query)
            except QuotaExceededError:
                report.dropped += 1
                del streams[tenant]  # the budget never recovers
            except BrokerRejected:
                report.rejected += 1
                next_at[tenant] = clock + 0.001
            else:
                arrivals[req.ticket] = next_at[tenant]
                outstanding.add(tenant)
        if core.pending():
            served_before = len(report.samples)
            clock = _serve_round(core, clock, report, arrivals)
            for tenant, _, completion in report.samples[served_before:]:
                outstanding.discard(tenant)
                next_at[tenant] = completion + think_time
                next_idx[tenant] += 1
                if next_idx[tenant] >= len(streams[tenant]):
                    del streams[tenant]
        elif streams:
            waiting = min(next_at[t] for t in streams if t not in outstanding)
            clock = max(clock, waiting)
        else:
            break
    report.clock = clock
    report.broker = core.stats()
    return report
