"""Multi-tenant query broker: admission, fair scheduling, shared fetch.

The broker fronts one opened store — flat
:class:`~repro.core.store.MLOCStore` or
:class:`~repro.core.sharded.ShardedMLOCStore`, transparently — and
multiplexes query streams from many *tenants* onto it:

* **Admission control** (:meth:`BrokerCore.submit`): every request is
  planned up front (plans are deterministic and cheap next to
  execution, DESIGN.md §6) and costed with
  :meth:`~repro.core.store.MLOCStore.estimated_raw_bytes`.  A request
  is rejected — never silently dropped — when the broker-wide pending
  raw-byte ceiling, the per-tenant queue depth, or the tenant's byte
  quota would be exceeded.
* **Fair scheduling** (:meth:`BrokerCore.select_round`): deficit
  round-robin over tenants with the estimated raw bytes as the cost
  function, so one tenant's huge scans cannot starve another's point
  lookups: each round every waiting tenant earns ``quantum_bytes`` of
  deficit and dequeues requests while its head fits.
* **Shared fetch-merge** (:class:`.fetchmerge.FetchMergeLoop`): all
  queries of a round — and, while any waiter remains queued, across
  rounds — share one block fetcher, so overlapping block demand from
  different tenants is read and decoded once and fanned out.

Results are **bit-identical** to direct ``store.query`` calls: both
the plan (deterministic) and the shared fetcher (the ``query_many``
precedent) only change what work is *re-done*, never what is
computed.  ``tests/test_broker.py`` pins this per tenant.

Stats flow through the canonical registry
(:data:`~repro.core.result.SUMMED_STAT_KEYS`): per-tenant aggregates
fold every per-query counter plus the broker lifecycle counters
(``admitted``/``rejected``/``queued``/``completed``/``cancelled``/
``quota_rejections``/``quota_evictions``) with
:func:`~repro.core.result.aggregate_stats`, and broker totals fold the
tenant dicts through the same function.

Synchronous core, async façade: :class:`BrokerCore` is deterministic
and drives both the traffic-replay benchmark (simulated clock) and
:class:`QueryBroker`, the asyncio front end whose serve task yields
between queries so a tenant can cancel mid-round.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.core.query import Query
from repro.core.result import QueryResult, aggregate_stats
from repro.server.fetchmerge import FetchMergeLoop

__all__ = [
    "BrokerConfig",
    "TenantQuota",
    "BrokerRejected",
    "QuotaExceededError",
    "Request",
    "BrokerCore",
    "QueryBroker",
]


class BrokerRejected(RuntimeError):
    """Admission control refused the request (retry later)."""


class QuotaExceededError(BrokerRejected):
    """The tenant's byte quota cannot cover the request."""


@dataclass(frozen=True)
class BrokerConfig:
    """Broker-wide admission and scheduling knobs."""

    #: Queries served per scheduling round (in-flight ceiling).
    max_inflight: int = 8
    #: Ceiling on the summed estimated raw bytes of all queued
    #: requests; ``None`` disables the broker-wide backlog bound.
    max_pending_bytes: int | None = None
    #: Per-tenant queue-depth ceiling (``None`` = unbounded).
    max_queued_per_tenant: int | None = None
    #: Deficit-round-robin quantum: raw bytes of service credit each
    #: waiting tenant earns per round.
    quantum_bytes: int = 4 << 20

    def __post_init__(self) -> None:
        if self.max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {self.max_inflight}")
        if self.quantum_bytes <= 0:
            raise ValueError(f"quantum_bytes must be positive, got {self.quantum_bytes}")


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits (all optional)."""

    #: Lifetime raw-byte budget, in the planner's estimated raw bytes
    #: (the same unit admission and DRR costing use, so the check is
    #: deterministic and cache-independent).  A submit whose estimate
    #: would overrun the remaining budget raises
    #: :class:`QuotaExceededError`; completed requests charge their
    #: estimate.
    max_bytes: int | None = None
    #: Ceiling on this tenant's resident decoded bytes in the shared
    #: persistent cache; overrun evicts the tenant's oldest insertions
    #: (counted as ``quota_evictions``), never other tenants' blocks.
    max_cache_bytes: int | None = None


_LIFECYCLE_KEYS = (
    "admitted",
    "rejected",
    "queued",
    "completed",
    "cancelled",
    "quota_rejections",
    "quota_evictions",
)


@dataclass
class Request:
    """One admitted (or rejected) tenant query, with its lifecycle."""

    ticket: int
    tenant: str
    query: Query
    plan: object
    plan_stats: dict
    est_bytes: int
    status: str = "queued"  # queued | done | cancelled | failed
    result: QueryResult | None = None
    error: BaseException | None = None
    #: Simulated completion time, stamped by the replay driver.
    completed_at: float | None = None


@dataclass
class _Tenant:
    """Broker-side state of one tenant."""

    name: str
    quota: TenantQuota = field(default_factory=TenantQuota)
    queue: deque = field(default_factory=deque)
    deficit: float = 0.0
    charged_bytes: int = 0
    #: Persistent-cache keys this tenant's queries inserted, oldest
    #: first (the cache-quota eviction order).
    cache_keys: "OrderedDict[tuple, None]" = field(default_factory=OrderedDict)
    lifecycle: dict = field(
        default_factory=lambda: {k: 0 for k in _LIFECYCLE_KEYS}
    )
    #: Running aggregate of completed-query stats (registry keys).
    agg: dict = field(default_factory=dict)


class BrokerCore:
    """Deterministic, synchronous broker engine.

    Drives the simulated-clock replay benchmark directly and backs
    the :class:`QueryBroker` asyncio façade.  All methods must be
    called from one thread (the serve loop / the replay driver).
    """

    def __init__(
        self,
        store,
        config: BrokerConfig | None = None,
        tenants: dict[str, TenantQuota] | None = None,
    ) -> None:
        self.store = store
        self.config = config or BrokerConfig()
        self.loop = FetchMergeLoop(store)
        self._tenants: "OrderedDict[str, _Tenant]" = OrderedDict()
        for name, quota in (tenants or {}).items():
            self.register(name, quota)
        #: Round-robin resume point: the tenant after the last one
        #: served starts the next round's deficit scan.
        self._rr_next = 0
        self._pending_bytes = 0
        self._next_ticket = 0

    # ------------------------------------------------------------------
    def register(self, name: str, quota: TenantQuota | None = None) -> None:
        """Declare a tenant (idempotent; submit auto-registers)."""
        if name not in self._tenants:
            self._tenants[name] = _Tenant(name, quota or TenantQuota())
        elif quota is not None:
            self._tenants[name].quota = quota

    def _tenant(self, name: str) -> _Tenant:
        if name not in self._tenants:
            self.register(name)
        return self._tenants[name]

    # ------------------------------------------------------------------
    def submit(self, tenant: str, query: Query) -> Request:
        """Plan, cost, and admit one request (or raise).

        Planning happens here — at admission — so the scheduler has a
        real cost for the deficit accounting and admission can bound
        the backlog in raw bytes rather than request counts.
        """
        t = self._tenant(tenant)
        plan, plan_stats = self.store.plan(query)
        est = self.store.estimated_raw_bytes(query, plan)
        quota = t.quota
        if quota.max_bytes is not None and t.charged_bytes + est > quota.max_bytes:
            t.lifecycle["rejected"] += 1
            t.lifecycle["quota_rejections"] += 1
            raise QuotaExceededError(
                f"tenant {tenant!r}: estimated {est} raw bytes would exceed "
                f"quota ({t.charged_bytes}/{quota.max_bytes} used)"
            )
        cap = self.config.max_queued_per_tenant
        if cap is not None and len(t.queue) >= cap:
            t.lifecycle["rejected"] += 1
            raise BrokerRejected(
                f"tenant {tenant!r}: queue depth {len(t.queue)} at limit {cap}"
            )
        ceiling = self.config.max_pending_bytes
        if ceiling is not None and self._pending_bytes + est > ceiling:
            t.lifecycle["rejected"] += 1
            raise BrokerRejected(
                f"broker backlog full: {self._pending_bytes} + {est} pending "
                f"raw bytes exceeds {ceiling}"
            )
        req = Request(
            ticket=self._next_ticket,
            tenant=tenant,
            query=query,
            plan=plan,
            plan_stats=plan_stats,
            est_bytes=est,
        )
        self._next_ticket += 1
        t.queue.append(req)
        t.lifecycle["admitted"] += 1
        t.lifecycle["queued"] += 1
        self._pending_bytes += est
        return req

    def cancel(self, req: Request) -> bool:
        """Withdraw a still-queued request; no-op once served."""
        if req.status != "queued":
            return False
        t = self._tenant(req.tenant)
        try:
            t.queue.remove(req)
        except ValueError:
            return False
        req.status = "cancelled"
        t.lifecycle["cancelled"] += 1
        self._pending_bytes -= req.est_bytes
        return True

    def pending(self) -> int:
        """Requests admitted but not yet served."""
        return sum(len(t.queue) for t in self._tenants.values())

    def pending_bytes(self) -> int:
        """Summed estimated raw bytes of the backlog."""
        return self._pending_bytes

    # ------------------------------------------------------------------
    def select_round(self) -> list[Request]:
        """Deficit-round-robin: pick the next round's service order.

        Every tenant with queued work earns ``quantum_bytes`` of
        deficit, then dequeues from its head while the head's
        estimated cost fits the deficit — so cheap interactive streams
        drain every round while a tenant issuing giant scans gets one
        every few rounds, in proportion to bytes, not request count.
        An idle tenant's deficit resets (classic DRR: credit does not
        accrue while there is nothing to schedule), and an expensive
        head always runs eventually because an active tenant's deficit
        grows every round.  The rotation resumes after the last tenant
        scanned first, so tenant order carries no permanent advantage.
        """
        names = list(self._tenants)
        selected: list[Request] = []
        if not names:
            return selected
        n = len(names)
        start = self._rr_next % n
        for i in range(n):
            if len(selected) >= self.config.max_inflight:
                break
            t = self._tenants[names[(start + i) % n]]
            if not t.queue:
                t.deficit = 0.0
                continue
            t.deficit += self.config.quantum_bytes
            while (
                t.queue
                and len(selected) < self.config.max_inflight
                and t.queue[0].est_bytes <= t.deficit
            ):
                req = t.queue.popleft()
                t.deficit -= req.est_bytes
                selected.append(req)
            if not t.queue:
                t.deficit = 0.0
            self._rr_next = (start + i + 1) % n
        return selected

    # ------------------------------------------------------------------
    def execute(self, req: Request) -> QueryResult:
        """Serve one selected request through the shared fetcher."""
        if req.status != "queued":
            raise RuntimeError(
                f"request {req.ticket} is {req.status!r}, not executable"
            )
        t = self._tenant(req.tenant)
        try:
            result, inserted = self.loop.execute(
                req.query, (req.plan, req.plan_stats)
            )
        except Exception as exc:
            req.status = "failed"
            req.error = exc
            self._pending_bytes -= req.est_bytes
            raise
        req.status = "done"
        req.result = result
        self._pending_bytes -= req.est_bytes
        t.lifecycle["completed"] += 1
        t.charged_bytes += req.est_bytes
        for key in inserted:
            t.cache_keys[key] = None
        self._enforce_cache_quota(t)
        t.agg = aggregate_stats([t.agg, result.stats])
        return result

    def skip(self, req: Request) -> None:
        """Drop a selected-but-cancelled request without serving it."""
        if req.status != "queued":
            return
        req.status = "cancelled"
        t = self._tenant(req.tenant)
        t.lifecycle["cancelled"] += 1
        self._pending_bytes -= req.est_bytes

    def _enforce_cache_quota(self, t: _Tenant) -> None:
        """Evict the tenant's oldest cache insertions past its quota.

        Only entries *this tenant* inserted are candidates; pinned
        entries survive (``BlockCache.drop`` refuses them) and entries
        the LRU already evicted just fall out of the attribution map.
        """
        limit = t.quota.max_cache_bytes
        cache = self.loop.cache
        if limit is None or cache is None:
            return
        sizes: dict[tuple, int] = {}
        for key in list(t.cache_keys):
            nbytes = cache.entry_nbytes(key)
            if nbytes is None:
                del t.cache_keys[key]  # evicted by the LRU meanwhile
            else:
                sizes[key] = nbytes
        resident = sum(sizes.values())
        for key in list(t.cache_keys):
            if resident <= limit:
                break
            if cache.drop(key):
                t.lifecycle["quota_evictions"] += 1
            resident -= sizes[key]
            del t.cache_keys[key]

    # ------------------------------------------------------------------
    def finish_round(self) -> int:
        """Close the round; release retained decodes iff no waiter is left.

        This is the enforcement point of the DESIGN.md §8 invariant:
        decoded jobs stay retained in the shared fetcher for as long
        as any admitted request remains queued, so no block is ever
        decoded twice while a waiter exists.  Only when the backlog is
        empty are the retained jobs dropped (the persistent LRU keeps
        the hot subset).
        """
        return self.loop.end_round(release=self.pending() == 0)

    def run_round(self) -> list[Request]:
        """Convenience: select, serve, and close one round."""
        batch = self.select_round()
        for req in batch:
            if req.status == "queued":
                self.execute(req)
        self.finish_round()
        return batch

    def drain(self) -> int:
        """Serve rounds until the backlog is empty; returns rounds run."""
        rounds = 0
        while self.pending():
            self.run_round()
            rounds += 1
        return rounds

    # ------------------------------------------------------------------
    def tenant_stats(self, name: str) -> dict:
        """One tenant's aggregate: registry counters + lifecycle."""
        t = self._tenant(name)
        out = aggregate_stats([t.agg])  # normalize: every key present
        for key, value in t.lifecycle.items():
            out[key] = value  # lifecycle counters are broker-owned
        out["charged_bytes"] = t.charged_bytes
        out["queue_depth"] = len(t.queue)
        return out

    def stats(self) -> dict:
        """Broker snapshot: totals folded from the per-tenant dicts.

        Totals go through :func:`aggregate_stats` — the same registry
        every other aggregator uses — so broker counters line up with
        CLI and harness reporting without bespoke summation.
        """
        tenants = {name: self.tenant_stats(name) for name in self._tenants}
        totals = aggregate_stats(list(tenants.values()))
        dedup_rate = 0.0
        requested = totals["dedup_blocks"] + totals["blocks_decoded"] + totals["cache_hits"]
        if requested:
            dedup_rate = totals["dedup_blocks"] / requested
        return {
            "tenants": tenants,
            "totals": totals,
            "n_tenants": len(self._tenants),
            "rounds": self.loop.rounds,
            "retained_jobs": self.loop.retained_jobs(),
            "released_jobs": self.loop.released_jobs,
            "pending": self.pending(),
            "pending_bytes": self._pending_bytes,
            "dedup_rate": dedup_rate,
        }


class QueryBroker:
    """Asyncio façade over :class:`BrokerCore`.

    One serve task owns the core; tenants submit concurrently and
    await futures.  The serve loop yields to the event loop between
    queries of a round, so a tenant cancelling its future mid-round
    takes effect before its request is served (the core then skips
    it).  Use as an async context manager::

        async with QueryBroker(store) as broker:
            result = await broker.query("tenant-a", q)
    """

    def __init__(
        self,
        store,
        config: BrokerConfig | None = None,
        tenants: dict[str, TenantQuota] | None = None,
    ) -> None:
        self.core = BrokerCore(store, config, tenants)
        self._wake: asyncio.Event | None = None
        self._serve_task: asyncio.Task | None = None
        self._futures: dict[int, asyncio.Future] = {}
        self._closing = False

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "QueryBroker":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        if self._serve_task is not None:
            raise RuntimeError("broker already started")
        self._closing = False
        self._wake = asyncio.Event()
        self._serve_task = asyncio.create_task(self._serve())

    async def close(self) -> None:
        """Drain the backlog, then stop the serve task."""
        if self._serve_task is None:
            return
        self._closing = True
        self._wake.set()
        await self._serve_task
        self._serve_task = None

    # ------------------------------------------------------------------
    def submit(self, tenant: str, query: Query) -> "asyncio.Future[QueryResult]":
        """Admit a query; returns a future (cancel it to withdraw).

        Raises :class:`BrokerRejected` / :class:`QuotaExceededError`
        synchronously — admission is immediate, only service queues.
        """
        if self._serve_task is None or self._closing:
            raise RuntimeError("broker is not serving")
        req = self.core.submit(tenant, query)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[req.ticket] = future
        future.add_done_callback(
            lambda fut, r=req: self._on_future_done(fut, r)
        )
        self._wake.set()
        return future

    async def query(self, tenant: str, query: Query) -> QueryResult:
        """Submit and await one query."""
        return await self.submit(tenant, query)

    def stats(self) -> dict:
        return self.core.stats()

    # ------------------------------------------------------------------
    def _on_future_done(self, future: asyncio.Future, req: Request) -> None:
        if future.cancelled() and not self.core.cancel(req):
            # Already selected for the current round: leave the future
            # registered so the serve loop's pre-execute check sees the
            # cancellation and skips the request (popping there).
            return
        self._futures.pop(req.ticket, None)

    async def _serve(self) -> None:
        core = self.core
        while True:
            if not core.pending():
                if self._closing:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            batch = core.select_round()
            for req in batch:
                # Yield so cancellations queued on the event loop land
                # before this request is served.
                await asyncio.sleep(0)
                future = self._futures.get(req.ticket)
                if future is not None and future.cancelled():
                    core.skip(req)
                    self._futures.pop(req.ticket, None)
                    continue
                if req.status != "queued":  # cancelled via the core
                    continue
                try:
                    result = core.execute(req)
                except Exception as exc:
                    if future is not None and not future.done():
                        future.set_exception(exc)
                    continue
                if future is not None and not future.done():
                    future.set_result(result)
            core.finish_round()
