"""Ingest-aware serving: queries overlapping in-situ appends.

ROADMAP scenario 4(b): a simulation emits timesteps continuously and
analysts start exploring before the run finishes.  This module wires
the manifest append protocol (``repro.core.manifest``) into the
serving layer on the simulated clock:

``IngestSession``
    The staging node: a deterministic schedule of timestep arrivals,
    each sealed through :meth:`~repro.core.dataset.MLOCDataset.append`
    (the ordinary three-stage writer, per-member ``hbi``/``peb`` at
    seal time).  One append occupies the staging node for the modeled
    drain time of the member's *stored* bytes, so seal times — and
    therefore which generation is visible at any simulated instant —
    are a pure function of the schedule.
``IngestBroker``
    A snapshot-pinned front-end: per-member
    :class:`~repro.server.broker.BrokerCore` instances (admission,
    DRR, shared fetch-merge) that only ever admit queries against the
    broker's *pinned* generation.  ``refresh()`` re-pins; a member
    sealed by a later generation does not exist until then
    (:class:`NotYetSealed`).  Because sealed members are immutable the
    per-member cores survive refreshes untouched — no open handle,
    planning table, or cached block is ever invalidated by an append.
``replay_ingest``
    The sim-clock driver joining both timelines: queries are served
    against the newest generation *sealed by their arrival time*; a
    query for a timestep still being appended stalls until its seal
    (``ingest_stall_seconds``).  Appends never wait for queries and
    queries never wait for appends of members they don't ask for —
    the whole point of per-member sealing.

Lifecycle counters (``generations_seen``, ``snapshot_refreshes``,
``ingest_stall_seconds``) live in the canonical stats registry
(:mod:`repro.core.result`), so they fold through
:func:`~repro.core.result.aggregate_stats` like every other counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import DatasetSnapshot, MLOCDataset
from repro.core.manifest import load_manifest_at
from repro.core.query import Query
from repro.core.result import QueryResult, aggregate_stats
from repro.server.broker import BrokerConfig, BrokerCore, BrokerRejected, TenantQuota

__all__ = [
    "AppendRecord",
    "IngestBroker",
    "IngestQueryEvent",
    "IngestReplayReport",
    "IngestSession",
    "NotYetSealed",
    "TimestepArrival",
    "replay_ingest",
]


class NotYetSealed(BrokerRejected):
    """The requested member is not sealed in the pinned generation."""


@dataclass(frozen=True)
class TimestepArrival:
    """One simulation output event: ``data`` is ready at ``time``."""

    time: float
    variable: str
    timestep: int
    data: np.ndarray


@dataclass(frozen=True)
class AppendRecord:
    """One completed append on the ingest timeline."""

    key: str
    variable: str
    timestep: int
    #: Manifest generation whose commit sealed this member.
    generation: int
    #: Simulation clock at which the data arrived at the stager.
    arrival: float
    #: When the staging node started draining it (>= arrival).
    started: float
    #: When the member (and its manifest bump) became durable —
    #: the first instant a reader can pin a generation containing it.
    sealed_at: float
    raw_bytes: int
    stored_bytes: int


class IngestSession:
    """Deterministic append timeline over one dataset.

    Arrivals are processed in time order by a single staging node:
    an append starts at ``max(arrival, previous seal)`` and occupies
    the node for the member's stored-byte drain time under the PFS
    cost model (the in-situ bargain: the *compressed, organized*
    member drains, not the raw array).  The on-disk manifest is bumped
    eagerly when :meth:`advance_to` (or :meth:`seal`) runs an append;
    *visibility* on the simulated clock is governed by ``sealed_at``
    via :meth:`generation_at` — which is what lets a replay driver
    append ahead of the query clock and still serve each query the
    generation it would really have seen.
    """

    def __init__(
        self, dataset: MLOCDataset, arrivals: list[TimestepArrival]
    ) -> None:
        self.dataset = dataset
        self._pending = sorted(arrivals, key=lambda a: (a.time, a.variable))
        self.base_generation = dataset.generation
        #: Members sealed before this session began: queryable at any
        #: simulated time, with no ingest stall.
        self.base_manifest = load_manifest_at(
            dataset.fs, dataset.root, self.base_generation
        )
        self.appended: list[AppendRecord] = []
        self.busy_until = 0.0
        self.raw_bytes = 0
        self.stored_bytes = 0

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return not self._pending

    @property
    def next_arrival(self) -> float | None:
        return self._pending[0].time if self._pending else None

    @property
    def first_queryable_seconds(self) -> float | None:
        """Seal time of the first member — time-to-first-queryable."""
        return self.appended[0].sealed_at if self.appended else None

    def ingest_throughput(self) -> float:
        """Raw bytes absorbed per simulated second of staging time."""
        busy = sum(r.sealed_at - r.started for r in self.appended)
        return self.raw_bytes / busy if busy else 0.0

    # ------------------------------------------------------------------
    def _append_one(self, arrival: TimestepArrival) -> AppendRecord:
        report = self.dataset.append(
            arrival.data, arrival.variable, arrival.timestep
        )
        model = self.dataset.fs.cost_model
        drain = model.scaled_bytes(report.total_bytes) / model.client_bandwidth
        started = max(arrival.time, self.busy_until)
        self.busy_until = started + drain
        record = AppendRecord(
            key=f"{arrival.variable}@{arrival.timestep:06d}",
            variable=arrival.variable,
            timestep=arrival.timestep,
            generation=self.dataset.generation,
            arrival=arrival.time,
            started=started,
            sealed_at=self.busy_until,
            raw_bytes=arrival.data.nbytes,
            stored_bytes=report.total_bytes,
        )
        self.appended.append(record)
        self.raw_bytes += record.raw_bytes
        self.stored_bytes += record.stored_bytes
        return record

    def advance_to(self, now: float) -> list[AppendRecord]:
        """Append every arrival with ``time <= now``; returns them."""
        done = []
        while self._pending and self._pending[0].time <= now:
            done.append(self._append_one(self._pending.pop(0)))
        return done

    def seal(self, variable: str, timestep: int) -> AppendRecord | None:
        """Run ingest until (variable, timestep) is sealed.

        Returns its record, or ``None`` when the schedule never
        produces that member.  Already-appended members return their
        existing record without touching the timeline.
        """
        for record in self.appended:
            if record.variable == variable and record.timestep == timestep:
                return record
        while self._pending:
            record = self._append_one(self._pending.pop(0))
            if record.variable == variable and record.timestep == timestep:
                return record
        return None

    def seal_first(self, variable: str) -> AppendRecord | None:
        """Run ingest until the first member of ``variable`` seals."""
        for record in self.appended:
            if record.variable == variable:
                return record
        while self._pending:
            record = self._append_one(self._pending.pop(0))
            if record.variable == variable:
                return record
        return None

    def run_to_completion(self) -> list[AppendRecord]:
        """Append everything remaining; returns the full timeline."""
        while self._pending:
            self._append_one(self._pending.pop(0))
        return self.appended

    # ------------------------------------------------------------------
    def generation_at(self, now: float) -> int:
        """The newest generation sealed by simulated time ``now``."""
        generation = self.base_generation
        for record in self.appended:
            if record.sealed_at <= now:
                generation = max(generation, record.generation)
        return generation

    def sealed_members_at(self, now: float) -> list[AppendRecord]:
        return [r for r in self.appended if r.sealed_at <= now]


class IngestBroker:
    """Snapshot-pinned multi-tenant serving during ingest.

    One :class:`~repro.server.broker.BrokerCore` per sealed member,
    created lazily from the pinned :class:`DatasetSnapshot` and kept
    across refreshes (sealed members are immutable, so a core — its
    admission state, fetch-merge loop, and cache attributions — stays
    valid for the handle's lifetime).  Admission consults only the
    pinned generation: a query for a member the snapshot does not
    contain raises :class:`NotYetSealed` even if a newer generation on
    disk already has it — refreshing is an explicit, observable event.
    """

    def __init__(
        self,
        dataset: MLOCDataset,
        *,
        config: BrokerConfig | None = None,
        tenants: dict[str, TenantQuota] | None = None,
        store_options: dict | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or BrokerConfig()
        self._tenants = dict(tenants or {})
        self._store_options = dict(store_options or {})
        self._cores: dict[str, BrokerCore] = {}
        self._snapshot = dataset.snapshot()
        self.lifecycle: dict[str, float] = {
            "generations_seen": 1,
            "snapshot_refreshes": 0,
            "ingest_stall_seconds": 0.0,
            "not_yet_sealed": 0,
        }

    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> DatasetSnapshot:
        return self._snapshot

    @property
    def generation(self) -> int:
        return self._snapshot.generation

    def refresh(self, generation: int | None = None) -> DatasetSnapshot:
        """Re-pin to ``generation`` (default: newest committed)."""
        snap = self.dataset.snapshot(generation)
        self.dataset.snapshot_refreshes += 1
        self.lifecycle["snapshot_refreshes"] += 1
        if snap.generation != self._snapshot.generation:
            self.lifecycle["generations_seen"] += 1
        self._snapshot = snap
        return snap

    # ------------------------------------------------------------------
    def _core(self, key: str) -> BrokerCore:
        core = self._cores.get(key)
        if core is None:
            member = self._snapshot.manifest.member(key)
            store = self.dataset._open_member(
                key, expect_crc=member.meta_crc, **self._store_options
            )
            core = BrokerCore(store, self.config, tenants=self._tenants)
            self._cores[key] = core
        return core

    def submit(
        self,
        tenant: str,
        query: Query,
        *,
        variable: str,
        timestep: int | None = None,
    ):
        """Admit one query against the pinned snapshot (or raise)."""
        key = MLOCDataset._key(variable, timestep)
        if self._snapshot.manifest.member(key) is None:
            self.lifecycle["not_yet_sealed"] += 1
            raise NotYetSealed(
                f"member {key!r} is not sealed in pinned generation "
                f"{self.generation}"
            )
        return self._core(key).submit(tenant, query)

    def run_round(self) -> int:
        """One scheduling round across every member core with backlog."""
        served = 0
        for core in self._cores.values():
            if core.pending():
                served += len(core.run_round())
        return served

    def drain(self) -> int:
        rounds = 0
        while any(core.pending() for core in self._cores.values()):
            self.run_round()
            rounds += 1
        return rounds

    def pending(self) -> int:
        return sum(core.pending() for core in self._cores.values())

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Registry totals folded across member cores + lifecycle."""
        totals = aggregate_stats(
            [core.stats()["totals"] for core in self._cores.values()]
        )
        totals["generations_seen"] = int(self.lifecycle["generations_seen"])
        totals["snapshot_refreshes"] = int(self.lifecycle["snapshot_refreshes"])
        totals["ingest_stall_seconds"] = float(
            self.lifecycle["ingest_stall_seconds"]
        )
        return {
            "totals": totals,
            "generation": self.generation,
            "member_cores": len(self._cores),
            "not_yet_sealed": int(self.lifecycle["not_yet_sealed"]),
            "rounds": sum(core.loop.rounds for core in self._cores.values()),
        }


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestQueryEvent:
    """One analyst query arriving mid-run.

    ``timestep=None`` targets the newest timestep of ``variable``
    sealed at the query's (possibly stalled) service time.
    """

    arrival: float
    tenant: str
    variable: str
    query: Query
    timestep: int | None = None


@dataclass
class IngestReplayReport:
    """Outcome of one overlapped ingest/query replay."""

    #: Per served query: (tenant, arrival, completion, generation,
    #: timestep, stall_seconds).
    samples: list = field(default_factory=list)
    #: The served :class:`QueryResult` per sample, kept only when the
    #: replay ran with ``keep_results=True`` (bit-identity checks).
    results: list = field(default_factory=list)
    #: Queries whose timestep the schedule never seals.
    dropped: int = 0
    clock: float = 0.0
    first_queryable_seconds: float = 0.0
    appends: list = field(default_factory=list)
    broker: dict = field(default_factory=dict)
    ingest_throughput: float = 0.0

    def latencies(self) -> np.ndarray:
        return np.array([s[2] - s[1] for s in self.samples])

    def percentile(self, p: float) -> float:
        lat = self.latencies()
        return float(np.percentile(lat, p)) if lat.size else 0.0

    def as_dict(self) -> dict:
        lat = self.latencies()
        totals = self.broker.get("totals", {})
        stalled = [s for s in self.samples if s[5] > 0]
        return {
            "n_requests": len(self.samples),
            "dropped": self.dropped,
            "makespan_s": self.clock,
            "first_queryable_s": self.first_queryable_seconds,
            "latency_p50_s": self.percentile(50.0),
            "latency_p99_s": self.percentile(99.0),
            "latency_mean_s": float(lat.mean()) if lat.size else 0.0,
            "stalled_requests": len(stalled),
            "ingest_stall_seconds": totals.get("ingest_stall_seconds", 0.0),
            "generations_seen": totals.get("generations_seen", 0),
            "snapshot_refreshes": totals.get("snapshot_refreshes", 0),
            "n_appends": len(self.appends),
            "ingest_throughput_bps": self.ingest_throughput,
            "bytes_read": totals.get("bytes_read", 0),
            "blocks_decoded": totals.get("blocks_decoded", 0),
            "cache_hits": totals.get("cache_hits", 0),
        }


def replay_ingest(
    session: IngestSession,
    events: list[IngestQueryEvent],
    *,
    config: BrokerConfig | None = None,
    tenants: dict[str, TenantQuota] | None = None,
    store_options: dict | None = None,
    keep_results: bool = False,
) -> IngestReplayReport:
    """Serve a query trace while ``session`` appends, on the sim clock.

    Queries are served in arrival order by one analysis front-end.
    At each query's service time the broker re-pins to the newest
    generation *sealed by then* — never a newer one, so each result is
    exactly what a fresh open pinned at that generation returns.  A
    query for a timestep whose append is still in flight stalls until
    its seal; the stall is charged to ``ingest_stall_seconds`` and to
    the query's latency.  Queries for timesteps the schedule never
    produces are dropped (counted, not served).
    """
    broker = IngestBroker(
        session.dataset,
        config=config,
        tenants=tenants,
        store_options=store_options,
    )
    report = IngestReplayReport()
    clock = 0.0
    for event in sorted(events, key=lambda e: e.arrival):
        clock = max(clock, event.arrival)
        session.advance_to(clock)
        stall = 0.0
        timestep = event.timestep
        if timestep is None:
            candidates = [
                m.timestep
                for m in session.base_manifest.members
                if m.variable == event.variable and m.timestep is not None
            ] + [
                r.timestep
                for r in session.sealed_members_at(clock)
                if r.variable == event.variable
            ]
            if candidates:
                timestep = max(candidates)
            else:
                first = session.seal_first(event.variable)
                if first is None:
                    report.dropped += 1
                    continue
                stall = max(0.0, first.sealed_at - clock)
                timestep = first.timestep
        elif (
            session.base_manifest.member(
                MLOCDataset._key(event.variable, timestep)
            )
            is None
        ):
            record = session.seal(event.variable, timestep)
            if record is None:
                report.dropped += 1
                continue
            stall = max(0.0, record.sealed_at - clock)
        if stall:
            broker.lifecycle["ingest_stall_seconds"] += stall
            clock += stall
            session.advance_to(clock)
        generation = session.generation_at(clock)
        if generation != broker.generation:
            broker.refresh(generation)
        req = broker.submit(
            event.tenant, event.query,
            variable=event.variable, timestep=timestep,
        )
        broker.run_round()
        result: QueryResult = req.result
        clock += result.times.total
        report.samples.append(
            (event.tenant, event.arrival, clock, generation, timestep, stall)
        )
        if keep_results:
            report.results.append(result)
    report.clock = clock
    report.first_queryable_seconds = session.first_queryable_seconds or 0.0
    report.appends = list(session.appended)
    report.ingest_throughput = session.ingest_throughput()
    report.broker = broker.stats()
    return report
