"""Serving layer: the multi-tenant query broker (docs/serving.md).

Sits strictly *above* ``repro.core`` — it consumes the store's public
planning/execution surface and never reaches into engine internals
from outside the fetcher contract (``scripts/check_layers.py`` rule 3
enforces that nothing below imports this package).
"""

from repro.server.broker import (
    BrokerConfig,
    BrokerCore,
    BrokerRejected,
    QueryBroker,
    QuotaExceededError,
    Request,
    TenantQuota,
)
from repro.server.fetchmerge import FetchMergeLoop
from repro.server.ingest import (
    AppendRecord,
    IngestBroker,
    IngestQueryEvent,
    IngestReplayReport,
    IngestSession,
    NotYetSealed,
    TimestepArrival,
    replay_ingest,
)
from repro.server.replay import (
    ReplayEvent,
    ReplayReport,
    open_loop_events,
    poisson_arrivals,
    replay_closed_loop,
    replay_open_loop,
)

__all__ = [
    "BrokerConfig",
    "BrokerCore",
    "BrokerRejected",
    "QueryBroker",
    "QuotaExceededError",
    "Request",
    "TenantQuota",
    "FetchMergeLoop",
    "AppendRecord",
    "IngestBroker",
    "IngestQueryEvent",
    "IngestReplayReport",
    "IngestSession",
    "NotYetSealed",
    "TimestepArrival",
    "replay_ingest",
    "ReplayEvent",
    "ReplayReport",
    "open_loop_events",
    "poisson_arrivals",
    "replay_closed_loop",
    "replay_open_loop",
]
