"""I/O cost model for the simulated parallel file system.

The paper evaluates MLOC on the Lens cluster's Lustre file system; query
response time is dominated by (a) bytes streamed from object storage
targets (OSTs), (b) disk seeks caused by non-contiguous access, and
(c) file-open metadata operations.  This module models exactly those
quantities so that the *shape* of the paper's results (who wins, by what
factor, where the crossovers fall) is preserved even though the absolute
seconds of a 2008-era Lustre deployment are not reproduced.

The model is deliberately simple and fully documented:

* Every byte transferred from an OST costs ``1 / ost_bandwidth`` seconds
  on that OST.  OSTs stream independently, so the transfer component of
  a parallel access is the *maximum* per-OST load, not the sum — this is
  what makes I/O stop scaling once every OST is busy (paper Fig. 7).
* Every non-contiguous read on a client costs ``seek_time`` seconds and
  every file open costs ``open_time`` seconds; these are per-client
  serial overheads, so the overhead component of a parallel access is
  the maximum per-rank overhead.
* Reads of cached extents are free; the experiment harness clears the
  cache between rounds, mirroring the paper's methodology ("after each
  round we clear the system file cache").

Default constants are calibrated to commodity 2012-era hardware:
~100 MB/s per OST spinning disk streaming bandwidth, ~8 ms average seek,
~1 ms metadata round trip.  Tests never rely on the absolute values,
only on monotonicity (more bytes/seeks/opens => more time).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PFSCostModel", "IOStats"]


@dataclass(frozen=True)
class PFSCostModel:
    """Parameters of the simulated Lustre-like file system.

    Attributes
    ----------
    ost_count:
        Number of object storage targets files are striped over.
    stripe_size:
        Stripe width in bytes; consecutive stripes of a file live on
        consecutive OSTs (round robin), as in Lustre's default layout.
    ost_bandwidth:
        Sustained streaming bandwidth of one OST, bytes/second.
    client_bandwidth:
        Injection bandwidth of one compute node.  The paper's 8-core
        runs fit one Lens node; its 128-process scalability runs span
        multiple nodes, whose links aggregate (that is how the paper's
        2 GB/s at 128 processes exceeds a single node link).
    cores_per_node:
        Ranks per node (Lens: four quad-core sockets = 16); a parallel
        access with R ranks is modeled across ``ceil(R / cores_per_node)``
        node links.
    seek_time:
        Cost of one non-contiguous positioning operation, seconds.
    open_time:
        Cost of one file-open metadata operation, seconds.
    byte_scale:
        The dataset magnification factor of DESIGN.md §5: the harness
        runs on datasets ``byte_scale`` times smaller than the paper's
        and multiplies every transferred byte by this factor, so
        reported I/O seconds are *paper-scale-equivalent*.  1.0 means
        physical accounting (the default outside the harness).
    cpu_scale:
        Factor applied by consumers to *measured* CPU seconds
        (decompression/reconstruction), so CPU components stay
        commensurate with the scaled I/O seconds.  ``None`` (default)
        means "same as byte_scale" — justified because the hot CPU
        paths (zlib, spline evaluation, NumPy filtering) run at C
        speed comparable to the paper's testbed per byte, and the data
        volume is exactly ``byte_scale`` times smaller.
    """

    ost_count: int = 16
    stripe_size: int = 1 << 20
    ost_bandwidth: float = 100e6
    client_bandwidth: float = 400e6
    cores_per_node: int = 16
    seek_time: float = 8e-3
    open_time: float = 1e-3
    byte_scale: float = 1.0
    cpu_scale: float | None = None

    def __post_init__(self) -> None:
        if self.ost_count <= 0:
            raise ValueError(f"ost_count must be positive, got {self.ost_count}")
        if self.stripe_size <= 0:
            raise ValueError(f"stripe_size must be positive, got {self.stripe_size}")
        if self.ost_bandwidth <= 0:
            raise ValueError(f"ost_bandwidth must be positive, got {self.ost_bandwidth}")
        if self.client_bandwidth <= 0:
            raise ValueError(
                f"client_bandwidth must be positive, got {self.client_bandwidth}"
            )
        if self.cores_per_node <= 0:
            raise ValueError(
                f"cores_per_node must be positive, got {self.cores_per_node}"
            )
        if self.seek_time < 0 or self.open_time < 0:
            raise ValueError("seek_time and open_time must be non-negative")
        if self.byte_scale <= 0:
            raise ValueError(f"byte_scale must be positive, got {self.byte_scale}")
        if self.cpu_scale is not None and self.cpu_scale <= 0:
            raise ValueError(f"cpu_scale must be positive, got {self.cpu_scale}")

    @property
    def effective_cpu_scale(self) -> float:
        """The factor applied to measured CPU seconds."""
        return self.byte_scale if self.cpu_scale is None else self.cpu_scale

    def scaled_bytes(self, n: float) -> float:
        """Bytes in paper-scale-equivalent units."""
        return n * self.byte_scale

    def serial_time(self, stats: "IOStats") -> float:
        """Seconds for a single client performing ``stats`` alone.

        A single reader streams from one OST at a time and is further
        bounded by its node link.
        """
        bandwidth = min(self.ost_bandwidth, self.client_bandwidth)
        return (
            stats.opens * self.open_time
            + stats.seeks * self.seek_time
            + stats.stall_seconds
            + self.scaled_bytes(stats.bytes_read) / bandwidth
        )

    def parallel_time(self, per_rank: list["IOStats"], per_ost_bytes: list[int]) -> float:
        """Seconds for a bulk-synchronous parallel access.

        ``per_rank`` carries each rank's open/seek counts (serial,
        per-client overhead); ``per_ost_bytes`` carries the total bytes
        each OST must stream (shared, bandwidth-bound).  The transfer
        phase is bounded below by the most-loaded OST and by the
        aggregate link bandwidth of the nodes hosting the ranks
        (``ceil(ranks / cores_per_node)`` node links); overhead and
        transfer are additive on the critical path.
        """
        if len(per_ost_bytes) != self.ost_count:
            raise ValueError(
                f"expected {self.ost_count} per-OST byte counts, got {len(per_ost_bytes)}"
            )
        overhead = max(
            (
                s.opens * self.open_time + s.seeks * self.seek_time + s.stall_seconds
                for s in per_rank
            ),
            default=0.0,
        )
        n_nodes = max(
            1, -(-len(per_rank) // self.cores_per_node)
        )  # ceil division
        total_bytes = float(sum(per_ost_bytes))
        transfer = max(
            self.scaled_bytes(max(per_ost_bytes, default=0)) / self.ost_bandwidth,
            self.scaled_bytes(total_bytes) / (self.client_bandwidth * n_nodes),
        )
        return overhead + transfer


@dataclass
class IOStats:
    """Raw I/O counters accumulated by one client (rank) during a query.

    ``stall_seconds`` carries simulated wall time the client spent
    waiting without transferring bytes: injected latency spikes
    (:class:`repro.pfs.faults.FaultyPFS`) and the executor's retry
    backoff.  Stalls are per-client serial time, so the parallel cost
    model folds them into the max-per-rank overhead term.
    """

    opens: int = 0
    seeks: int = 0
    bytes_read: int = 0
    reads: int = 0
    stall_seconds: float = 0.0
    #: Coalesced (vectored) span reads; each one bundles several block
    #: extents into a single seek + contiguous transfer.
    vectored_reads: int = 0

    def merge(self, other: "IOStats") -> None:
        """Fold ``other``'s counters into this one (for aggregation)."""
        self.opens += other.opens
        self.seeks += other.seeks
        self.bytes_read += other.bytes_read
        self.reads += other.reads
        self.stall_seconds += other.stall_seconds
        self.vectored_reads += other.vectored_reads

    def copy(self) -> "IOStats":
        return IOStats(
            self.opens,
            self.seeks,
            self.bytes_read,
            self.reads,
            self.stall_seconds,
            self.vectored_reads,
        )
