"""Simulated parallel file system substrate.

The paper's experiments ran on a Lustre deployment; this package
replaces it with a deterministic simulator: an in-memory object store
with Lustre-style striping, an extent cache, and an explicit cost model
that attributes simulated seconds to file opens, seeks, and per-OST byte
transfers.  See DESIGN.md §2 for the substitution argument.
"""

from repro.pfs.blockcache import BlockCache, CacheStats
from repro.pfs.costmodel import IOStats, PFSCostModel
from repro.pfs.faults import (
    FaultInjectionLog,
    FaultPlan,
    FaultyPFS,
    TransientIOError,
)
from repro.pfs.layout import BinFileSet, aggregate_parallel_time, dataset_files
from repro.pfs.simfs import FileStat, PFSSession, SimFileHandle, SimulatedPFS

__all__ = [
    "BinFileSet",
    "BlockCache",
    "CacheStats",
    "FaultInjectionLog",
    "FaultPlan",
    "FaultyPFS",
    "FileStat",
    "IOStats",
    "PFSCostModel",
    "PFSSession",
    "SimFileHandle",
    "SimulatedPFS",
    "TransientIOError",
    "aggregate_parallel_time",
    "dataset_files",
]
