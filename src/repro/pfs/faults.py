"""Deterministic fault injection for the simulated parallel file system.

Real PFS deployments (the paper's Lustre setting) do not fail cleanly:
clients see torn reads after stripe-server restarts, silent bit rot on
aging disks, transient ``EIO`` under contention, and latency spikes
when an OST is rebuilding.  This module lets the reproduction *model*
those failures so the read path's verify-and-recover machinery
(:mod:`repro.core.executor`) can be exercised and regression-tested:

``FaultPlan``
    A frozen, seeded description of *which* faults happen *where*.
    Every decision is a pure function of ``(seed, path, offset,
    length, attempt)`` via a keyed hash — no hidden RNG state — so a
    plan replays identically across runs, backends, and processes, and
    a chaos test failure is reproducible from its seed alone.
``FaultyPFS``
    A :class:`~repro.pfs.simfs.SimulatedPFS` subclass that *wraps* an
    existing file system (sharing its namespace, extent cache, and
    cost model) and applies a plan to every read.  Writes are never
    faulted *by the plan*: the write pipeline's bit-identical
    guarantee is a different contract, and the paper's failure domain
    is the long-lived read-mostly analysis store.  Crash coverage of
    the append protocol uses the explicit, scripted
    :meth:`FaultyPFS.fail_next_write` hook instead — it interrupts a
    chosen ``write_file`` call (optionally committing a torn prefix
    first), modeling a writer that dies mid-commit.
``TransientIOError``
    The retryable error raised for injected transient failures.
``WriteInterrupted``
    The error raised by an injected write crash.

Fault classes and their accounting semantics:

* **Transient errors** — ``read()`` raises :class:`TransientIOError`.
  The failed request still charges one seek (the positioning happened)
  and drops the handle's position, so the retry seeks again.
* **Bit flips** — payload bytes are XOR-flipped in flight.  Transient
  flips evict the extent from the client cache (the clean bytes never
  arrived; a retry re-reads cold).  *Sticky* flips model bit rot: the
  same extent corrupts identically on every attempt, which is what
  drives blocks into quarantine.
* **Torn reads** — a proper prefix of the requested bytes is
  returned; the missing suffix is evicted from the cache.
* **Latency spikes** — ``stall_seconds`` charged to the reading
  session's :class:`~repro.pfs.costmodel.IOStats`, flowing into the
  cost model's per-rank overhead term.

Faults are restricted to paths matching ``fault_suffixes`` (default:
the ``.data``/``.index`` bin subfiles) so store metadata loads stay
clean — metadata durability is fsck's domain, not the query path's.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.pfs.simfs import PFSSession, SimFileHandle, SimulatedPFS

__all__ = [
    "TransientIOError",
    "WriteInterrupted",
    "FaultDecision",
    "FaultPlan",
    "FaultInjectionLog",
    "FaultyPFS",
]


class TransientIOError(IOError):
    """A retryable read failure injected by :class:`FaultyPFS`."""

    def __init__(self, path: str, offset: int, length: int, attempt: int) -> None:
        super().__init__(
            f"transient I/O error reading {path} [{offset}, {offset + length}) "
            f"(attempt {attempt})"
        )
        self.path = path
        self.offset = offset
        self.length = length
        self.attempt = attempt


class WriteInterrupted(IOError):
    """An injected crash in the middle of a ``write_file`` call.

    ``committed`` is how many of ``total`` bytes made it to disk
    before the crash (0 when the target file was left untouched).
    """

    def __init__(self, path: str, committed: int, total: int) -> None:
        super().__init__(
            f"write of {path} interrupted after {committed}/{total} bytes"
        )
        self.path = path
        self.committed = committed
        self.total = total


@dataclass
class _WriteFault:
    """One scripted write interruption: match, torn prefix, uses left."""

    match: str
    torn_at: int | None
    remaining: int


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one read attempt of one extent."""

    stall_seconds: float = 0.0
    transient: bool = False
    #: Byte positions (relative to the extent) whose lowest-order
    #: ``bit`` is flipped, as ``(byte_offset, bit)`` pairs.
    flips: tuple[tuple[int, int], ...] = ()
    #: Short-read length (< requested) for torn reads, else ``None``.
    torn_length: int | None = None
    #: Whether the flips are sticky (identical on every attempt).
    sticky: bool = False

    @property
    def clean(self) -> bool:
        return (
            self.stall_seconds == 0.0
            and not self.transient
            and not self.flips
            and self.torn_length is None
        )


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic schedule of injected faults.

    All ``*_rate`` parameters are probabilities in ``[0, 1]``.
    Per-*attempt* rates (transient errors, transient bit flips, torn
    reads, latency spikes) are drawn independently for every read
    attempt of an extent, so a retry can succeed where the first
    attempt failed.  The per-*extent* ``sticky_corruption_rate`` marks
    an extent as rotten once and for all: every attempt returns the
    same corrupted bytes, modeling media bit rot that no retry fixes.
    """

    seed: int = 0
    transient_error_rate: float = 0.0
    bitflip_rate: float = 0.0
    torn_read_rate: float = 0.0
    sticky_corruption_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 0.05
    fault_suffixes: tuple[str, ...] = (".data", ".index")

    def __post_init__(self) -> None:
        for name in (
            "transient_error_rate",
            "bitflip_rate",
            "torn_read_rate",
            "sticky_corruption_rate",
            "latency_spike_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_spike_seconds < 0:
            raise ValueError(
                f"latency_spike_seconds must be >= 0, got {self.latency_spike_seconds}"
            )

    # ------------------------------------------------------------------
    def _u(self, *parts) -> float:
        """Uniform [0, 1) deterministically keyed by seed and parts."""
        h = hashlib.blake2b(digest_size=8)
        h.update(repr((self.seed,) + parts).encode())
        return int.from_bytes(h.digest(), "big") / 2.0**64

    def applies_to(self, path: str) -> bool:
        """Whether this plan injects faults into reads of ``path``."""
        return path.endswith(self.fault_suffixes)

    def is_sticky(self, path: str, offset: int, length: int) -> bool:
        """Whether the extent is rotten (corrupts on every attempt)."""
        if not self.applies_to(path):
            return False
        return self._u("sticky", path, offset, length) < self.sticky_corruption_rate

    def sticky_flip(self, path: str, offset: int, length: int) -> tuple[int, int]:
        """The (byte, bit) a rotten extent always returns flipped."""
        byte = int(self._u("sticky-byte", path, offset, length) * length)
        bit = int(self._u("sticky-bit", path, offset, length) * 8)
        return min(byte, length - 1), min(bit, 7)

    def decide(
        self, path: str, offset: int, length: int, attempt: int
    ) -> FaultDecision:
        """The injected fault(s) for one read attempt of one extent."""
        if not self.applies_to(path) or length <= 0:
            return FaultDecision()
        ext = (path, offset, length)
        stall = 0.0
        if self._u("latency", *ext, attempt) < self.latency_spike_rate:
            stall = self.latency_spike_seconds
        if self._u("transient", *ext, attempt) < self.transient_error_rate:
            return FaultDecision(stall_seconds=stall, transient=True)
        flips: list[tuple[int, int]] = []
        sticky = self.is_sticky(*ext)
        if sticky:
            flips.append(self.sticky_flip(*ext))
        if self._u("flip", *ext, attempt) < self.bitflip_rate:
            byte = min(int(self._u("flip-byte", *ext, attempt) * length), length - 1)
            bit = min(int(self._u("flip-bit", *ext, attempt) * 8), 7)
            flips.append((byte, bit))
        torn = None
        if self._u("torn", *ext, attempt) < self.torn_read_rate:
            torn = int(self._u("torn-len", *ext, attempt) * length)
        return FaultDecision(
            stall_seconds=stall,
            flips=tuple(flips),
            torn_length=torn,
            sticky=sticky and len(flips) == 1,
        )

    def sticky_only(self) -> "FaultPlan":
        """This plan with every transient fault class switched off.

        Reads then fail exactly on the rotten extents — the view under
        which an offline ``fsck`` pass sees the same persistent damage
        the query path quarantined, so the two can be cross-checked.
        """
        return replace(
            self,
            transient_error_rate=0.0,
            bitflip_rate=0.0,
            torn_read_rate=0.0,
            latency_spike_rate=0.0,
        )


@dataclass
class FaultInjectionLog:
    """Lifetime counters of the faults a :class:`FaultyPFS` injected."""

    transient_errors: int = 0
    bitflips: int = 0
    torn_reads: int = 0
    latency_spikes: int = 0
    #: Scripted write crashes (``fail_next_write``), not plan-drawn.
    interrupted_writes: int = 0
    stall_seconds: float = 0.0
    #: Rotten extents actually read, as (path, offset, length).
    sticky_extents: set = field(default_factory=set)

    @property
    def total_faults(self) -> int:
        return (
            self.transient_errors
            + self.bitflips
            + self.torn_reads
            + self.latency_spikes
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "transient_errors": self.transient_errors,
            "bitflips": self.bitflips,
            "torn_reads": self.torn_reads,
            "latency_spikes": self.latency_spikes,
            "interrupted_writes": self.interrupted_writes,
            "stall_seconds": self.stall_seconds,
            "sticky_extents": len(self.sticky_extents),
        }


class _FaultyFileHandle(SimFileHandle):
    """A read handle that applies the fault plan to every read.

    The inherited :meth:`~repro.pfs.simfs.SimFileHandle.readv` funnels
    through this :meth:`read`, so a coalesced vectored read draws its
    fault decision keyed on the *span* extent ``(path, span_offset,
    span_length)`` — a different draw than the per-block extents a
    ``coalesce_gap=0`` scheduler issues.  That is intentional: the
    wire-level transfer really is one request, and the engine re-checks
    each block's CRC after slicing the span, falling back to single
    verified reads on damage.
    """

    def read(self, offset: int, length: int) -> bytes:
        fs: FaultyPFS = self._session.fs
        plan = fs.plan
        if length <= 0 or not plan.applies_to(self._path):
            return super().read(offset, length)
        attempt = fs._next_attempt(self._path, offset, length)
        decision = plan.decide(self._path, offset, length, attempt)
        log = fs.injected
        if decision.stall_seconds:
            self._session.stats.stall_seconds += decision.stall_seconds
            log.latency_spikes += 1
            log.stall_seconds += decision.stall_seconds
        if decision.transient:
            # The request reached the server before failing: charge the
            # positioning, and force the retry to seek again.
            self._session.stats.seeks += 1
            self._pos = None
            log.transient_errors += 1
            raise TransientIOError(self._path, offset, length, attempt)
        data = super().read(offset, length)
        if decision.clean:
            return data
        buf = bytearray(data)
        for byte, bit in decision.flips:
            buf[byte] ^= 1 << bit
        log.bitflips += len(decision.flips)
        if decision.sticky:
            log.sticky_extents.add((self._path, offset, length))
        if decision.flips and not decision.sticky:
            # Transient in-flight corruption: the clean bytes never
            # arrived, so a retry must pay for a cold re-read.  Sticky
            # corruption stays cached — the *stored* bytes are rotten.
            fs._cache.evict(self._path, offset, length)
        if decision.torn_length is not None and decision.torn_length < length:
            log.torn_reads += 1
            fs._cache.evict(self._path, offset, length)
            del buf[decision.torn_length :]
        return bytes(buf)


class FaultyPFS(SimulatedPFS):
    """Fault-injecting view over a :class:`SimulatedPFS`.

    Shares the wrapped file system's namespace, extent cache, and cost
    model — writing through either side is visible to both — and
    applies ``plan`` to every read performed through its sessions.

    Parameters
    ----------
    base:
        The file system to wrap.  ``None`` creates a fresh namespace
        (useful for writer-then-reader tests on one object).
    plan:
        The :class:`FaultPlan` to apply; the default plan injects
        nothing, making the wrapper a bit-exact passthrough.
    """

    def __init__(
        self,
        base: SimulatedPFS | None = None,
        plan: FaultPlan | None = None,
        cost_model=None,
    ) -> None:
        if base is None:
            super().__init__(cost_model)
        else:
            if cost_model is not None:
                raise ValueError("pass cost_model only when base is None")
            self.cost_model = base.cost_model
            self._files = base._files  # shared namespace (aliased on purpose)
            self._cache = base._cache
        self.base = base
        self.plan = plan if plan is not None else FaultPlan()
        self.injected = FaultInjectionLog()
        self._attempts: dict[tuple[str, int, int], int] = {}
        self._write_faults: list[_WriteFault] = []

    # ------------------------------------------------------------------
    def _make_handle(self, session: PFSSession, path: str) -> SimFileHandle:
        return _FaultyFileHandle(session, path)

    def _next_attempt(self, path: str, offset: int, length: int) -> int:
        key = (path, offset, length)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        return attempt

    def reset_attempts(self) -> None:
        """Restart per-extent attempt numbering (fresh chaos round)."""
        self._attempts.clear()

    # ------------------------------------------------------------------
    def fail_next_write(
        self, match: str, *, torn_at: int | None = None, count: int = 1
    ) -> None:
        """Script a crash into the next ``count`` writes matching ``match``.

        ``match`` is a path substring.  With ``torn_at=None`` the
        crash lands *before* anything durable: the target path keeps
        whatever it held (a previous version, or nothing).  With
        ``torn_at=k`` the first ``k`` bytes are committed and the rest
        lost — the torn-commit case CRC-framed records (manifests,
        ``hbi``/``peb``) must detect and readers must skip.  Either
        way the interrupted call raises :class:`WriteInterrupted`.
        """
        if torn_at is not None and torn_at < 0:
            raise ValueError(f"torn_at must be >= 0, got {torn_at}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._write_faults.append(_WriteFault(match, torn_at, count))

    def write_file(self, path: str, data: bytes) -> None:
        for spec in self._write_faults:
            if spec.remaining > 0 and spec.match in path:
                spec.remaining -= 1
                self.injected.interrupted_writes += 1
                committed = 0
                if spec.torn_at is not None:
                    committed = min(spec.torn_at, len(data))
                    super().write_file(path, bytes(data[:committed]))
                raise WriteInterrupted(path, committed, len(data))
        super().write_file(path, data)

    def with_plan(self, plan: FaultPlan) -> "FaultyPFS":
        """A sibling view over the same files under a different plan."""
        return FaultyPFS(self.base if self.base is not None else self, plan)
