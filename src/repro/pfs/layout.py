"""Subfiling layout: per-bin data and index files on the simulated PFS.

Section III-C of the paper: MLOC stores the data of each value bin in
its own file and the (compressed) position index of that bin in a
second, separate file.  This "subfiling" middle ground keeps files
neither too small (metadata pressure) nor too large (management
overhead), and read-only access needs no lock synchronization.

This module fixes the naming convention and provides
:func:`aggregate_parallel_time`, which combines the per-rank sessions of
one bulk-synchronous query phase into the simulated I/O seconds under
the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.pfs.costmodel import PFSCostModel
from repro.pfs.simfs import PFSSession, SimulatedPFS

__all__ = [
    "BinFileSet",
    "aggregate_parallel_time",
    "dataset_files",
]


class BinFileSet:
    """Path bookkeeping for one MLOC dataset's subfiles.

    Parameters
    ----------
    root:
        Logical directory of the dataset on the simulated PFS, e.g.
        ``"/mloc/gts/temperature"``.
    n_bins:
        Number of value bins (one data + one index file each).
    """

    def __init__(self, root: str, n_bins: int) -> None:
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.root = root.rstrip("/")
        self.n_bins = n_bins

    def data_path(self, bin_id: int) -> str:
        self._check(bin_id)
        return f"{self.root}/bin{bin_id:04d}.data"

    def index_path(self, bin_id: int) -> str:
        self._check(bin_id)
        return f"{self.root}/bin{bin_id:04d}.index"

    @property
    def meta_path(self) -> str:
        return f"{self.root}/meta"

    def all_data_paths(self) -> list[str]:
        return [self.data_path(b) for b in range(self.n_bins)]

    def all_index_paths(self) -> list[str]:
        return [self.index_path(b) for b in range(self.n_bins)]

    def create_all(self, fs: SimulatedPFS) -> None:
        """Create empty data/index files for every bin plus metadata."""
        for b in range(self.n_bins):
            fs.create(self.data_path(b))
            fs.create(self.index_path(b))
        fs.create(self.meta_path)

    def data_bytes(self, fs: SimulatedPFS) -> int:
        return sum(fs.size(p) for p in self.all_data_paths())

    def index_bytes(self, fs: SimulatedPFS) -> int:
        return sum(fs.size(p) for p in self.all_index_paths())

    def _check(self, bin_id: int) -> None:
        if not (0 <= bin_id < self.n_bins):
            raise ValueError(f"bin_id {bin_id} out of range [0, {self.n_bins})")


def dataset_files(fs: SimulatedPFS, root: str) -> dict[str, int]:
    """Map every file under ``root`` to its size (storage accounting)."""
    prefix = root.rstrip("/") + "/"
    return {p: fs.size(p) for p in fs.list_files(prefix)}


def aggregate_parallel_time(
    cost_model: PFSCostModel, sessions: list[PFSSession]
) -> float:
    """Simulated wall seconds of one parallel bulk-synchronous I/O phase.

    Per-rank open/seek overheads are serial on each client (max over
    ranks); byte transfers contend on shared OSTs (max over per-OST
    loads).  See :meth:`PFSCostModel.parallel_time`.
    """
    if not sessions:
        return 0.0
    ost_totals = np.zeros(cost_model.ost_count, dtype=np.float64)
    for s in sessions:
        ost_totals += s.ost_bytes
    return cost_model.parallel_time(
        [s.stats for s in sessions], [int(round(b)) for b in ost_totals]
    )
