"""Simulated parallel file system (Lustre-like) with I/O accounting.

This is the storage substrate for the whole reproduction.  Bytes are
held in memory (the real datasets here are tens to hundreds of MB), but
every access is accounted under the :class:`~repro.pfs.costmodel.PFSCostModel`:
file opens, seeks (non-contiguous reads), bytes streamed per OST, and an
extent-level cache that the experiment harness clears between query
rounds exactly as the paper clears the OS file cache.

Key objects
-----------
``SimulatedPFS``
    The file-system namespace: create/append/read files, striping
    layout, cache, and global storage accounting.
``PFSSession``
    One client's (simulated MPI rank's) view for a single query:
    accumulates :class:`IOStats` and per-OST byte loads.
``SimFileHandle``
    A positioned reader that detects seeks.

Striping follows Lustre's default round-robin layout: stripe *k* of a
file lives on OST ``(first_ost + k) % ost_count`` where ``first_ost`` is
derived deterministically from the file name.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.pfs.costmodel import IOStats, PFSCostModel

_SNAPSHOT_VERSION = 1

__all__ = ["SimulatedPFS", "PFSSession", "SimFileHandle", "FileStat"]


@dataclass
class _SimFile:
    """A single simulated file: a growable byte buffer plus its layout."""

    data: bytearray = field(default_factory=bytearray)
    first_ost: int = 0

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class FileStat:
    """Metadata snapshot returned by :meth:`SimulatedPFS.stat`."""

    path: str
    size: int
    first_ost: int
    n_stripes: int


class _ExtentCache:
    """Per-file merged-interval cache of byte extents already read.

    Reads of cached extents are free (they would be served from the
    client page cache); :meth:`clear` models dropping the cache between
    experiment rounds.
    """

    def __init__(self) -> None:
        self._extents: dict[str, list[tuple[int, int]]] = {}

    def clear(self) -> None:
        self._extents.clear()

    def drop_file(self, path: str) -> None:
        self._extents.pop(path, None)

    def uncached_bytes(self, path: str, offset: int, length: int) -> int:
        """How many of the bytes in [offset, offset+length) are cold."""
        if length <= 0:
            return 0
        cold = length
        for start, end in self._extents.get(path, ()):
            lo = max(start, offset)
            hi = min(end, offset + length)
            if hi > lo:
                cold -= hi - lo
        return cold

    def evict(self, path: str, offset: int, length: int) -> None:
        """Forget [offset, offset+length): the next read of it is cold.

        Used by the fault-injection layer when a transfer was corrupted
        or torn in flight — the bytes never reached the client intact,
        so a retry must be charged as a fresh disk read.
        """
        if length <= 0:
            return
        intervals = self._extents.get(path)
        if not intervals:
            return
        lo, hi = offset, offset + length
        kept: list[tuple[int, int]] = []
        for start, end in intervals:
            if end <= lo or start >= hi:
                kept.append((start, end))
                continue
            if start < lo:
                kept.append((start, lo))
            if end > hi:
                kept.append((hi, end))
        if kept:
            self._extents[path] = kept
        else:
            del self._extents[path]

    def mark(self, path: str, offset: int, length: int) -> None:
        """Record [offset, offset+length) as cached, merging intervals."""
        if length <= 0:
            return
        intervals = self._extents.setdefault(path, [])
        intervals.append((offset, offset + length))
        intervals.sort()
        merged: list[tuple[int, int]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._extents[path] = merged


class SimulatedPFS:
    """In-memory parallel file system with Lustre-style striping.

    Parameters
    ----------
    cost_model:
        The :class:`PFSCostModel` controlling striping geometry and the
        time attributed to opens/seeks/transfers.
    """

    def __init__(self, cost_model: PFSCostModel | None = None) -> None:
        self.cost_model = cost_model if cost_model is not None else PFSCostModel()
        self._files: dict[str, _SimFile] = {}
        self._cache = _ExtentCache()

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether ``path`` names a file in the namespace."""
        return path in self._files

    def create(self, path: str, overwrite: bool = True) -> None:
        """Create an empty file; its first OST is derived from the name."""
        if not overwrite and path in self._files:
            raise FileExistsError(path)
        first_ost = zlib.crc32(path.encode()) % self.cost_model.ost_count
        self._files[path] = _SimFile(first_ost=first_ost)
        self._cache.drop_file(path)

    def write_file(self, path: str, data: bytes) -> None:
        """Create (or replace) ``path`` with ``data``."""
        self.create(path, overwrite=True)
        self._files[path].data.extend(data)

    def append(self, path: str, data: bytes) -> int:
        """Append ``data``; returns the offset at which it was written."""
        f = self._require(path)
        offset = len(f.data)
        f.data.extend(data)
        return offset

    def delete(self, path: str) -> None:
        """Remove ``path`` (raises ``FileNotFoundError`` if absent)."""
        self._require(path)
        del self._files[path]
        self._cache.drop_file(path)

    def stat(self, path: str) -> FileStat:
        """Size and striping metadata of ``path``."""
        f = self._require(path)
        stripe = self.cost_model.stripe_size
        n_stripes = (f.size + stripe - 1) // stripe
        return FileStat(path=path, size=f.size, first_ost=f.first_ost, n_stripes=n_stripes)

    def size(self, path: str) -> int:
        """Current size of ``path`` in bytes."""
        return self._require(path).size

    def list_files(self, prefix: str = "") -> list[str]:
        """All paths under ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def total_bytes(self, prefix: str = "") -> int:
        """Total storage under ``prefix`` (used for Table I accounting)."""
        return sum(f.size for p, f in self._files.items() if p.startswith(prefix))

    def clear_cache(self) -> None:
        """Drop the extent cache: the next reads hit 'disk' again."""
        self._cache.clear()

    def extent_cached(self, path: str, offset: int, length: int) -> bool:
        """Whether every byte of [offset, offset+length) is cache-warm.

        Purely observational (charges nothing); used by the engine's
        I/O scheduler to attribute readahead hits.
        """
        return self._cache.uncached_bytes(path, offset, length) == 0

    # ------------------------------------------------------------------
    # Persistence (snapshots of the whole simulated file system)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Snapshot every file (and the cost model) to a real file.

        Lets encoded datasets outlive the process — e.g. the CLI builds
        a dataset once and queries it from later invocations.  The
        extent cache is deliberately not persisted (a fresh snapshot
        load is a cold file system).
        """
        payload = {
            "version": _SNAPSHOT_VERSION,
            "cost_model": self.cost_model,
            "files": {
                name: (bytes(f.data), f.first_ost) for name, f in self._files.items()
            },
        }
        Path(path).write_bytes(pickle.dumps(payload, protocol=4))

    @classmethod
    def load(cls, path: str | Path) -> "SimulatedPFS":
        """Restore a snapshot written by :meth:`save`."""
        payload = pickle.loads(Path(path).read_bytes())
        version = payload.get("version")
        if version != _SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {version!r}")
        fs = cls(payload["cost_model"])
        for name, (data, first_ost) in payload["files"].items():
            fs._files[name] = _SimFile(data=bytearray(data), first_ost=first_ost)
        return fs

    def _require(self, path: str) -> _SimFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    # ------------------------------------------------------------------
    # Client sessions
    # ------------------------------------------------------------------
    def session(self) -> "PFSSession":
        """Open a new accounting session (one per simulated rank/query)."""
        return PFSSession(self)

    def _make_handle(self, session: "PFSSession", path: str) -> "SimFileHandle":
        """Handle factory; subclasses (FaultyPFS) inject failing handles."""
        return SimFileHandle(session, path)

    # Internal: distribute ``length`` cold bytes of a read across OSTs.
    def _ost_loads(self, f: _SimFile, offset: int, length: int) -> np.ndarray:
        loads = np.zeros(self.cost_model.ost_count, dtype=np.int64)
        if length <= 0:
            return loads
        stripe = self.cost_model.stripe_size
        first = offset // stripe
        last = (offset + length - 1) // stripe
        stripes = np.arange(first, last + 1, dtype=np.int64)
        starts = np.maximum(stripes * stripe, offset)
        ends = np.minimum((stripes + 1) * stripe, offset + length)
        osts = (f.first_ost + stripes) % self.cost_model.ost_count
        np.add.at(loads, osts, ends - starts)
        return loads


class SimFileHandle:
    """A positioned read handle that charges seeks on discontinuity."""

    def __init__(self, session: "PFSSession", path: str) -> None:
        self._session = session
        self._path = path
        self._pos: int | None = None  # None => no read yet; first read seeks

    @property
    def path(self) -> str:
        return self._path

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging I/O costs."""
        fs = self._session.fs
        f = fs._require(self._path)
        if offset < 0 or length < 0 or offset + length > f.size:
            raise ValueError(
                f"read out of range: [{offset}, {offset + length}) of {self._path} "
                f"(size {f.size})"
            )
        stats = self._session.stats
        if self._pos is None or offset != self._pos:
            stats.seeks += 1
        self._pos = offset + length
        stats.reads += 1

        cold = fs._cache.uncached_bytes(self._path, offset, length)
        if cold > 0:
            # Charge only the cold fraction; distribute proportionally
            # over the stripes the full extent touches.
            loads = fs._ost_loads(f, offset, length)
            total = int(loads.sum())
            if total > 0:
                scaled = loads.astype(np.float64) * (cold / total)
                self._session.ost_bytes += scaled
            stats.bytes_read += cold
            fs._cache.mark(self._path, offset, length)
        return bytes(f.data[offset : offset + length])

    def read_all(self) -> bytes:
        return self.read(0, self._session.fs.size(self._path))

    def readv(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """Vectored read: fetch several extents as one contiguous span.

        ``extents`` is a list of ``(offset, length)`` pairs sorted by
        offset.  The whole span from the first offset to the last end is
        transferred as a *single* positioned read — one seek (at most)
        plus one contiguous transfer that includes the gap bytes between
        extents.  That is the cost-model contract coalescing relies on:
        trading gap bytes for seeks.  Returns one payload per extent.

        Fault injection (:class:`repro.pfs.faults.FaultyPFS`) applies to
        the *span* read — a transient error fails the whole vector, and
        corruption lands somewhere inside it; callers re-verify each
        extent's CRC individually and fall back to single reads.
        """
        if not extents:
            return []
        offsets = [o for o, _ in extents]
        if any(b < a for a, b in zip(offsets, offsets[1:])):
            raise ValueError("readv extents must be sorted by offset")
        if any(length < 0 for _, length in extents):
            raise ValueError("readv extent lengths must be >= 0")
        span_start = offsets[0]
        span_end = max(o + n for o, n in extents)
        data = self.read(span_start, span_end - span_start)
        self._session.stats.vectored_reads += 1
        return [data[o - span_start : o - span_start + n] for o, n in extents]


class PFSSession:
    """One client's I/O accounting context.

    Open handles are cached per path (a client keeps a file open for the
    duration of a query), so each distinct file costs exactly one
    file-open metadata operation per session.
    """

    def __init__(self, fs: SimulatedPFS) -> None:
        self.fs = fs
        self.stats = IOStats()
        self.ost_bytes = np.zeros(fs.cost_model.ost_count, dtype=np.float64)
        self._handles: dict[str, SimFileHandle] = {}

    def open(self, path: str) -> SimFileHandle:
        if path not in self._handles:
            self.fs._require(path)  # raise FileNotFoundError eagerly
            self.stats.opens += 1
            self._handles[path] = self.fs._make_handle(self, path)
        return self._handles[path]

    def serial_seconds(self) -> float:
        """Simulated seconds if this session ran alone."""
        return self.fs.cost_model.serial_time(self.stats)
