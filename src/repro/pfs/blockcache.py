"""Decoded-block LRU cache shared across queries.

The paper's evaluation clears the OS file cache between query rounds,
but its FastBit discussion notes how different the picture looks once
an index is *warm*; any long-running exploration service keeps recently
decoded blocks around.  This module provides that layer for the
reproduction: a byte-budgeted LRU of **decoded** compression blocks
(index-position arrays and data-cell payloads), shared across queries
through :class:`~repro.core.store.MLOCStore`.

Modeled-time rule (DESIGN.md §5): a cache hit skips both the simulated
I/O of the block's extent (no open/seek/transfer is charged to the
rank's PFS session) and the modeled decompression seconds (the block's
raw bytes are not added to the rank's decode counters).  Reconstruction
work on the decoded bytes is still performed and measured — a warm
cache does not make filtering free.

Keys are ``(generation, path, offset)`` where ``generation`` fingerprints
the store metadata: reopening a rewritten store yields a new generation,
so stale blocks of the old layout can never be served (they age out of
the LRU).  :meth:`BlockCache.invalidate` drops entries eagerly.

The cache is thread-safe (the threaded query backend decodes blocks
concurrently), but insertions are performed by the executor in
deterministic plan order so that eviction order — and therefore every
later query's hit pattern — is identical under the serial and threaded
backends.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["BlockCache", "CacheStats"]


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`BlockCache`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Raw (decoded) bytes served from the cache instead of the PFS.
    hit_bytes: int = 0
    current_bytes: int = 0
    capacity_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_bytes": self.hit_bytes,
            "current_bytes": self.current_bytes,
            "capacity_bytes": self.capacity_bytes,
        }


def _entry_nbytes(value: object) -> int:
    """Budgeted size of a cached decoded block."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    raise TypeError(f"uncacheable block payload of type {type(value).__name__}")


class BlockCache:
    """Byte-budgeted LRU of decoded blocks, keyed by ``(gen, path, offset)``.

    Parameters
    ----------
    capacity_bytes:
        Budget for the *decoded* payload bytes held at once.  An entry
        larger than the whole budget is never stored (it would only
        thrash the rest of the cache for a guaranteed re-miss).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple[object, int]]" = OrderedDict()
        #: key -> set of pin owners; pinned entries are never evicted.
        self._pins: dict[tuple, set[object]] = {}
        self.stats = CacheStats(capacity_bytes=self.capacity_bytes)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[tuple]:
        """Current keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: tuple) -> object | None:
        """Return the cached decoded block, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.hit_bytes += entry[1]
            return entry[0]

    def touch(self, key: tuple) -> bool:
        """Refresh ``key``'s recency without counting a hit.

        Lets the engine replay cache touches in deterministic plan
        order after out-of-order lookups, keeping LRU state — and every
        later query's hit pattern — independent of I/O scheduling.
        """
        with self._lock:
            if key not in self._entries:
                return False
            self._entries.move_to_end(key)
            return True

    def pin(self, key: tuple, owner: object) -> bool:
        """Protect ``key`` from eviction until ``owner`` releases it.

        Used by refinement sessions to keep already-verified planes
        resident across steps.  Pinning an absent key is a no-op
        (returns False).
        """
        with self._lock:
            if key not in self._entries:
                return False
            self._pins.setdefault(key, set()).add(owner)
            return True

    def release(self, owner: object) -> int:
        """Drop every pin held by ``owner``; returns how many."""
        with self._lock:
            released = 0
            for key in [k for k, owners in self._pins.items() if owner in owners]:
                owners = self._pins[key]
                owners.discard(owner)
                released += 1
                if not owners:
                    del self._pins[key]
            return released

    def pinned_keys(self) -> list[tuple]:
        """Currently pinned keys (for introspection/stats)."""
        with self._lock:
            return list(self._pins)

    def put(self, key: tuple, value: object) -> bool:
        """Insert a decoded block; returns False if it exceeds the budget."""
        nbytes = _entry_nbytes(value)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.current_bytes -= old[1]
            if nbytes > self.capacity_bytes:
                return False
            self._entries[key] = (value, nbytes)
            self.stats.current_bytes += nbytes
            self.stats.insertions += 1
            while self.stats.current_bytes > self.capacity_bytes:
                victim = next(
                    (k for k in self._entries if k not in self._pins), None
                )
                if victim is None:
                    # Everything resident is pinned: tolerate the
                    # overshoot rather than evict a held plane.
                    break
                _, evicted_nbytes = self._entries.pop(victim)
                self.stats.current_bytes -= evicted_nbytes
                self.stats.evictions += 1
            return True

    def entry_nbytes(self, key: tuple) -> int | None:
        """Budgeted size of a resident entry, or ``None`` if absent.

        Does not touch recency or hit/miss counters — this is an
        accounting probe (per-tenant cache quotas), not an access.
        """
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry[1]

    def drop(self, key: tuple) -> bool:
        """Evict one entry by key (quota enforcement); pins win.

        Returns True when the entry was resident and unpinned and is
        now gone.  A pinned entry is never dropped — a session or
        broker waiter still holds it — and an absent key is a no-op.
        """
        with self._lock:
            if key not in self._entries or key in self._pins:
                return False
            _, nbytes = self._entries.pop(key)
            self.stats.current_bytes -= nbytes
            self.stats.evictions += 1
            return True

    # ------------------------------------------------------------------
    def invalidate(self, path_prefix: str | None = None) -> int:
        """Drop unpinned entries under ``path_prefix`` (all if None).

        Returns the number of entries dropped.  **Pinned keys always
        survive**: a pin marks a block some refinement session (or
        broker waiter) has verified and still depends on — silently
        invalidating it would break the session-reuse rule, so
        invalidation skips pinned entries and the owner keeps serving
        from them until it releases.  Generation fingerprints already
        prevent *stale* hits after a store rewrite; eager invalidation
        just returns the budget immediately.
        """
        with self._lock:
            doomed = [
                k
                for k in self._entries
                if k not in self._pins
                and (path_prefix is None or str(k[1]).startswith(path_prefix))
            ]
            for k in doomed:
                _, nbytes = self._entries.pop(k)
                self.stats.current_bytes -= nbytes
            return len(doomed)

    def invalidate_generation(self, generation: int) -> int:
        """Drop unpinned entries of one store generation.

        Cache keys lead with the owning store's generation fingerprint
        (a sealed member's ``meta_crc``), so when a dataset drops a
        rewritten member's handle it can return that generation's
        budget eagerly instead of waiting for LRU pressure.  The same
        pin rule as :meth:`invalidate` applies.
        """
        with self._lock:
            doomed = [
                k
                for k in self._entries
                if k not in self._pins and k[0] == generation
            ]
            for k in doomed:
                _, nbytes = self._entries.pop(k)
                self.stats.current_bytes -= nbytes
            return len(doomed)
