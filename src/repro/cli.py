"""Command-line interface over persisted simulated-PFS snapshots.

Because the reproduction's file system is simulated in memory, datasets
are made durable via :meth:`SimulatedPFS.save` snapshots; the CLI works
against those snapshot files, giving the library a shell-level surface:

    python -m repro.cli demo out.pfs            # build a demo dataset
    python -m repro.cli info out.pfs            # list variables & sizes
    python -m repro.cli fsck out.pfs --root /demo --variable potential
    python -m repro.cli query out.pfs --root /demo --variable potential \\
        --vmin 4.0 --region 100:200,0:128 --output values --plod 2
    python -m repro.cli batch out.pfs --root /demo --variable potential \\
        --cache-mb 64 --backend threads \\
        --spec 'vmin=4.0;region=100:200,0:128' --spec 'vmin=4.5'
    python -m repro.cli refine out.pfs --root /demo --variable potential \\
        --vmin 4.0 --levels 2,4,7 --cache-mb 64
    python -m repro.cli stats out.pfs --root /demo --variable potential \\
        --plan-cache 8 --cache-mb 64 --spec 'vmin=4.0' --spec 'vmin=4.0'
    python -m repro.cli serve-replay out.pfs --root /demo --variable potential \\
        --tenants 16 --queries 4 --mode open --rate 50 --cache-mb 64
    python -m repro.cli index build out.pfs --root /demo --variable potential
    python -m repro.cli index stats out.pfs --root /demo --variable potential

Every command prints human-readable text and exits non-zero on failure
(or when fsck finds issues).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import (
    EXEC_BACKENDS,
    WRITE_BACKENDS,
    MLOCStore,
    MLOCWriter,
    Query,
    ShardedMLOCStore,
    mloc_col,
)
from repro.core.aggregate import AGGREGATE_OPS, aggregate_query
from repro.core.result import FAULT_STAT_KEYS
from repro.pfs import SimulatedPFS
from repro.tools.fsck import check_dataset, check_store
from repro.tools.relayout import relayout

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Inspect and query MLOC datasets in simulated-PFS snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build a small demo dataset snapshot")
    demo.add_argument("snapshot", help="output .pfs snapshot path")
    demo.add_argument("--size", type=int, default=512, help="square field size")
    demo.add_argument("--bins", type=int, default=32, help="value bins")
    demo.add_argument("--seed", type=int, default=7)
    _add_write_options(demo)

    info = sub.add_parser("info", help="list datasets in a snapshot")
    info.add_argument("snapshot")

    fsck = sub.add_parser("fsck", help="check a store's integrity")
    fsck.add_argument("snapshot")
    fsck.add_argument("--root", required=True, help="dataset root, e.g. /demo")
    fsck.add_argument(
        "--variable",
        default=None,
        help="store member to check (required unless --dataset)",
    )
    fsck.add_argument(
        "--dataset",
        action="store_true",
        help="check the whole manifest-managed dataset under --root: "
        "generation chain, sealed-member CRCs, per-member hbi/peb "
        "records, and orphaned member directories",
    )
    fsck.add_argument(
        "--deep",
        action="store_true",
        help="with --dataset: also run the full per-member store check",
    )

    query = sub.add_parser("query", help="run one query against a store")
    query.add_argument("snapshot")
    query.add_argument("--root", required=True)
    query.add_argument("--variable", required=True)
    query.add_argument("--vmin", type=float, default=None)
    query.add_argument("--vmax", type=float, default=None)
    query.add_argument(
        "--region",
        default=None,
        help="per-axis lo:hi bounds, comma separated, e.g. 0:128,64:256",
    )
    query.add_argument(
        "--output", choices=["positions", "values"], default="values"
    )
    query.add_argument("--plod", type=int, default=7, help="PLoD level 1..7")
    query.add_argument(
        "--tol",
        type=float,
        default=None,
        help=(
            "max acceptable relative error; reads the minimal PLoD "
            "level per chunk whose recorded bound meets it (0 = exact)"
        ),
    )
    query.add_argument(
        "--tol-metric",
        choices=["max_rel", "mean_rel"],
        default="max_rel",
        help="which recorded per-chunk bound --tol is measured against",
    )
    query.add_argument("--ranks", type=int, default=8)
    _add_execution_options(query)
    query.add_argument(
        "--aggregate",
        choices=list(AGGREGATE_OPS),
        default=None,
        help="reduce instead of returning points",
    )
    query.add_argument("--limit", type=int, default=5, help="result rows to print")

    batch = sub.add_parser(
        "batch", help="run a batch of queries as one pipeline (query_many)"
    )
    batch.add_argument("snapshot")
    batch.add_argument("--root", required=True)
    batch.add_argument("--variable", required=True)
    batch.add_argument(
        "--spec",
        action="append",
        required=True,
        metavar="SPEC",
        help=(
            "one query as ';'-separated key=value pairs "
            "(vmin, vmax, region, output, plod), e.g. "
            "'vmin=4.0;region=100:200,0:128;output=values;plod=2'; repeatable"
        ),
    )
    batch.add_argument("--ranks", type=int, default=8)
    _add_execution_options(batch)

    refine = sub.add_parser(
        "refine",
        help="run one query progressively through increasing PLoD levels",
    )
    refine.add_argument("snapshot")
    refine.add_argument("--root", required=True)
    refine.add_argument("--variable", required=True)
    refine.add_argument("--vmin", type=float, default=None)
    refine.add_argument("--vmax", type=float, default=None)
    refine.add_argument(
        "--region",
        default=None,
        help="per-axis lo:hi bounds, comma separated, e.g. 0:128,64:256",
    )
    refine.add_argument(
        "--levels",
        default="2,4,7",
        help="comma-separated ascending PLoD levels, e.g. 2,4,7",
    )
    refine.add_argument(
        "--tol",
        type=float,
        default=None,
        help=(
            "auto-refine until every chunk's recorded bound meets this "
            "relative error (replaces --levels: the ladder is derived "
            "from the per-chunk bounds)"
        ),
    )
    refine.add_argument(
        "--tol-metric",
        choices=["max_rel", "mean_rel"],
        default="max_rel",
        help="which recorded per-chunk bound --tol is measured against",
    )
    refine.add_argument("--ranks", type=int, default=8)
    _add_execution_options(refine)

    stats = sub.add_parser(
        "stats",
        help="print a store handle's open-state counters",
    )
    stats.add_argument("snapshot")
    stats.add_argument("--root", required=True)
    stats.add_argument("--variable", required=True)
    stats.add_argument(
        "--spec",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "optional queries (same syntax as 'batch') to run first, so "
            "the counters describe a warmed handle; repeatable"
        ),
    )
    stats.add_argument("--ranks", type=int, default=8)
    _add_execution_options(stats)

    serve = sub.add_parser(
        "serve-replay",
        help=(
            "replay a synthetic multi-tenant trace through the query "
            "broker and report latency/dedup"
        ),
    )
    serve.add_argument("snapshot")
    serve.add_argument("--root", required=True)
    serve.add_argument("--variable", required=True)
    serve.add_argument("--tenants", type=int, default=8)
    serve.add_argument(
        "--queries", type=int, default=4, help="queries per tenant"
    )
    serve.add_argument(
        "--mode", choices=["open", "closed"], default="open"
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="open-loop arrival rate per tenant (queries/simulated s)",
    )
    serve.add_argument(
        "--think-time",
        type=float,
        default=0.0,
        help="closed-loop think time between a completion and the next submit",
    )
    serve.add_argument(
        "--selectivity",
        type=float,
        default=0.05,
        help="volume fraction of each tenant's drifting region queries",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--ranks", type=int, default=8)
    serve.add_argument(
        "--max-inflight", type=int, default=8, help="queries served per round"
    )
    serve.add_argument(
        "--quantum-kb",
        type=float,
        default=4096.0,
        help="deficit-round-robin quantum in KiB of estimated raw bytes",
    )
    serve.add_argument(
        "--max-pending-mb",
        type=float,
        default=0.0,
        help="admission ceiling on queued estimated raw MiB (0 = unbounded)",
    )
    _add_execution_options(serve)

    index = sub.add_parser(
        "index",
        help="build or inspect a store's hierarchical bitmap index",
    )
    index.add_argument(
        "action",
        choices=["build", "stats"],
        help=(
            "'build' (re)creates the persisted hbi record from the flat "
            "bin index; 'stats' prints its tree shape and size versus "
            "the flat index and a FastBit-style whole-domain baseline"
        ),
    )
    index.add_argument("snapshot")
    index.add_argument("--root", required=True)
    index.add_argument("--variable", required=True)
    index.add_argument(
        "--leaf-span",
        type=int,
        default=None,
        help="chunks per leaf bitmap (build only; default 8, see docs/tuning.md)",
    )
    index.add_argument(
        "--fanout",
        type=int,
        default=None,
        help="bins per interior summary node (build only; default 4)",
    )

    relayout_p = sub.add_parser(
        "relayout", help="migrate a store to a different level order"
    )
    relayout_p.add_argument("snapshot")
    relayout_p.add_argument("--root", required=True)
    relayout_p.add_argument("--variable", required=True)
    relayout_p.add_argument("--target-root", required=True)
    relayout_p.add_argument(
        "--order", choices=["VMS", "VSM", "VS"], default="VSM"
    )
    relayout_p.add_argument("--bins", type=int, default=None)
    _add_write_options(relayout_p)
    return parser


def _add_write_options(sub_parser) -> None:
    sub_parser.add_argument(
        "--write-backend",
        choices=list(WRITE_BACKENDS),
        default="serial",
        help="write-pipeline backend (bit-identical output for every choice)",
    )
    sub_parser.add_argument(
        "--write-workers",
        type=int,
        default=None,
        help=(
            "pool width for --write-backend threads/processes "
            "(default: CPU count)"
        ),
    )
    sub_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "report how the written bins would partition across this "
            "many store shards (balance diagnostic; sharding itself is "
            "metadata-level, no bytes change)"
        ),
    )


def _add_execution_options(sub_parser) -> None:
    sub_parser.add_argument(
        "--backend",
        choices=list(EXEC_BACKENDS),
        default="serial",
        help="decode-phase backend (identical simulated seconds)",
    )
    sub_parser.add_argument(
        "--threads",
        "--workers",
        dest="threads",
        type=int,
        default=None,
        help=(
            "pool width for --backend threads/processes "
            "(default: CPU count)"
        ),
    )
    sub_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "open the store as this many bin-range shards "
            "(scatter/gather; identical results, per-shard parallelism)"
        ),
    )
    sub_parser.add_argument(
        "--cache-mb",
        type=float,
        default=0.0,
        help="decoded-block LRU budget in MiB (0 = cold, the paper's discipline)",
    )
    sub_parser.add_argument(
        "--plan-cache",
        type=int,
        default=0,
        help="query-plan LRU capacity in plans (0 = plan every query)",
    )
    sub_parser.add_argument(
        "--max-read-retries",
        type=int,
        default=2,
        help="retries per failed block read before quarantine",
    )
    sub_parser.add_argument(
        "--read-backoff",
        type=float,
        default=0.005,
        help="base retry backoff in simulated seconds (doubles per retry)",
    )
    sub_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help=(
            "degrade instead of failing when a block is unrecoverable: "
            "drop affected points and report their chunks"
        ),
    )
    sub_parser.add_argument(
        "--coalesce-gap",
        type=int,
        default=0,
        help=(
            "max byte gap for merging adjacent block reads into one "
            "vectored read (0 = off, pre-engine seek counts)"
        ),
    )
    sub_parser.add_argument(
        "--readahead",
        type=int,
        default=0,
        help="bytes of scheduler readahead past each vectored run (0 = off)",
    )


def _open_store(fs, args) -> MLOCStore | ShardedMLOCStore:
    if args.shards <= 0:
        raise SystemExit(f"error: --shards must be positive, got {args.shards}")
    options = dict(
        n_ranks=args.ranks,
        backend=args.backend,
        n_threads=args.threads,
        cache_bytes=int(args.cache_mb * (1 << 20)),
        plan_cache=args.plan_cache,
        max_read_retries=args.max_read_retries,
        read_backoff=args.read_backoff,
        allow_partial=args.allow_partial,
        coalesce_gap=args.coalesce_gap,
        readahead=args.readahead,
    )
    if args.shards > 1:
        return ShardedMLOCStore.open(
            fs, args.root, args.variable, n_shards=args.shards, **options
        )
    return MLOCStore.open(fs, args.root, args.variable, **options)


def _print_shard_balance(fs, root: str, variable: str, n_shards: int) -> None:
    """Report how a sharded open would split the just-written bins."""
    if n_shards <= 1:
        return
    sharded = ShardedMLOCStore.open(fs, root, variable, n_shards=n_shards)
    weights = sharded.shard_weights()
    total = float(weights.sum()) or 1.0
    print(
        f"shard balance ({n_shards} shards): bin bounds "
        f"{[int(b) for b in sharded.shard_bounds]}, stored-byte shares "
        + ", ".join(f"{w / total:.0%}" for w in weights)
    )


def _parse_region(text: str | None):
    if text is None:
        return None
    region = []
    for axis in text.split(","):
        lo, hi = axis.split(":")
        region.append((int(lo), int(hi)))
    return tuple(region)


def _parse_query_spec(spec: str) -> Query:
    """Parse one ``--spec`` string into a :class:`Query`.

    Pairs are ';'-separated (regions need the comma), e.g.
    ``vmin=4.0;region=100:200,0:128;output=values;plod=2``.
    """
    fields: dict[str, str] = {}
    for pair in spec.split(";"):
        pair = pair.strip()
        if not pair:
            continue
        if "=" not in pair:
            raise ValueError(f"bad query spec field {pair!r} (expected key=value)")
        key, value = pair.split("=", 1)
        fields[key.strip()] = value.strip()
    known = {"vmin", "vmax", "region", "output", "plod", "tol", "tol_metric"}
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown query spec keys {sorted(unknown)}")
    value_range = None
    if "vmin" in fields or "vmax" in fields:
        value_range = (
            float(fields["vmin"]) if "vmin" in fields else -np.inf,
            float(fields["vmax"]) if "vmax" in fields else np.inf,
        )
    return Query(
        value_range=value_range,
        region=_parse_region(fields.get("region")),
        output=fields.get("output", "values"),
        plod_level=int(fields.get("plod", 7)),
        tol=float(fields["tol"]) if "tol" in fields else None,
        tol_metric=fields.get("tol_metric", "max_rel"),
    )


def _cmd_demo(args) -> int:
    from repro.datasets import gts_like

    fs = SimulatedPFS()
    field = gts_like((args.size, args.size), seed=args.seed)
    config = mloc_col(
        chunk_shape=(max(args.size // 16, 1), max(args.size // 16, 1)),
        n_bins=args.bins,
    )
    report = MLOCWriter(
        fs,
        "/demo",
        config,
        write_backend=args.write_backend,
        write_workers=args.write_workers,
    ).write(field, variable="potential")
    fs.save(args.snapshot)
    print(
        f"wrote /demo/potential: {args.size}x{args.size} field, "
        f"{report.total_ratio:.0%} of raw, snapshot -> {args.snapshot}"
    )
    _print_shard_balance(fs, "/demo", "potential", args.shards)
    return 0


def _cmd_info(args) -> int:
    fs = SimulatedPFS.load(args.snapshot)
    metas = [p for p in fs.list_files() if p.endswith("/meta")]
    if not metas:
        print("no MLOC stores in snapshot")
        return 1
    print(f"{'store':40s} {'shape':>16s} {'order':>6s} {'bins':>5s} {'bytes':>12s}")
    for meta_path in metas:
        from repro.core.meta import StoreMeta

        meta = StoreMeta.from_bytes(bytes(fs.session().open(meta_path).read_all()))
        var_root = meta_path[: -len("/meta")]
        total = fs.total_bytes(var_root + "/")
        print(
            f"{var_root:40s} {str(meta.shape):>16s} "
            f"{meta.config.level_order:>6s} {meta.config.n_bins:>5d} {total:>12d}"
        )
    return 0


def _cmd_fsck(args) -> int:
    fs = SimulatedPFS.load(args.snapshot)
    if args.dataset:
        issues = check_dataset(fs, args.root, deep=args.deep)
        label = args.root
    elif args.variable is None:
        print("fsck: --variable is required unless --dataset is given")
        return 2
    else:
        issues = check_store(fs, args.root, args.variable)
        label = f"{args.root}/{args.variable}"
    if not issues:
        print(f"{label}: OK")
        return 0
    for issue in issues:
        print(issue)
    print(f"{len(issues)} issue(s) found")
    return 1


def _cmd_query(args) -> int:
    fs = SimulatedPFS.load(args.snapshot)
    store = _open_store(fs, args)
    value_range = None
    if args.vmin is not None or args.vmax is not None:
        value_range = (
            args.vmin if args.vmin is not None else -np.inf,
            args.vmax if args.vmax is not None else np.inf,
        )
    query = Query(
        value_range=value_range,
        region=_parse_region(args.region),
        output=args.output,
        plod_level=args.plod,
        tol=args.tol,
        tol_metric=args.tol_metric,
    )
    if args.aggregate is not None:
        result = aggregate_query(store, query, args.aggregate)
        if args.aggregate == "histogram":
            counts, edges = result.histogram
            for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
                print(f"[{lo:10.4g}, {hi:10.4g}) {int(c)}")
        else:
            print(f"{args.aggregate} = {result.value}")
        print(
            f"({result.n_points} points, response "
            f"{result.times.total:.4f} s simulated)"
        )
        return 0

    result = store.query(query)
    coords = result.coords(store.shape)
    for i in range(min(args.limit, result.n_results)):
        if result.values is not None:
            print(f"{coords[i].tolist()} = {result.values[i]:.6g}")
        else:
            print(f"{coords[i].tolist()}")
    if result.n_results > args.limit:
        print(f"... {result.n_results - args.limit} more")
    print(
        f"({result.n_results} results; response {result.times.total:.4f} s "
        f"simulated: io {result.times.io:.4f}, "
        f"decompression {result.times.decompression:.4f}, "
        f"reconstruction {result.times.reconstruction:.4f})"
    )
    _print_tol_stats(result.stats)
    _print_fault_stats(result.stats)
    return 0


def _print_tol_stats(stats: dict) -> None:
    """One line per tol query: the claim, the proof, and the saving."""
    if "tol_target" not in stats:
        return
    hist = ", ".join(
        f"L{lv}×{n}" for lv, n in sorted(stats["levels_histogram"].items())
    )
    met = "met" if stats.get("tol_met") else "MISSED"
    print(
        f"tol: target {stats['tol_target']:g} ({stats['tol_metric']}) {met}; "
        f"provable bound {stats['achieved_bound']:.3g}; "
        f"chunk levels {hist}; {stats['tol_bytes_saved']} raw bytes saved"
    )


def _print_fault_stats(stats: dict) -> None:
    """One warning line per query/batch when the read path saw faults."""
    watched = FAULT_STAT_KEYS + ("quarantined_blocks", "partial_chunks")
    if not any(stats.get(k) for k in watched):
        return
    print(
        f"faults: {stats['crc_failures']} CRC failures, "
        f"{stats['io_retries']} retries, "
        f"{stats['quarantined_blocks']} quarantined block(s); "
        f"{stats['degraded_points']} degraded / "
        f"{stats['dropped_points']} dropped point(s)"
    )
    if stats.get("partial_chunks"):
        chunks = stats["partial_chunks"]
        shown = ", ".join(str(c) for c in chunks[:8])
        more = f" (+{len(chunks) - 8} more)" if len(chunks) > 8 else ""
        print(f"partial chunks: {shown}{more}")


def _cmd_batch(args) -> int:
    fs = SimulatedPFS.load(args.snapshot)
    store = _open_store(fs, args)
    try:
        queries = [_parse_query_spec(spec) for spec in args.spec]
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    batch = store.query_many(queries)
    for i, result in enumerate(batch):
        print(
            f"query {i}: {result.n_results} results; "
            f"response {result.times.total:.4f} s simulated "
            f"(io {result.times.io:.4f}, "
            f"decompression {result.times.decompression:.4f}); "
            f"block hits/misses {result.stats['cache_hits']}"
            f"/{result.stats['cache_misses']}"
        )
    print(
        f"batch of {len(batch)}: {batch.stats['n_results']} results; "
        f"aggregate response {batch.times.total:.4f} s simulated; "
        f"{batch.stats['blocks_decoded']} blocks decoded for "
        f"{batch.stats['cache_hits'] + batch.stats['cache_misses']} block requests"
    )
    if "cache" in batch.stats:
        cache = batch.stats["cache"]
        print(
            f"cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['evictions']} evictions, "
            f"{cache['current_bytes']}/{cache['capacity_bytes']} bytes"
        )
    _print_fault_stats(batch.stats)
    return 0


def _cmd_refine(args) -> int:
    fs = SimulatedPFS.load(args.snapshot)
    store = _open_store(fs, args)
    try:
        levels = [int(level) for level in args.levels.split(",") if level.strip()]
    except ValueError:
        print(f"error: bad --levels {args.levels!r} (expected e.g. 2,4,7)")
        return 2
    if not levels or any(b <= a for a, b in zip(levels, levels[1:])):
        print(f"error: --levels must be strictly ascending, got {args.levels!r}")
        return 2
    value_range = None
    if args.vmin is not None or args.vmax is not None:
        value_range = (
            args.vmin if args.vmin is not None else -np.inf,
            args.vmax if args.vmax is not None else np.inf,
        )
    query = Query(
        value_range=value_range,
        region=_parse_region(args.region),
        output="values",
        # With --tol the session derives its own ladder from the
        # per-chunk bounds; --levels only drives the tol-less path.
        plod_level=7 if args.tol is not None else levels[0],
        tol=args.tol,
        tol_metric=args.tol_metric,
    )
    try:
        with store.open_session(query) as session:
            if args.tol is not None:
                for result in session.progressive_results():
                    stats = result.stats
                    print(
                        f"step at level {session.level}: "
                        f"{result.n_results} results; "
                        f"response {result.times.total:.4f} s simulated; "
                        f"{stats['bytes_read']} bytes read, "
                        f"{stats['bytes_reused']} raw bytes reused"
                    )
                    _print_tol_stats(stats)
                    _print_fault_stats(stats)
            else:
                for level in levels[1:]:
                    session.refine(level)
                for level, result in zip(levels, session.results):
                    stats = result.stats
                    print(
                        f"level {level}: {result.n_results} results; "
                        f"response {result.times.total:.4f} s simulated; "
                        f"{stats['bytes_read']} bytes read, "
                        f"{stats['bytes_reused']} raw bytes reused"
                    )
                    _print_fault_stats(stats)
            final = session.result.stats
            print(
                f"session: {session.refine_steps} refine step(s), "
                f"{session.bytes_reused} raw bytes reused, "
                f"{final['coalesced_reads']} coalesced read(s), "
                f"{final['readahead_hits']} readahead hit(s)"
            )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    return 0


def _cmd_stats(args) -> int:
    fs = SimulatedPFS.load(args.snapshot)
    store = _open_store(fs, args)
    try:
        queries = [_parse_query_spec(spec) for spec in args.spec]
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    for query in queries:
        store.query(query)
    snapshot = store.runtime_stats()
    if args.shards > 1:
        # Sharded runtime_stats is shaped like the flat store's (shared
        # structures reported once, quarantines unioned), so the same
        # printing below covers both; only the shard map is extra.
        weights = snapshot["shard_weights"]
        total = sum(weights) or 1.0
        print(
            f"shards: {snapshot['n_shards']}, bin bounds "
            f"{snapshot['shard_bounds']}, stored-byte shares "
            + ", ".join(f"{w / total:.0%}" for w in weights)
        )
    print(
        f"executor: {snapshot['n_ranks']} ranks, {snapshot['backend']} backend, "
        f"coalesce_gap={snapshot['coalesce_gap']}, "
        f"readahead={snapshot['readahead']}"
    )
    if "plan_cache" in snapshot:
        pc = snapshot["plan_cache"]
        print(
            f"plan cache: {pc['hits']} hits, {pc['misses']} misses, "
            f"{pc['size']}/{pc['capacity']} plans held"
        )
    else:
        print("plan cache: disabled")
    if "block_cache" in snapshot:
        bc = snapshot["block_cache"]
        print(
            f"block cache: {bc['hits']} hits, {bc['misses']} misses, "
            f"{bc['evictions']} evictions, "
            f"{bc['current_bytes']}/{bc['capacity_bytes']} bytes, "
            f"{bc['pinned_blocks']} pinned block(s)"
        )
    else:
        print("block cache: disabled")
    quarantine = snapshot["quarantine"]
    if quarantine:
        print(f"quarantine: {len(quarantine)} block(s)")
        for extent, reason in quarantine.items():
            print(f"  {extent}: {reason}")
    else:
        print("quarantine: empty")
    return 0


def _cmd_serve_replay(args) -> int:
    from repro.harness.workloads import WorkloadGenerator
    from repro.server import (
        BrokerConfig,
        BrokerCore,
        open_loop_events,
        replay_closed_loop,
        replay_open_loop,
    )

    fs = SimulatedPFS.load(args.snapshot)
    store = _open_store(fs, args)
    # Region workloads need only the shape; the quantile table is for
    # value constraints, which this trace does not use.
    gen = WorkloadGenerator(
        shape=store.shape, quantiles=np.array([0.0, 1.0]), seed=args.seed
    )
    regions = gen.overlapping_region_constraints(
        args.selectivity, args.tenants * args.queries
    )
    # Deal the drifting walk round-robin so consecutive (overlapping)
    # boxes land on different tenants: cross-tenant dedup, not mere
    # per-tenant locality, is what the broker is for.
    tenant_queries = {
        f"tenant-{t:03d}": [
            Query(region=regions[i], output="values")
            for i in range(t, len(regions), args.tenants)
        ]
        for t in range(args.tenants)
    }
    config = BrokerConfig(
        max_inflight=args.max_inflight,
        quantum_bytes=int(args.quantum_kb * 1024),
        max_pending_bytes=(
            int(args.max_pending_mb * (1 << 20)) if args.max_pending_mb else None
        ),
    )
    core = BrokerCore(store, config)
    if args.mode == "open":
        events = open_loop_events(tenant_queries, rate=args.rate, seed=args.seed)
        report = replay_open_loop(core, events)
    else:
        report = replay_closed_loop(
            core, tenant_queries, think_time=args.think_time
        )
    summary = report.as_dict()
    print(
        f"{args.mode}-loop replay: {summary['n_requests']} requests from "
        f"{args.tenants} tenant(s), {summary['rounds']} round(s), "
        f"makespan {summary['makespan_s']:.4f} s simulated"
    )
    print(
        f"latency: p50 {summary['latency_p50_s']:.4f} s, "
        f"p99 {summary['latency_p99_s']:.4f} s, "
        f"mean {summary['latency_mean_s']:.4f} s"
    )
    print(
        f"fetch-merge: {summary['blocks_decoded']} blocks decoded for "
        f"{summary['blocks_decoded'] + summary['cache_hits']} block requests, "
        f"dedup rate {summary['dedup_rate']:.1%}, "
        f"{summary['bytes_read']} bytes read"
    )
    if summary["rejected_retries"] or summary["dropped"]:
        print(
            f"admission: {summary['rejected_retries']} rejection(s) retried, "
            f"{summary['dropped']} request(s) dropped"
        )
    return 0


def _cmd_index(args) -> int:
    from repro.index import HBIndex, build_from_store, hbi_path, wah_from_positions

    fs = SimulatedPFS.load(args.snapshot)
    store = MLOCStore.open(fs, args.root, args.variable)
    path = hbi_path(store.root)

    if args.action == "build":
        options = {}
        if args.leaf_span is not None:
            options["leaf_span"] = args.leaf_span
        if args.fanout is not None:
            options["fanout"] = args.fanout
        try:
            hbi = build_from_store(store, **options)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        blob = hbi.to_bytes()
        fs.write_file(path, blob)
        fs.save(args.snapshot)
        print(
            f"built {path}: {len(blob)} bytes "
            f"(leaf_span={hbi.leaf_span}, fanout={hbi.fanout})"
        )
        return 0

    if fs.exists(path):
        hbi = HBIndex.from_bytes(bytes(fs.session().open(path).read_all()))
        source, hbi_bytes = "persisted", fs.size(path)
    else:
        hbi = store.hbi  # lazy rebuild from the flat bin index
        source, hbi_bytes = "rebuilt in memory (no persisted record)", len(
            hbi.to_bytes()
        )
    try:
        hbi.validate()
    except ValueError as exc:
        print(f"error: index fails validation: {exc}")
        return 1
    s = hbi.stats()
    print(f"hierarchical index {path} ({source}): {hbi_bytes} bytes")
    print(
        f"tree: {s['n_bins']} bins x {s['n_runs']} chunk-runs of "
        f"{s['leaf_span']} chunks, {s['n_levels']} levels (fanout "
        f"{s['fanout']}), {s['nonempty_leaves']}/{s['n_leaves']} "
        f"non-empty leaves, {s['interior_nodes']} interior nodes"
    )
    print(
        f"breakdown: {s['leaf_bytes']} WAH leaf bytes, "
        f"{s['summary_bytes']} cardinality-summary bytes"
    )
    flat_bytes = sum(
        fs.size(store.files.index_path(b)) for b in range(s["n_bins"])
    )
    print(
        f"vs flat MLOC bin index: {flat_bytes} bytes "
        f"(hierarchical = {hbi_bytes / flat_bytes:.0%})"
    )
    # FastBit-style baseline: one whole-domain WAH bitmap per bin, the
    # layout a standalone bitmap index would persist (Table I's blowup).
    fastbit_bytes = sum(
        wah_from_positions(
            hbi.bin_positions(b, store.grid, store.curve), store.n_elements
        ).nbytes
        for b in range(s["n_bins"])
    )
    print(
        f"vs FastBit-style whole-domain WAH index: {fastbit_bytes} bytes "
        f"(hierarchical = {hbi_bytes / fastbit_bytes:.0%})"
    )
    print("validate: OK")
    return 0


def _cmd_relayout(args) -> int:
    from dataclasses import replace as dc_replace

    fs = SimulatedPFS.load(args.snapshot)
    source = MLOCStore.open(fs, args.root, args.variable)
    new_config = dc_replace(
        source.meta.config,
        level_order=args.order,
        codec="zlib-bytes" if "M" in args.order else source.meta.config.codec,
        n_bins=args.bins if args.bins is not None else source.meta.config.n_bins,
    )
    if "M" in args.order and source.meta.config.level_order == "VS":
        print("note: switching a whole-value store to a PLoD order uses zlib-bytes")
    report = relayout(
        fs,
        args.root,
        args.variable,
        args.target_root,
        new_config,
        write_backend=args.write_backend,
        write_workers=args.write_workers,
    )
    fs.save(args.snapshot)
    print(
        f"migrated {args.root}/{args.variable} ({report.source_order}) -> "
        f"{args.target_root}/{args.variable} ({report.target_order}); "
        f"stored at {report.write_report.total_ratio:.0%} of raw"
        + (" [approximate: lossy source]" if report.approximate else "")
    )
    _print_shard_balance(fs, args.target_root, args.variable, args.shards)
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "info": _cmd_info,
    "fsck": _cmd_fsck,
    "query": _cmd_query,
    "batch": _cmd_batch,
    "refine": _cmd_refine,
    "stats": _cmd_stats,
    "serve-replay": _cmd_serve_replay,
    "index": _cmd_index,
    "relayout": _cmd_relayout,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
