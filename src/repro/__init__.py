"""MLOC reproduction: Multi-level Layout Optimization framework for
Compressed scientific data exploration (Gong et al., ICPP 2012).

Quick start::

    import numpy as np
    from repro import SimulatedPFS, MLOCWriter, MLOCStore, Query, mloc_col
    from repro.datasets import gts_like

    fs = SimulatedPFS()
    data = gts_like((512, 512), seed=7)
    MLOCWriter(fs, "/mloc/gts", mloc_col(chunk_shape=(32, 32))).write(
        data, variable="potential"
    )
    store = MLOCStore.open(fs, "/mloc/gts", "potential")
    hot = store.query(Query(value_range=(0.9, 2.0), output="positions"))
    print(hot.n_results, hot.times.total)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    ChunkGrid,
    ComponentTimes,
    DatasetSnapshot,
    InSituStager,
    MLOCConfig,
    MLOCDataset,
    MLOCStore,
    MLOCWriter,
    MultiVarResult,
    Query,
    QueryResult,
    WriteReport,
    mloc_col,
    mloc_isa,
    mloc_iso,
    multi_variable_query,
)
from repro.pfs import PFSCostModel, SimulatedPFS

__version__ = "1.0.0"

__all__ = [
    "ChunkGrid",
    "ComponentTimes",
    "DatasetSnapshot",
    "InSituStager",
    "MLOCConfig",
    "MLOCDataset",
    "MLOCStore",
    "MLOCWriter",
    "MultiVarResult",
    "PFSCostModel",
    "Query",
    "QueryResult",
    "SimulatedPFS",
    "WriteReport",
    "__version__",
    "mloc_col",
    "mloc_isa",
    "mloc_iso",
    "multi_variable_query",
]
