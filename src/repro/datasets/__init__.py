"""Synthetic GTS-like and S3D-like datasets (DESIGN.md §2 substitutions)."""

from repro.datasets.synthetic import (
    aggregate_timesteps,
    gts_like,
    gts_particle_timesteps,
    replicate_to,
    s3d_like,
    s3d_velocity_triplet,
)

__all__ = [
    "aggregate_timesteps",
    "gts_like",
    "gts_particle_timesteps",
    "replicate_to",
    "s3d_like",
    "s3d_velocity_triplet",
]
