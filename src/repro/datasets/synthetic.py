"""Synthetic stand-ins for the paper's GTS and S3D datasets.

The paper evaluates on one timestep of GTS gyrokinetic fusion output
(1-D particle data aggregated into a 2-D space) and one of S3D
turbulent-combustion output (3-D), both replicated to reach the target
sizes; queries use *random* value/spatial constraints and report
averages, so only two statistical properties of the data matter to the
experiments:

* the marginal value distribution (drives bin boundaries, bin overlap
  of value constraints, and compressibility of high byte planes);
* spatial smoothness / correlation length (drives the clustering of
  qualifying points, Hilbert-order locality, and WAH bitmap sizes).

Both generators synthesize those properties with superposed random
Fourier modes (a standard turbulence surrogate) plus a small white
noise floor that keeps low mantissa bytes incompressible — the
characteristic scientific-data profile ISOBAR/ISABELA are built for.
Values are mapped into physically plausible positive ranges
(electrostatic potential fluctuations for GTS; flame temperatures for
S3D) so PLoD relative-error behaviour matches Table VI.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "aggregate_timesteps",
    "gts_like",
    "gts_particle_timesteps",
    "replicate_to",
    "s3d_like",
    "s3d_velocity_triplet",
]


def _fourier_field(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    n_modes: int,
    max_wavenumber: float,
    spectrum_slope: float,
) -> np.ndarray:
    """Superpose random Fourier modes with a decaying amplitude spectrum."""
    ndims = len(shape)
    axes = [np.linspace(0.0, 2.0 * np.pi, s, endpoint=False) for s in shape]
    field = np.zeros(shape, dtype=np.float64)
    phase = np.empty(shape, dtype=np.float64)
    for _ in range(n_modes):
        k = rng.uniform(1.0, max_wavenumber, size=ndims)
        amp = k.mean() ** spectrum_slope
        phi = rng.uniform(0.0, 2.0 * np.pi)
        # phase = sum_d k_d * x_d, built by broadcasting 1-D axes.
        phase.fill(phi)
        for d in range(ndims):
            axis_shape = [1] * ndims
            axis_shape[d] = shape[d]
            phase += k[d] * axes[d].reshape(axis_shape)
        field += amp * np.sin(phase)
    return field


def _normalize(field: np.ndarray, lo: float, hi: float) -> np.ndarray:
    fmin, fmax = float(field.min()), float(field.max())
    if fmax == fmin:
        return np.full_like(field, (lo + hi) / 2.0)
    return lo + (field - fmin) * ((hi - lo) / (fmax - fmin))


def gts_like(
    shape: tuple[int, int],
    seed: int = 0,
    *,
    n_modes: int = 48,
    noise: float = 1e-4,
) -> np.ndarray:
    """2-D GTS-like electrostatic potential field.

    Drift-wave-like anisotropic modes (finer structure along axis 1,
    mimicking the toroidal direction) over values in [0.5, 4.5] —
    positive and bounded away from zero so relative-error PLoD metrics
    are well defined.
    """
    if len(shape) != 2:
        raise ValueError(f"gts_like expects a 2-D shape, got {shape}")
    rng = np.random.default_rng(seed)
    coarse = _fourier_field(shape, rng, n_modes, max_wavenumber=9.0, spectrum_slope=-1.2)
    fine = _fourier_field(shape, rng, n_modes // 2, max_wavenumber=40.0, spectrum_slope=-1.8)
    field = coarse + 0.35 * fine
    field = _normalize(field, 0.5, 4.5)
    field += rng.normal(0.0, noise, size=shape)
    return field


def s3d_like(
    shape: tuple[int, int, int],
    seed: int = 0,
    *,
    n_modes: int = 40,
    noise: float = 5e-2,
) -> np.ndarray:
    """3-D S3D-like flame temperature field.

    A tanh flame sheet (burnt ~2200 K vs unburnt ~800 K) wrinkled by
    turbulent modes, with small-scale fluctuations superposed.
    """
    if len(shape) != 3:
        raise ValueError(f"s3d_like expects a 3-D shape, got {shape}")
    rng = np.random.default_rng(seed)
    wrinkle = _fourier_field(shape, rng, n_modes, max_wavenumber=6.0, spectrum_slope=-1.0)
    x = np.linspace(-1.0, 1.0, shape[0]).reshape(-1, 1, 1)
    front = np.tanh((x + 0.12 * _normalize(wrinkle, -1.0, 1.0)) * 6.0)
    temperature = 1500.0 + 700.0 * front  # 800 K .. 2200 K
    turb = _fourier_field(shape, rng, n_modes // 2, max_wavenumber=25.0, spectrum_slope=-1.6)
    temperature += 60.0 * _normalize(turb, -1.0, 1.0)
    temperature += rng.normal(0.0, noise, size=shape)
    return temperature


def s3d_velocity_triplet(
    shape: tuple[int, int, int], seed: int = 0, *, n_modes: int = 36
) -> dict[str, np.ndarray]:
    """Correlated velocity components ``vu``, ``vv``, ``vw`` (Table VI).

    Built from a shared solenoidal-like base plus independent
    fluctuations, giving the correlated-but-distinct triplet the
    K-means accuracy experiment clusters on.

    Real turbulent velocity magnitudes are strongly skewed — most of
    the field sits at modest speeds with a long tail of fast flame-jet
    regions spanning several floating-point binades.  That skew is
    what makes byte-truncated precision useful (the absolute error of
    a small value is tiny relative to the field's full range, so few
    points migrate across equal-width histogram bins); a narrow
    uniform range would not reproduce Table VI.  The generators below
    therefore map the smooth mode superposition through an exponential
    onto ``[v_floor, v_peak]``.
    """
    rng = np.random.default_rng(seed)
    base = _fourier_field(shape, rng, n_modes, max_wavenumber=8.0, spectrum_slope=-1.1)
    out: dict[str, np.ndarray] = {}
    ranges = {"vu": (0.2, 180.0), "vv": (0.05, 120.0), "vw": (0.05, 140.0)}
    for name, (v_floor, v_peak) in ranges.items():
        own = _fourier_field(shape, rng, n_modes // 2, max_wavenumber=20.0, spectrum_slope=-1.5)
        field = _normalize(0.6 * base + 0.4 * own, 0.0, 1.0)
        velocity = v_floor * (v_peak / v_floor) ** field  # log-uniform-ish
        velocity += rng.normal(0.0, 1e-4 * v_peak, size=shape)
        out[name] = np.abs(velocity)
    return out


def replicate_to(field: np.ndarray, target_shape: tuple[int, ...]) -> np.ndarray:
    """Tile a field to a larger shape, as the paper replicates datasets.

    Each target extent must be a multiple of the source extent.  A tiny
    deterministic per-tile perturbation (scaled to ~1e-6 of the value
    range) breaks exact periodicity so that bin boundaries and
    compression don't see artificially identical tiles.
    """
    if len(target_shape) != field.ndim:
        raise ValueError(
            f"target rank {len(target_shape)} != field rank {field.ndim}"
        )
    reps = []
    for extent, src in zip(target_shape, field.shape):
        if extent % src != 0:
            raise ValueError(
                f"target extent {extent} is not a multiple of source extent {src}"
            )
        reps.append(extent // src)
    tiled = np.tile(field, reps)
    span = float(field.max() - field.min()) or 1.0
    rng = np.random.default_rng(int(np.prod(target_shape)) % (2**31))
    tiled += rng.normal(0.0, 1e-6 * span, size=tiled.shape)
    return tiled


def gts_particle_timesteps(
    n_steps: int, n_per_step: int, seed: int = 0
) -> list[np.ndarray]:
    """1-D per-timestep GTS-like particle quantities.

    GTS output is natively 1-D (per-particle values); the paper forms
    its 2-D data space by aggregating multiple timesteps (§IV-A1).
    Each step evolves smoothly from the last (particles drift), so the
    aggregated array is correlated along both axes.
    """
    if n_steps <= 0 or n_per_step <= 0:
        raise ValueError("n_steps and n_per_step must be positive")
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(0.0, 0.05, n_per_step)) + 2.0
    steps = []
    state = base
    for _ in range(n_steps):
        state = state + rng.normal(0.0, 0.01, n_per_step)
        state = 0.98 * state + 0.02 * base  # mean-reverting drift
        steps.append(state.copy())
    return steps


def aggregate_timesteps(steps: list[np.ndarray]) -> np.ndarray:
    """Stack 1-D timestep arrays into the paper's 2-D data space.

    Row *t* of the result is timestep *t*; all steps must be 1-D and of
    equal length.
    """
    if not steps:
        raise ValueError("need at least one timestep")
    lengths = {s.shape for s in steps}
    if len(lengths) != 1 or steps[0].ndim != 1:
        raise ValueError(f"timesteps must be equal-length 1-D arrays, got {lengths}")
    return np.stack([np.asarray(s, dtype=np.float64) for s in steps], axis=0)
