"""Vectorized LEB128-style variable-length integer packing.

The per-bin position indices in MLOC are stored as *deltas* between
consecutive (sorted) linear element positions.  Deltas are small, so a
variable-length encoding followed by a general-purpose compressor (zlib)
yields an index of roughly 20% of the raw data size, matching the
index-size column of Table I in the paper.

A pure-Python byte-at-a-time varint codec would be hopelessly slow for
millions of positions, so both directions are vectorized with NumPy:

* ``varint_encode_array`` computes the byte-length of every value up
  front, allocates one output buffer, and scatters the payload bytes of
  each length class with masked writes.
* ``varint_decode_array`` identifies continuation bits on the whole
  buffer at once, segments the stream into values via a cumulative sum,
  and horners the 7-bit groups back together.
"""

from __future__ import annotations

import numpy as np

__all__ = ["varint_encode_array", "varint_decode_array"]

#: Maximum bytes a uint64 can occupy in LEB128 (ceil(64 / 7)).
_MAX_LEN = 10


def _byte_lengths(values: np.ndarray) -> np.ndarray:
    """Return the LEB128 encoded length (in bytes) of each value."""
    lengths = np.ones(values.shape, dtype=np.int64)
    v = values >> np.uint64(7)
    while np.any(v):
        lengths += (v != 0).astype(np.int64)
        v = v >> np.uint64(7)
    return lengths


def varint_encode_array(values: np.ndarray) -> bytes:
    """Encode a 1-D array of unsigned integers as a LEB128 byte stream.

    Parameters
    ----------
    values:
        1-D array of non-negative integers.  Converted to ``uint64``.

    Returns
    -------
    bytes
        The concatenated varint encoding of all values, in order.
    """
    values = np.ascontiguousarray(values)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {values.shape}")
    if values.size == 0:
        return b""
    if np.issubdtype(values.dtype, np.signedinteger) and np.any(values < 0):
        raise ValueError("varint encoding requires non-negative values")
    v = values.astype(np.uint64)

    lengths = _byte_lengths(v)
    total = int(lengths.sum())
    out = np.zeros(total, dtype=np.uint8)
    # Offsets of the first byte of each value in the output stream.
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))

    max_len = int(lengths.max())
    remaining = v.copy()
    for byte_i in range(max_len):
        mask = lengths > byte_i
        positions = starts[mask] + byte_i
        payload = (remaining[mask] & np.uint64(0x7F)).astype(np.uint8)
        # Continuation bit set on every byte except the last of a value.
        cont = (lengths[mask] - 1 > byte_i).astype(np.uint8) << 7
        out[positions] = payload | cont
        remaining[mask] = remaining[mask] >> np.uint64(7)
    return out.tobytes()


def varint_decode_array(buffer: bytes | np.ndarray, count: int | None = None) -> np.ndarray:
    """Decode a LEB128 byte stream back to a ``uint64`` array.

    Parameters
    ----------
    buffer:
        The byte stream produced by :func:`varint_encode_array`.
    count:
        Optional expected number of values; used as a sanity check.

    Returns
    -------
    numpy.ndarray
        1-D ``uint64`` array of the decoded values.
    """
    raw = np.frombuffer(buffer, dtype=np.uint8) if not isinstance(buffer, np.ndarray) else buffer
    if raw.size == 0:
        result = np.empty(0, dtype=np.uint64)
        if count not in (None, 0):
            raise ValueError(f"expected {count} values, decoded 0")
        return result

    is_last = (raw & 0x80) == 0
    if not is_last[-1]:
        raise ValueError("truncated varint stream: final byte has continuation bit set")
    # value_id[i] = index of the value byte i belongs to.
    value_id = np.zeros(raw.size, dtype=np.int64)
    value_id[1:] = np.cumsum(is_last)[:-1]
    n_values = int(value_id[-1]) + 1
    if count is not None and n_values != count:
        raise ValueError(f"expected {count} values, decoded {n_values}")

    # Position of each byte within its value (0 = least significant group).
    starts_mask = np.ones(raw.size, dtype=bool)
    starts_mask[1:] = is_last[:-1]
    start_positions = np.flatnonzero(starts_mask)
    within = np.arange(raw.size, dtype=np.int64) - start_positions[value_id]
    if np.any(within >= _MAX_LEN):
        raise ValueError("varint value exceeds 64 bits")

    groups = (raw & 0x7F).astype(np.uint64) << (np.uint64(7) * within.astype(np.uint64))
    out = np.zeros(n_values, dtype=np.uint64)
    np.add.at(out, value_id, groups)
    return out
