"""Fixed-width bit packing for small unsigned integers.

ISABELA's permutation index stores, per window element, its rank within
the sorted window — an integer below the window length.  Packing those
at ``ceil(log2(window))`` bits per value (10 bits for the default
1024-element window) instead of whole bytes is what brings the ISABELA
data ratio to the ~20% the paper reports (Table I).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_uints", "unpack_uints", "bits_required"]


def bits_required(max_value: int) -> int:
    """Bits needed to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return max(int(max_value).bit_length(), 1)


def pack_uints(values: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integers at ``bits`` bits per value, MSB first.

    Supports ``1 <= bits <= 32``.  The final byte is zero-padded.
    """
    if not (1 <= bits <= 32):
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    if values.size == 0:
        return b""
    v = values.astype(np.uint64)
    if np.any(v >> np.uint64(bits)):
        raise ValueError(f"value does not fit in {bits} bits")
    # Expand each value to its `bits` binary digits, MSB first.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((v[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bit_matrix.reshape(-1)).tobytes()


def unpack_uints(buffer: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_uints`; returns ``uint32`` values."""
    if not (1 <= bits <= 32):
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    if count == 0:
        return np.empty(0, dtype=np.uint32)
    raw = np.frombuffer(buffer, dtype=np.uint8)
    bit_stream = np.unpackbits(raw)
    needed = count * bits
    if bit_stream.size < needed:
        raise ValueError(
            f"buffer holds {bit_stream.size} bits, need {needed} for {count} values"
        )
    digits = bit_stream[:needed].reshape(count, bits).astype(np.uint32)
    weights = (np.uint32(1) << np.arange(bits - 1, -1, -1, dtype=np.uint32))
    return (digits * weights[None, :]).sum(axis=1, dtype=np.uint32)
