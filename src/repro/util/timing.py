"""Lightweight CPU timers used to attribute real work to query components.

MLOC's evaluation decomposes every data access into I/O, decompression
and reconstruction (Fig. 6 of the paper).  I/O seconds in this
reproduction come from the simulated PFS cost model
(:mod:`repro.pfs.costmodel`); decompression and reconstruction are real
computation, measured with these timers.

The clock is :func:`time.process_time` — CPU seconds of this process —
not wall time: component times get multiplied by the dataset
magnification factor (DESIGN.md §5), so scheduling delays from
*other* processes on the machine would otherwise be amplified into
spurious seconds.  The measured sections are single-threaded NumPy
work, for which CPU time equals busy wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "TimerRegistry"]


@dataclass
class Stopwatch:
    """Accumulating CPU-time stopwatch usable as a context manager.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(100))
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started: float | None = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.process_time()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        delta = time.process_time() - self._started
        self.elapsed += delta
        self._started = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class TimerRegistry:
    """Named collection of stopwatches.

    The query executor creates one registry per simulated MPI rank so
    the per-component critical path (max over ranks) can be reported.
    """

    timers: dict[str, Stopwatch] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Stopwatch:
        if name not in self.timers:
            self.timers[name] = Stopwatch()
        return self.timers[name]

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never used)."""
        timer = self.timers.get(name)
        return timer.elapsed if timer is not None else 0.0

    def as_dict(self) -> dict[str, float]:
        return {name: sw.elapsed for name, sw in self.timers.items()}
