"""Argument-validation helpers shared across the library.

All public entry points validate their inputs eagerly and raise
``ValueError``/``TypeError`` with actionable messages, rather than
letting NumPy fail deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_dtype",
    "check_positive",
    "check_power_of_two",
    "check_shape_chunks",
]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_dtype(name: str, array: np.ndarray, dtype: type) -> None:
    """Raise ``TypeError`` unless ``array`` has the exact dtype ``dtype``."""
    if array.dtype != np.dtype(dtype):
        raise TypeError(f"{name} must have dtype {np.dtype(dtype)}, got {array.dtype}")


def check_shape_chunks(shape: tuple[int, ...], chunk_shape: tuple[int, ...]) -> None:
    """Validate that ``chunk_shape`` tiles ``shape`` exactly.

    MLOC's layout kernels assume the dataset is an exact grid of chunks;
    ragged edges would complicate the curve ordering without adding
    anything to the reproduction, so we require exact tiling (the
    synthetic datasets are generated at tiling-friendly shapes).
    """
    if len(shape) != len(chunk_shape):
        raise ValueError(
            f"chunk rank {len(chunk_shape)} does not match data rank {len(shape)}"
        )
    for dim, (extent, chunk) in enumerate(zip(shape, chunk_shape)):
        if chunk <= 0:
            raise ValueError(f"chunk_shape[{dim}] must be positive, got {chunk}")
        if extent % chunk != 0:
            raise ValueError(
                f"dimension {dim}: extent {extent} is not a multiple of chunk {chunk}"
            )
