"""Shared utilities: varint packing, timers, validation helpers.

These are small, dependency-free building blocks used across the MLOC
reproduction.  They are deliberately kept separate from the domain
packages so that low-level codecs (``repro.compression``,
``repro.index``) do not import anything above them in the stack.
"""

from repro.util.timing import Stopwatch, TimerRegistry
from repro.util.validation import (
    check_dtype,
    check_positive,
    check_power_of_two,
    check_shape_chunks,
)
from repro.util.varint import (
    varint_decode_array,
    varint_encode_array,
)

__all__ = [
    "Stopwatch",
    "TimerRegistry",
    "check_dtype",
    "check_positive",
    "check_power_of_two",
    "check_shape_chunks",
    "varint_decode_array",
    "varint_encode_array",
]
