"""Pass-through codecs: the uncompressed configuration.

MLOC treats compression as one optional pipeline level; disabling it
(e.g. to isolate the layout levels in ablation benchmarks) plugs these
identity codecs in.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import ByteCodec, FloatCodec, decode_guard, register_codec

__all__ = ["NullByteCodec", "NullFloatCodec"]


@register_codec("null-bytes")
class NullByteCodec(ByteCodec):
    """Identity byte codec (stateless, thread-safe)."""

    lossless = True
    decode_throughput = 8e9  # memcpy

    def encode(self, data) -> bytes:
        return bytes(data)

    @decode_guard
    def decode(self, payload: bytes, raw_len: int) -> bytes:
        if len(payload) != raw_len:
            raise ValueError(f"payload is {len(payload)} bytes, expected {raw_len}")
        return bytes(payload)


@register_codec("null-float")
class NullFloatCodec(FloatCodec):
    """Identity float codec (stores raw little-endian float64)."""

    lossless = True
    decode_throughput = 8e9  # memcpy

    def encode(self, values: np.ndarray) -> bytes:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        return values.tobytes()

    @decode_guard
    def decode(self, payload: bytes, count: int) -> np.ndarray:
        if len(payload) != count * 8:
            raise ValueError(f"payload is {len(payload)} bytes, expected {count * 8}")
        return np.frombuffer(payload, dtype=np.float64).copy()
