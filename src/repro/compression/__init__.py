"""Pluggable compression codecs (Section III-B4).

``zlib-bytes`` compresses PLoD byte columns (MLOC-COL); ``isobar`` and
``isabela`` are the floating-point-aware lossless/lossy codecs behind
MLOC-ISO and MLOC-ISA; ``fpzip-like`` fills the FPZip plugin slot; the
null codecs disable compression for ablations.
"""

from repro.compression.base import (
    ByteCodec,
    CodecDecodeError,
    FloatCodec,
    codec_names,
    from_spec,
    make_codec,
    register_codec,
)
from repro.compression.fpzip_like import FpzipLikeCodec
from repro.compression.isabela import IsabelaCodec
from repro.compression.isobar import IsobarCodec, compress_planes, decompress_planes
from repro.compression.null_codec import NullByteCodec, NullFloatCodec
from repro.compression.zlib_codec import ZlibByteCodec, ZlibFloatCodec

__all__ = [
    "ByteCodec",
    "CodecDecodeError",
    "FloatCodec",
    "FpzipLikeCodec",
    "IsabelaCodec",
    "IsobarCodec",
    "NullByteCodec",
    "NullFloatCodec",
    "ZlibByteCodec",
    "ZlibFloatCodec",
    "codec_names",
    "compress_planes",
    "decompress_planes",
    "from_spec",
    "make_codec",
    "register_codec",
]
