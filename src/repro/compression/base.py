"""Codec interfaces and registry (Section III-B4).

MLOC gives compression "first-class treatment": any technique can be
plugged into the pipeline level that compresses the smallest layout
units.  Two interfaces exist because the units differ by configuration:

* :class:`ByteCodec` — compresses opaque byte streams.  Used when PLoD
  splits values into byte planes (MLOC-COL): each plane is an ordinary
  buffer, so a general-purpose compressor applies.
* :class:`FloatCodec` — compresses arrays of float64 values.  Used when
  values are kept whole (MLOC-ISO, MLOC-ISA): floating-point-aware
  codecs exploit the number representation.

The registry maps codec names (as used by :class:`repro.core.MLOCConfig`)
to constructors so configurations are serializable.

Concurrency contract
--------------------
The parallel writer offloads ``encode`` calls to a thread pool, so
every registered codec must satisfy two rules:

* ``encode`` is **deterministic**: identical input produces identical
  payload bytes regardless of instance, thread, or call history — the
  writer's bit-identical-output guarantee (DESIGN.md §6) rests on it.
* ``encode`` is safe under **per-worker instances**: the pool builds
  one codec per worker thread via :func:`make_codec`, so instance
  state needs no cross-thread locking.  Codecs that additionally keep
  mutable caches (ISABELA's design matrices) must still guard them,
  because a single instance may also be shared (the read executor
  decodes on a pool with one codec).
* every codec **round-trips through pickle** and exposes a
  ``spec()``/:func:`from_spec` pair: the ``processes`` backends ship
  work to spawned workers as ``(name, params)`` specs, never live
  instances, so derived state (caches, locks) must either pickle
  cleanly or be dropped and rebuilt on unpickle
  (``tests/test_codec_pickle.py`` audits every registered codec).
"""

from __future__ import annotations

import functools
import struct
import zlib
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

__all__ = [
    "ByteCodec",
    "CodecDecodeError",
    "FloatCodec",
    "decode_guard",
    "register_codec",
    "make_codec",
    "from_spec",
    "codec_names",
]


class CodecDecodeError(ValueError):
    """A payload could not be decoded (truncated, corrupt, or malformed).

    Every registered codec raises exactly this type from ``decode`` on
    bad input, whatever the underlying failure (``zlib.error``,
    ``struct.error``, length mismatch, bad mode byte, ...), so callers
    — the executor's verified read path and ``fsck`` — can treat
    "payload does not decode" as one condition.  Subclasses
    ``ValueError`` for backward compatibility with callers that caught
    the historical mix.
    """


#: Failure types a decoder may legitimately hit on corrupt input.
_DECODE_FAILURES = (ValueError, IndexError, OverflowError, struct.error, zlib.error)


def decode_guard(fn: Callable) -> Callable:
    """Wrap a codec ``decode`` method to normalize failures.

    Any :data:`_DECODE_FAILURES` escaping ``fn`` is re-raised as
    :class:`CodecDecodeError` with the codec name and payload size
    attached; an already-normalized error passes through untouched.
    """

    @functools.wraps(fn)
    def wrapped(self, payload, n):
        try:
            return fn(self, payload, n)
        except CodecDecodeError:
            raise
        except _DECODE_FAILURES as exc:
            raise CodecDecodeError(
                f"{self.name}: cannot decode {len(payload)}-byte payload: {exc}"
            ) from exc

    return wrapped


class _SpecMixin:
    """Portable ``(name, params)`` identity of a codec instance.

    :func:`make_codec` stamps the constructor params onto every
    instance it builds, so ``spec()`` captures exactly what is needed
    to rebuild an equivalent codec anywhere — in particular inside a
    spawned ``processes``-backend worker, where live instances never
    travel.  ``params`` is a sorted, hashable items tuple, usable
    directly as a worker-side cache key.
    """

    def spec(self) -> tuple[str, tuple]:
        """``(name, params_items)`` rebuilding this codec via :func:`from_spec`."""
        return self.name, getattr(self, "_spec_params", ())


class ByteCodec(_SpecMixin, ABC):
    """Compressor for opaque byte buffers."""

    #: Registry name; set by subclasses.
    name: str = "abstract-byte"
    #: Whether decode(encode(x)) == x exactly.
    lossless: bool = True
    #: Sustained decode rate in bytes of *raw output* per second,
    #: calibrated on ~1 MB payloads (the paper-scale compression-block
    #: size).  The query executor models decompression time as
    #: ``scaled_raw_bytes / decode_throughput`` so that per-call Python
    #: overhead on the scaled-down blocks does not distort the
    #: paper-equivalent component times (DESIGN.md §5).
    decode_throughput: float = 300e6

    @abstractmethod
    def encode(self, data) -> bytes:
        """Compress ``data`` into a self-framed payload.

        ``data`` is any C-contiguous bytes-like buffer — ``bytes``, a
        ``memoryview``, or a 1-D ``uint8`` array — so the writer can
        hand over concatenated views without an intermediate copy.
        """

    @abstractmethod
    def decode(self, payload: bytes, raw_len: int) -> bytes:
        """Recover the original ``raw_len`` bytes from ``payload``."""


class FloatCodec(_SpecMixin, ABC):
    """Compressor for 1-D float64 arrays."""

    name: str = "abstract-float"
    lossless: bool = True
    #: See :attr:`ByteCodec.decode_throughput`.
    decode_throughput: float = 300e6

    @abstractmethod
    def encode(self, values: np.ndarray) -> bytes:
        """Compress a 1-D float64 array into a self-framed payload."""

    @abstractmethod
    def decode(self, payload: bytes, count: int) -> np.ndarray:
        """Recover ``count`` float64 values (exactly, if lossless)."""


_REGISTRY: dict[str, Callable[..., ByteCodec | FloatCodec]] = {}


def register_codec(name: str) -> Callable:
    """Class decorator registering a codec constructor under ``name``."""

    def wrap(cls):
        if name in _REGISTRY:
            raise ValueError(f"codec {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def make_codec(name: str, **params) -> ByteCodec | FloatCodec:
    """Instantiate a registered codec by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    codec = factory(**params)
    codec._spec_params = tuple(sorted(params.items()))
    return codec


def from_spec(spec: tuple[str, tuple]) -> ByteCodec | FloatCodec:
    """Rebuild a codec from a :meth:`_SpecMixin.spec` tuple."""
    name, params_items = spec
    return make_codec(name, **dict(params_items))


def codec_names() -> list[str]:
    """Names of all registered codecs, sorted."""
    return sorted(_REGISTRY)
