"""Zlib byte codec with an incompressibility escape hatch.

MLOC-COL compresses PLoD byte columns with standard Zlib
(Section IV-A2).  The low mantissa byte planes of scientific doubles
are effectively random — the paper notes bytes three through eight are
"regarded as incompressible so that original bytes are stored" — so
each payload carries a one-byte mode flag and falls back to storing the
raw bytes whenever deflate would not actually shrink them.  This keeps
storage bounded *and* makes decompression of those planes nearly free,
which is what Fig. 8's flat decompression line measures.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import ByteCodec, FloatCodec, decode_guard, register_codec

__all__ = ["ZlibByteCodec", "ZlibFloatCodec"]

_MODE_RAW = 0
_MODE_ZLIB = 1


@register_codec("zlib-bytes")
class ZlibByteCodec(ByteCodec):
    """Deflate with a raw-passthrough mode flag.

    Stateless per call (``zlib.compress``/``decompress`` build their
    own stream objects), hence thread-safe and deterministic — the
    parallel writer can share or clone instances freely.
    """

    lossless = True
    decode_throughput = 350e6  # inflate on compressible planes, memcpy on raw

    def __init__(self, level: int = 6) -> None:
        if not (0 <= level <= 9):
            raise ValueError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def encode(self, data) -> bytes:
        # ``data`` may be any contiguous buffer (bytes, uint8 view);
        # zlib consumes it without a copy, and only the incompressible
        # fallback needs the materialized bytes.
        compressed = zlib.compress(data, self.level)
        if len(compressed) < memoryview(data).nbytes:
            return bytes([_MODE_ZLIB]) + compressed
        return bytes([_MODE_RAW]) + (data if isinstance(data, bytes) else bytes(data))

    @decode_guard
    def decode(self, payload: bytes, raw_len: int) -> bytes:
        if len(payload) == 0:
            if raw_len != 0:
                raise ValueError(f"empty payload but raw_len={raw_len}")
            return b""
        mode, body = payload[0], payload[1:]
        if mode == _MODE_RAW:
            out = bytes(body)
        elif mode == _MODE_ZLIB:
            out = zlib.decompress(body)
        else:
            raise ValueError(f"unknown payload mode {mode}")
        if len(out) != raw_len:
            raise ValueError(f"decoded {len(out)} bytes, expected {raw_len}")
        return out


@register_codec("zlib-float")
class ZlibFloatCodec(FloatCodec):
    """Deflate applied to the raw little-endian float64 bytes.

    The straightforward lossless baseline codec for full-value layouts;
    floating-point-aware codecs (ISOBAR, ISABELA) do better on
    scientific data but this is the reference point.
    """

    lossless = True
    decode_throughput = 150e6

    def __init__(self, level: int = 6) -> None:
        self._bytes = ZlibByteCodec(level=level)

    def encode(self, values: np.ndarray) -> bytes:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        return self._bytes.encode(values.tobytes())

    @decode_guard
    def decode(self, payload: bytes, count: int) -> np.ndarray:
        raw = self._bytes.decode(payload, count * 8)
        return np.frombuffer(raw, dtype=np.float64).copy()
