"""ISABELA: lossy B-spline compression of sorted windows.

ISABELA (Lakshminarasimhan et al., Euro-Par 2011) exploits the fact
that *sorting* a window of hard-to-compress turbulence data turns it
into a smooth monotone curve that a low-order B-spline fits extremely
well.  The algorithm, implemented faithfully here:

1. Partition the value stream into fixed-size windows (default 1024).
2. Sort each window; record each element's rank so the original order
   can be restored (the rank index is bit-packed at
   ``ceil(log2 window)`` bits per element — the dominant storage cost,
   ~1.25 bytes/point at the default window).
3. Least-squares fit a cubic B-spline with a fixed coefficient budget
   to the sorted curve (coefficients quantized to float32 *before*
   residuals are computed, so quantization cannot break the bound).
4. Quantize the per-point residuals at ``error_rate * max|window|``
   and store the zig-zag varint + deflate of the quantized stream.

The reconstruction error is bounded by ``0.5 * error_rate *
max|window|`` per point — the user-specified error-rate knob of the
paper.  Windows too short for a stable fit are stored raw (lossless).

Decompression evaluates the spline and applies the inverse
permutation; this extra numerical work is why MLOC-ISA shows the
highest decompression component in Fig. 6 while winning on I/O.
"""

from __future__ import annotations

import struct
import threading
import zlib

import numpy as np
from scipy.interpolate import splev, splrep

from repro.compression.base import FloatCodec, decode_guard, register_codec
from repro.util.bitpack import bits_required, pack_uints, unpack_uints
from repro.util.varint import varint_decode_array, varint_encode_array

__all__ = ["IsabelaCodec"]

_FLAG_SPLINE = 0
_FLAG_RAW = 1
_SPLINE_DEGREE = 3


def _zigzag_encode(q: np.ndarray) -> np.ndarray:
    q = q.astype(np.int64)
    return ((q << 1) ^ (q >> 63)).view(np.uint64)


def _zigzag_decode(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.uint64)
    return ((u >> np.uint64(1)).view(np.int64)) ^ -((u & np.uint64(1)).view(np.int64))


def _knot_vector(n_coeffs: int) -> np.ndarray:
    """Deterministic clamped uniform knot vector on [0, 1]."""
    n_interior = n_coeffs - (_SPLINE_DEGREE + 1)
    interior = np.linspace(0.0, 1.0, n_interior + 2)[1:-1]
    return np.concatenate(
        (
            np.zeros(_SPLINE_DEGREE + 1),
            interior,
            np.ones(_SPLINE_DEGREE + 1),
        )
    )


@register_codec("isabela")
class IsabelaCodec(FloatCodec):
    """Sorted-window B-spline lossy compressor with bounded error."""

    lossless = False
    decode_throughput = 75e6  # spline evaluation + inverse permutation

    def __init__(
        self,
        window: int = 1024,
        n_coeffs: int = 32,
        error_rate: float = 1e-3,
        level: int = 6,
    ) -> None:
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        if n_coeffs < _SPLINE_DEGREE + 2:
            raise ValueError(
                f"n_coeffs must be >= {_SPLINE_DEGREE + 2}, got {n_coeffs}"
            )
        if window < 4 * n_coeffs:
            raise ValueError(
                f"window ({window}) must be >= 4 * n_coeffs ({4 * n_coeffs}) "
                "for a stable least-squares fit"
            )
        if error_rate <= 0:
            raise ValueError(f"error_rate must be positive, got {error_rate}")
        self.window = window
        self.n_coeffs = n_coeffs
        self.error_rate = error_rate
        self.level = level
        self._knots = _knot_vector(n_coeffs)
        #: Cached B-spline design matrices per window length: the basis
        #: is identical for every window of the same length, so decode
        #: evaluates *all* windows with one (n_windows, n_coeffs) @
        #: (n_coeffs, w) matmul instead of per-window spline calls —
        #: the same trick the reference ISABELA implementation uses.
        #: The cache is the codec's only mutable state; a lock guards
        #: population so one instance can serve concurrent encode or
        #: decode calls (the parallel writer additionally builds
        #: per-worker instances, making contention here negligible).
        self._design: dict[int, np.ndarray] = {}
        self._design_lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle only the configuration, never the derived state.

        The design cache and its lock are rebuild-on-demand worker
        state: the lock is unpicklable (it would break the spawn-based
        ``processes`` backend outright) and shipping cached basis
        matrices would just bloat the spec for something each process
        recomputes once per window length.
        """
        state = self.__dict__.copy()
        state["_design"] = {}
        del state["_design_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._design = {}
        self._design_lock = threading.Lock()

    def _design_matrix(self, w: int) -> np.ndarray:
        """Basis matrix B with ``B[i, j] = B_j(x_i)`` for length ``w``."""
        with self._design_lock:
            if w not in self._design:
                x = np.linspace(0.0, 1.0, w)
                basis = np.empty((w, self.n_coeffs), dtype=np.float64)
                unit = np.zeros(self.n_coeffs, dtype=np.float64)
                for j in range(self.n_coeffs):
                    unit[j] = 1.0
                    basis[:, j] = splev(x, (self._knots, unit, _SPLINE_DEGREE))
                    unit[j] = 0.0
                self._design[w] = basis
            return self._design[w]

    # ------------------------------------------------------------------
    def error_bound(self, values: np.ndarray) -> float:
        """Guaranteed per-point absolute error bound for these values."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        return 0.5 * self.error_rate * float(np.abs(values).max())

    def _window_sizes(self, count: int) -> list[int]:
        sizes = [self.window] * (count // self.window)
        tail = count % self.window
        if tail:
            sizes.append(tail)
        return sizes

    def _fit_window(self, sorted_v: np.ndarray) -> tuple[np.ndarray, float, np.ndarray]:
        """Fit one sorted window; returns (coeffs32, scale, quantized)."""
        w = sorted_v.size
        x = np.linspace(0.0, 1.0, w)
        tck = splrep(
            x,
            sorted_v,
            k=_SPLINE_DEGREE,
            t=self._knots[_SPLINE_DEGREE + 1 : -(_SPLINE_DEGREE + 1)],
            task=-1,
        )
        coeffs = np.asarray(tck[1][: self.n_coeffs], dtype=np.float32)
        approx = self._design_matrix(w) @ coeffs.astype(np.float64)
        scale = float(np.abs(sorted_v).max())
        step = self.error_rate * scale if scale > 0 else 1.0
        q = np.rint((sorted_v - approx) / step).astype(np.int64)
        return coeffs, scale, q

    def encode(self, values: np.ndarray) -> bytes:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        count = values.size
        sizes = self._window_sizes(count)

        flags = bytearray()
        scales: list[float] = []
        coeff_parts: list[np.ndarray] = []
        rank_parts: list[bytes] = []
        q_parts: list[np.ndarray] = []
        raw_tail = bytearray()

        start = 0
        for w in sizes:
            chunk = values[start : start + w]
            start += w
            if w < 4 * self.n_coeffs:
                flags.append(_FLAG_RAW)
                raw_tail.extend(chunk.tobytes())
                continue
            order = np.argsort(chunk, kind="stable")
            ranks = np.empty(w, dtype=np.int64)
            ranks[order] = np.arange(w)
            sorted_v = chunk[order]
            try:
                coeffs, scale, q = self._fit_window(sorted_v)
            except Exception:
                # Degenerate window (e.g. pathological values): keep raw.
                flags.append(_FLAG_RAW)
                raw_tail.extend(chunk.tobytes())
                continue
            flags.append(_FLAG_SPLINE)
            scales.append(scale)
            coeff_parts.append(coeffs)
            rank_parts.append(pack_uints(ranks, bits_required(w - 1)))
            q_parts.append(q)

        flags_z = zlib.compress(bytes(flags), self.level)
        scales_b = np.asarray(scales, dtype=np.float64).tobytes()
        coeffs_b = (
            np.concatenate(coeff_parts).tobytes() if coeff_parts else b""
        )
        ranks_b = b"".join(rank_parts)
        if q_parts:
            q_all = _zigzag_encode(np.concatenate(q_parts))
            q_z = zlib.compress(varint_encode_array(q_all), self.level)
        else:
            q_z = b""
        sections = [flags_z, scales_b, coeffs_b, ranks_b, q_z, bytes(raw_tail)]
        header = struct.pack("<6I", *(len(s) for s in sections))
        return header + b"".join(sections)

    @decode_guard
    def decode(self, payload: bytes, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.float64)
        sizes = self._window_sizes(count)
        lengths = struct.unpack("<6I", payload[:24])
        offsets = np.concatenate(([24], 24 + np.cumsum(lengths)))
        flags_z, scales_b, coeffs_b, ranks_b, q_z, raw_tail = (
            payload[offsets[i] : offsets[i + 1]] for i in range(6)
        )
        flags = zlib.decompress(flags_z)
        if len(flags) != len(sizes):
            raise ValueError(f"expected {len(sizes)} window flags, got {len(flags)}")
        scales = np.frombuffer(scales_b, dtype=np.float64)
        coeffs = np.frombuffer(coeffs_b, dtype=np.float32).reshape(-1, self.n_coeffs)
        spline_sizes = [w for w, f in zip(sizes, flags) if f == _FLAG_SPLINE]
        n_q = sum(spline_sizes)
        if n_q:
            q_all = _zigzag_decode(varint_decode_array(zlib.decompress(q_z), n_q))
        else:
            q_all = np.empty(0, dtype=np.int64)

        out = np.empty(count, dtype=np.float64)
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))

        # Raw windows: straight copies out of the tail stream.
        raw_pos = 0
        for start, w, flag in zip(starts, sizes, flags):
            if flag == _FLAG_RAW:
                chunk = np.frombuffer(raw_tail[raw_pos : raw_pos + 8 * w], dtype=np.float64)
                raw_pos += 8 * w
                out[start : start + w] = chunk

        # Spline windows: all full-length windows share one basis, so
        # they are reconstructed with a single matmul + batched unpack;
        # at most one (shorter tail) window remains and is done singly.
        spline_windows = [
            (start, w) for start, w, flag in zip(starts, sizes, flags) if flag == _FLAG_SPLINE
        ]
        if not spline_windows:
            return out
        full = [(s, w) for s, w in spline_windows if w == self.window]
        n_full = len(full)
        if n_full and full != spline_windows[:n_full]:
            raise ValueError("spline windows out of order in payload")

        if n_full:
            w = self.window
            bits = bits_required(w - 1)
            nb = (w * bits + 7) // 8
            byte_matrix = np.frombuffer(ranks_b[: n_full * nb], dtype=np.uint8).reshape(
                n_full, nb
            )
            bit_matrix = np.unpackbits(byte_matrix, axis=1)[:, : w * bits]
            weights = np.uint32(1) << np.arange(bits - 1, -1, -1, dtype=np.uint32)
            ranks = (
                bit_matrix.reshape(n_full, w, bits).astype(np.uint32) * weights
            ).sum(axis=2)
            q = q_all[: n_full * w].reshape(n_full, w).astype(np.float64)
            steps = self.error_rate * scales[:n_full]
            steps = np.where(scales[:n_full] > 0, steps, 1.0)
            approx = coeffs[:n_full].astype(np.float64) @ self._design_matrix(w).T
            sorted_v = approx + q * steps[:, None]
            orig = np.take_along_axis(sorted_v, ranks, axis=1)
            positions = (
                np.array([s for s, _ in full], dtype=np.int64)[:, None]
                + np.arange(w, dtype=np.int64)[None, :]
            )
            out[positions.reshape(-1)] = orig.reshape(-1)

        # Tail spline window (shorter than the nominal window length).
        r_pos = n_full * ((self.window * bits_required(self.window - 1) + 7) // 8)
        q_pos = n_full * self.window
        for s_i, (start, w) in enumerate(spline_windows[n_full:], start=n_full):
            bits = bits_required(w - 1)
            nbytes = (w * bits + 7) // 8
            ranks1 = unpack_uints(ranks_b[r_pos : r_pos + nbytes], bits, w)
            r_pos += nbytes
            q1 = q_all[q_pos : q_pos + w].astype(np.float64)
            q_pos += w
            scale = float(scales[s_i])
            step = self.error_rate * scale if scale > 0 else 1.0
            approx = coeffs[s_i].astype(np.float64) @ self._design_matrix(w).T
            sorted_v = approx + q1 * step
            out[start : start + w] = sorted_v[ranks1]
        return out
