"""ISOBAR-style lossless compression for float64 arrays.

ISOBAR (Schendel et al., ICDE 2012) is a *preconditioner*: it analyzes
the byte planes of a floating-point stream, identifies which planes are
actually compressible (high-order sign/exponent/leading-mantissa bytes
of smooth scientific fields), routes those through a standard
compressor, and stores the remaining, effectively random low-mantissa
planes verbatim.  That is exactly the mechanism implemented here:

1. View the values as an ``(n, 8)`` big-endian byte matrix.
2. For each of the 8 planes, estimate compressibility by deflating a
   bounded sample of the plane.
3. Deflate planes that pass the threshold; store the others raw.

The result is lossless, has bounded worst-case expansion (8 mode
bytes + 32 length bytes), and reproduces ISOBAR's characteristic
profile on the synthetic science data: ~10-20% size reduction with
high throughput (Table I's MLOC-ISO row: 6.9 GB for 8 GB raw).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import FloatCodec, decode_guard, register_codec

__all__ = ["IsobarCodec", "compress_planes", "decompress_planes"]

_SAMPLE_BYTES = 4096
_MODE_RAW = 0
_MODE_ZLIB = 1


def _plane_compressible(plane: np.ndarray, threshold: float) -> bool:
    """Estimate whether deflate shrinks ``plane`` below ``threshold``."""
    sample = plane[:_SAMPLE_BYTES].tobytes()
    if not sample:
        return False
    ratio = len(zlib.compress(sample, 1)) / len(sample)
    return ratio < threshold


def compress_planes(
    matrix: np.ndarray, threshold: float = 0.9, level: int = 6
) -> bytes:
    """Compress the columns of an ``(n, width)`` uint8 matrix plane-wise.

    Payload layout: ``width`` mode bytes, then ``width`` little-endian
    uint32 payload lengths, then the plane payloads in order.
    """
    if matrix.ndim != 2 or matrix.dtype != np.uint8:
        raise ValueError("matrix must be a 2-D uint8 array")
    width = matrix.shape[1]
    modes = bytearray(width)
    payloads: list[bytes] = []
    for p in range(width):
        plane = np.ascontiguousarray(matrix[:, p])
        if _plane_compressible(plane, threshold):
            compressed = zlib.compress(plane.tobytes(), level)
            if len(compressed) < plane.size:
                modes[p] = _MODE_ZLIB
                payloads.append(compressed)
                continue
        modes[p] = _MODE_RAW
        payloads.append(plane.tobytes())
    lengths = np.array([len(p) for p in payloads], dtype="<u4").tobytes()
    return bytes(modes) + lengths + b"".join(payloads)


def decompress_planes(payload: bytes, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`compress_planes`; returns ``(count, width)`` uint8."""
    header = width + 4 * width
    if len(payload) < header:
        raise ValueError("payload too short for plane header")
    modes = payload[:width]
    lengths = np.frombuffer(payload[width:header], dtype="<u4")
    matrix = np.empty((count, width), dtype=np.uint8)
    offset = header
    for p in range(width):
        body = payload[offset : offset + int(lengths[p])]
        offset += int(lengths[p])
        if modes[p] == _MODE_ZLIB:
            plane = np.frombuffer(zlib.decompress(body), dtype=np.uint8)
        elif modes[p] == _MODE_RAW:
            plane = np.frombuffer(body, dtype=np.uint8)
        else:
            raise ValueError(f"unknown plane mode {modes[p]}")
        if plane.size != count:
            raise ValueError(f"plane {p}: got {plane.size} bytes, expected {count}")
        matrix[:, p] = plane
    return matrix


@register_codec("isobar")
class IsobarCodec(FloatCodec):
    """Byte-plane-selective lossless float compressor.

    Holds no mutable state — :func:`compress_planes` and
    :func:`decompress_planes` are pure functions — so instances are
    thread-safe and encoding is deterministic across writer backends.
    """

    lossless = True
    decode_throughput = 600e6  # most planes pass through untouched

    def __init__(self, threshold: float = 0.9, level: int = 6) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.level = level

    def encode(self, values: np.ndarray) -> bytes:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        matrix = values.astype(">f8").view(np.uint8).reshape(-1, 8)
        return compress_planes(matrix, self.threshold, self.level)

    @decode_guard
    def decode(self, payload: bytes, count: int) -> np.ndarray:
        matrix = decompress_planes(payload, count, 8)
        return matrix.reshape(-1).view(">f8").astype(np.float64)
