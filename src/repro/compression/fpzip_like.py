"""FPZip-style predictive lossless float compressor.

FPZip (Lindstrom & Isenburg, TVCG 2006) predicts each value from its
processed neighbours and entropy-codes the prediction residual.  MLOC
only needs FPZip as one more pluggable floating-point codec
(Section III-B4); this implementation keeps the essential structure in
a stream setting:

1. Predict each value by its predecessor (the 1-D Lorenzo predictor —
   MLOC's smallest layout units are linearized streams by the time the
   codec sees them).
2. XOR the IEEE-754 bit patterns of value and prediction; smooth data
   leaves mostly-zero high bytes.
3. Compress the residual byte planes with the ISOBAR-style selective
   plane compressor, which stores the noisy low planes raw.

Exactly lossless for every float64 bit pattern, including NaNs.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import FloatCodec, decode_guard, register_codec
from repro.compression.isobar import compress_planes, decompress_planes

__all__ = ["FpzipLikeCodec"]


@register_codec("fpzip-like")
class FpzipLikeCodec(FloatCodec):
    """Delta-XOR predictor + selective byte-plane compression."""

    lossless = True
    decode_throughput = 500e6

    def __init__(self, threshold: float = 0.95, level: int = 6) -> None:
        self.threshold = threshold
        self.level = level

    def encode(self, values: np.ndarray) -> bytes:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        bits = values.view(np.uint64)
        residual = bits.copy()
        residual[1:] = bits[1:] ^ bits[:-1]
        matrix = residual.astype(">u8").view(np.uint8).reshape(-1, 8)
        return compress_planes(matrix, self.threshold, self.level)

    @decode_guard
    def decode(self, payload: bytes, count: int) -> np.ndarray:
        matrix = decompress_planes(payload, count, 8)
        residual = matrix.reshape(-1).view(">u8").astype(np.uint64)
        # Invert the XOR chain: bits[i] = residual[i] ^ bits[i-1].
        bits = np.bitwise_xor.accumulate(residual)
        return bits.view(np.float64).copy()
