"""Hierarchical Hilbert ordering for subset-based multiresolution.

Section III-B3 of the paper: besides the byte-level PLoD scheme, MLOC
supports the traditional *subset-based* multiresolution access by
storing data of the same resolution level together using a hierarchical
Hilbert space-filling-curve mapping (in the spirit of Pascucci's
hierarchical indexing).  Reading resolution levels ``0..r`` yields a
uniform spatial subsample of the chunk grid that covers the whole
domain, so a low-resolution visualization pass fetches a small prefix
of each bin file.

Level definition
----------------
For a grid of ``2**b`` chunks per axis, a chunk at coordinates ``c``
belongs to level ``L`` (``0 <= L <= b``) where ``L`` is the smallest
value such that every coordinate of ``c`` is a multiple of
``2**(b-L)``.  Level 0 contains only the origin chunk; level ``L`` adds
the chunks on the ``2**L``-per-axis lattice not already present in
coarser levels; level ``b`` completes the grid.  Within a level, chunks
are ordered by their Hilbert index, preserving spatial locality.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.hilbert import hilbert_encode
from repro.sfc.linearize import CurveOrder, _grid_coords

__all__ = ["hierarchical_levels", "hierarchical_order", "level_prefix_counts"]


def hierarchical_levels(grid_shape: tuple[int, ...]) -> np.ndarray:
    """Resolution level of every chunk (row-major ids).

    Requires every axis extent to be the same power of two (the layout
    used by the multiresolution experiments).
    """
    _check_grid(grid_shape)
    b = int(grid_shape[0] - 1).bit_length()
    coords = _grid_coords(grid_shape)
    levels = np.zeros(coords.shape[0], dtype=np.int64)
    for axis in range(coords.shape[1]):
        c = coords[:, axis]
        # Smallest L with c % 2**(b-L) == 0, i.e. b - trailing_zeros(c)
        # clamped to [0, b]; c == 0 belongs to every lattice.
        axis_level = np.full(c.shape, 0, dtype=np.int64)
        nonzero = c != 0
        tz = np.zeros(c.shape, dtype=np.int64)
        cc = c.copy()
        # Count trailing zeros vectorized (b is small: <= 20 iterations).
        remaining = nonzero.copy()
        while np.any(remaining):
            even = remaining & ((cc & 1) == 0)
            tz[even] += 1
            cc[even] >>= 1
            remaining = even
        axis_level[nonzero] = b - tz[nonzero]
        np.maximum(levels, axis_level, out=levels)
    return levels


def hierarchical_order(grid_shape: tuple[int, ...]) -> CurveOrder:
    """Chunk ordering grouped by resolution level, Hilbert within level."""
    _check_grid(grid_shape)
    b = max(int(grid_shape[0] - 1).bit_length(), 1)
    coords = _grid_coords(grid_shape)
    hkeys = hilbert_encode(coords, b)
    levels = hierarchical_levels(grid_shape)
    # Primary key: level; secondary: Hilbert index.
    order = np.lexsort((hkeys, levels)).astype(np.int64)
    return CurveOrder(order)


def level_prefix_counts(grid_shape: tuple[int, ...]) -> np.ndarray:
    """Number of chunks in levels ``0..L`` inclusive, for each ``L``.

    ``counts[L]`` is the length of the file prefix a resolution-``L``
    access reads.
    """
    levels = hierarchical_levels(grid_shape)
    b = int(levels.max()) if levels.size else 0
    counts = np.array([(levels <= L).sum() for L in range(b + 1)], dtype=np.int64)
    return counts


def _check_grid(grid_shape: tuple[int, ...]) -> None:
    if len(grid_shape) == 0:
        raise ValueError("grid_shape must have at least one dimension")
    first = grid_shape[0]
    if first <= 0 or (first & (first - 1)) != 0:
        raise ValueError(
            f"hierarchical ordering needs power-of-two extents, got {grid_shape}"
        )
    if any(extent != first for extent in grid_shape):
        raise ValueError(
            f"hierarchical ordering needs equal extents per axis, got {grid_shape}"
        )
