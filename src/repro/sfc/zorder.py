"""Z-order (Morton) curve — comparison curve for the SFC ablation.

The paper motivates the Hilbert curve by its superior geometric
locality over other space-filling curves (Moon et al., TKDE 2001).  To
back that design choice with an experiment, the reproduction also
implements the Z-order curve (plain bit interleaving) and benchmarks
both in ``benchmarks/test_ablation_sfc.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zorder_encode", "zorder_decode"]


def _validate(ndims: int, nbits: int) -> None:
    if ndims < 1:
        raise ValueError(f"ndims must be >= 1, got {ndims}")
    if nbits < 1:
        raise ValueError(f"nbits must be >= 1, got {nbits}")
    if ndims * nbits > 64:
        raise ValueError(f"ndims*nbits = {ndims * nbits} exceeds 64 bits")


def zorder_encode(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Interleave coordinate bits into Morton codes.

    Bit ``k`` of axis ``i`` lands at position ``k*ndims + (ndims-1-i)``
    so axis 0 is the most significant within each bit group, matching
    the convention of :func:`repro.sfc.hilbert.hilbert_encode`.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise ValueError(f"coords must be 2-D (npoints, ndims), got shape {coords.shape}")
    npoints, ndims = coords.shape
    _validate(ndims, nbits)
    if npoints == 0:
        return np.empty(0, dtype=np.uint64)
    limit = 1 << nbits
    if np.any(coords < 0) or np.any(coords >= limit):
        raise ValueError(f"coordinates out of range [0, {limit})")
    c = coords.astype(np.uint64)
    out = np.zeros(npoints, dtype=np.uint64)
    for k in range(nbits):
        for i in range(ndims):
            bit = (c[:, i] >> np.uint64(k)) & np.uint64(1)
            out |= bit << np.uint64(k * ndims + (ndims - 1 - i))
    return out


def zorder_decode(indices: np.ndarray, ndims: int, nbits: int) -> np.ndarray:
    """Inverse of :func:`zorder_encode`."""
    _validate(ndims, nbits)
    h = np.asarray(indices)
    if h.ndim != 1:
        raise ValueError(f"indices must be 1-D, got shape {h.shape}")
    h = h.astype(np.uint64)
    out = np.zeros((h.size, ndims), dtype=np.uint64)
    for k in range(nbits):
        for i in range(ndims):
            bit = (h >> np.uint64(k * ndims + (ndims - 1 - i))) & np.uint64(1)
            out[:, i] |= bit << np.uint64(k)
    return out
