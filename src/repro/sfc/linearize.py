"""Chunk-grid linearization: map a grid of chunks onto a 1-D curve order.

The MLOC writer places data chunks on disk in space-filling-curve order
(Section III-B2).  Because the curve order is a pure function of the
grid dimensions, *no metadata beyond the grid shape* is needed to
recover it at query time — the property the paper highlights for its
light-weight indexing.

Grids whose per-axis chunk counts are not powers of two are handled by
computing the curve on the smallest enclosing power-of-two cube and
dropping positions that fall outside the real grid; the relative order
of the remaining chunks is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.hilbert import hilbert_encode
from repro.sfc.zorder import zorder_encode

__all__ = ["chunk_curve_order", "CurveOrder", "CURVES"]

CURVES = ("hilbert", "zorder", "rowmajor")


class CurveOrder:
    """A bidirectional chunk ordering.

    Attributes
    ----------
    order:
        ``order[pos]`` = row-major chunk id stored at on-disk position
        ``pos``.
    rank:
        Inverse permutation: ``rank[chunk_id]`` = on-disk position.
    """

    def __init__(self, order: np.ndarray) -> None:
        self.order = np.ascontiguousarray(order, dtype=np.int64)
        self.rank = np.empty_like(self.order)
        self.rank[self.order] = np.arange(self.order.size, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.order.size)

    def positions_of(self, chunk_ids: np.ndarray) -> np.ndarray:
        """On-disk positions of the given row-major chunk ids."""
        return self.rank[np.asarray(chunk_ids, dtype=np.int64)]

    def chunks_at(self, positions: np.ndarray) -> np.ndarray:
        """Row-major chunk ids stored at the given on-disk positions."""
        return self.order[np.asarray(positions, dtype=np.int64)]


def _grid_coords(grid_shape: tuple[int, ...]) -> np.ndarray:
    """Row-major coordinates of every cell of the grid, shape (n, ndims)."""
    axes = [np.arange(extent, dtype=np.int64) for extent in grid_shape]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.reshape(-1) for m in mesh], axis=1)


def chunk_curve_order(grid_shape: tuple[int, ...], curve: str = "hilbert") -> CurveOrder:
    """Compute the on-disk ordering of a chunk grid.

    Parameters
    ----------
    grid_shape:
        Number of chunks along each axis.
    curve:
        ``"hilbert"`` (MLOC's choice), ``"zorder"`` or ``"rowmajor"``
        (ablation comparators).

    Returns
    -------
    CurveOrder
        The permutation between row-major chunk ids and disk positions.
    """
    if curve not in CURVES:
        raise ValueError(f"unknown curve {curve!r}; expected one of {CURVES}")
    if len(grid_shape) == 0:
        raise ValueError("grid_shape must have at least one dimension")
    if any(extent <= 0 for extent in grid_shape):
        raise ValueError(f"grid extents must be positive, got {grid_shape}")

    n_chunks = int(np.prod(grid_shape))
    if curve == "rowmajor" or n_chunks == 1 or len(grid_shape) == 1:
        return CurveOrder(np.arange(n_chunks, dtype=np.int64))

    nbits = max(int(extent - 1).bit_length() for extent in grid_shape)
    nbits = max(nbits, 1)
    coords = _grid_coords(grid_shape)
    if curve == "hilbert":
        keys = hilbert_encode(coords, nbits)
    else:
        keys = zorder_encode(coords, nbits)
    # Chunk ids are row-major positions; sort them by curve key.  For a
    # power-of-two grid this is a pure permutation of the full curve;
    # otherwise it is the curve restricted to the real grid.
    order = np.argsort(keys, kind="stable").astype(np.int64)
    return CurveOrder(order)
