"""N-dimensional Hilbert space-filling curve, vectorized.

MLOC organizes the chunks of a multidimensional dataset in Hilbert
space-filling-curve (HSFC) order inside each bin (Section III-B2): the
HSFC has the strongest geometric locality of the classic curves, so
spatially-constrained queries touch runs of chunks that are contiguous
on disk, minimizing seeks.

The implementation is John Skilling's transpose-based algorithm
("Programming the Hilbert curve", AIP 2004), which maps between axis
coordinates and the *transposed* representation of the Hilbert index in
O(bits x dims) bit operations, with every operation vectorized over an
array of points.  It supports any dimensionality and any per-axis bit
count ``nbits`` with ``ndims * nbits <= 64``.

Conventions
-----------
* Coordinates are ``(npoints, ndims)`` arrays of unsigned integers in
  ``[0, 2**nbits)``.
* The Hilbert index is a ``uint64`` in ``[0, 2**(ndims*nbits))``.
* Axis 0 contributes the most significant interleaved bit, matching
  Skilling's reference code.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hilbert_encode", "hilbert_decode"]


def _validate(ndims: int, nbits: int) -> None:
    if ndims < 1:
        raise ValueError(f"ndims must be >= 1, got {ndims}")
    if nbits < 1:
        raise ValueError(f"nbits must be >= 1, got {nbits}")
    if ndims * nbits > 64:
        raise ValueError(
            f"ndims*nbits = {ndims * nbits} exceeds the 64-bit index budget"
        )


def _axes_to_transpose(x: np.ndarray, nbits: int) -> np.ndarray:
    """In-place Skilling forward transform: axes -> transposed index."""
    ndims = x.shape[0]
    m = np.uint64(1) << np.uint64(nbits - 1)

    # Inverse undo excess work.
    q = m
    while q > np.uint64(1):
        p = q - np.uint64(1)
        for i in range(ndims):
            hit = (x[i] & q) != 0
            # Where the bit is set: reflect x[0] through p.
            x[0][hit] ^= p
            # Elsewhere: swap the low bits of x[0] and x[i].
            t = (x[0] ^ x[i]) & p
            t[hit] = 0
            x[0] ^= t
            x[i] ^= t
        q >>= np.uint64(1)

    # Gray encode.
    for i in range(1, ndims):
        x[i] ^= x[i - 1]
    t = np.zeros_like(x[0])
    q = m
    while q > np.uint64(1):
        hit = (x[ndims - 1] & q) != 0
        t[hit] ^= q - np.uint64(1)
        q >>= np.uint64(1)
    for i in range(ndims):
        x[i] ^= t
    return x


def _transpose_to_axes(x: np.ndarray, nbits: int) -> np.ndarray:
    """In-place Skilling inverse transform: transposed index -> axes."""
    ndims = x.shape[0]
    n = np.uint64(2) << np.uint64(nbits - 1)

    # Gray decode by halving.
    t = x[ndims - 1] >> np.uint64(1)
    for i in range(ndims - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t

    # Undo excess work.
    q = np.uint64(2)
    while q != n:
        p = q - np.uint64(1)
        for i in range(ndims - 1, -1, -1):
            hit = (x[i] & q) != 0
            x[0][hit] ^= p
            t = (x[0] ^ x[i]) & p
            t[hit] = 0
            x[0] ^= t
            x[i] ^= t
        q <<= np.uint64(1)
    return x


def _pack_transpose(x: np.ndarray, nbits: int) -> np.ndarray:
    """Interleave the transposed words into scalar Hilbert indices."""
    ndims = x.shape[0]
    h = np.zeros(x.shape[1], dtype=np.uint64)
    for k in range(nbits - 1, -1, -1):
        for i in range(ndims):
            h = (h << np.uint64(1)) | ((x[i] >> np.uint64(k)) & np.uint64(1))
    return h


def _unpack_transpose(h: np.ndarray, ndims: int, nbits: int) -> np.ndarray:
    """Deinterleave scalar Hilbert indices into transposed words."""
    x = np.zeros((ndims, h.size), dtype=np.uint64)
    pos = np.uint64(ndims * nbits)
    for k in range(nbits - 1, -1, -1):
        for i in range(ndims):
            pos -= np.uint64(1)
            bit = (h >> pos) & np.uint64(1)
            x[i] |= bit << np.uint64(k)
    return x


def hilbert_encode(coords: np.ndarray, nbits: int) -> np.ndarray:
    """Map axis coordinates to Hilbert curve indices.

    Parameters
    ----------
    coords:
        Integer array of shape ``(npoints, ndims)`` with every value in
        ``[0, 2**nbits)``.
    nbits:
        Bits of resolution per axis.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(npoints,)``: the index of each
        point along the Hilbert curve.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise ValueError(f"coords must be 2-D (npoints, ndims), got shape {coords.shape}")
    npoints, ndims = coords.shape
    _validate(ndims, nbits)
    if npoints == 0:
        return np.empty(0, dtype=np.uint64)
    limit = 1 << nbits
    if np.any(coords < 0) or np.any(coords >= limit):
        raise ValueError(f"coordinates out of range [0, {limit})")
    x = np.ascontiguousarray(coords.T).astype(np.uint64)
    _axes_to_transpose(x, nbits)
    return _pack_transpose(x, nbits)


def hilbert_decode(indices: np.ndarray, ndims: int, nbits: int) -> np.ndarray:
    """Map Hilbert curve indices back to axis coordinates.

    Inverse of :func:`hilbert_encode`.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(npoints, ndims)``.
    """
    _validate(ndims, nbits)
    h = np.asarray(indices)
    if h.ndim != 1:
        raise ValueError(f"indices must be 1-D, got shape {h.shape}")
    if h.size == 0:
        return np.empty((0, ndims), dtype=np.uint64)
    h = h.astype(np.uint64)
    top = np.uint64(1) << np.uint64(ndims * nbits) if ndims * nbits < 64 else None
    if top is not None and np.any(h >= top):
        raise ValueError(f"index out of range [0, 2**{ndims * nbits})")
    x = _unpack_transpose(h, ndims, nbits)
    _transpose_to_axes(x, nbits)
    return x.T.copy()
