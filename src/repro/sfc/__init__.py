"""Space-filling curves: Hilbert (MLOC's choice), Z-order, hierarchical.

Implements Section III-B2 (HSFC chunk ordering) and the hierarchical
ordering behind subset-based multiresolution (Section III-B3).
"""

from repro.sfc.hierarchical import (
    hierarchical_levels,
    hierarchical_order,
    level_prefix_counts,
)
from repro.sfc.hilbert import hilbert_decode, hilbert_encode
from repro.sfc.linearize import CURVES, CurveOrder, chunk_curve_order
from repro.sfc.zorder import zorder_decode, zorder_encode

__all__ = [
    "CURVES",
    "CurveOrder",
    "chunk_curve_order",
    "hierarchical_levels",
    "hierarchical_order",
    "hilbert_decode",
    "hilbert_encode",
    "level_prefix_counts",
    "zorder_decode",
    "zorder_encode",
]
